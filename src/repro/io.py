"""JSON serialization for schemas, dependencies, and databases.

A small, stable on-disk format so dependency sets and instances can be
shipped between tools:

.. code-block:: json

    {
      "schema": {"MGR": ["NAME", "DEPT"], "EMP": ["NAME", "DEPT"]},
      "dependencies": ["MGR[NAME,DEPT] <= EMP[NAME,DEPT]",
                       "EMP: NAME -> DEPT"],
      "database": {"MGR": [["Hilbert", "Math"]]}
    }

Dependencies use the text DSL (round-tripping through the parser), so
the files stay human-editable.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.exceptions import ParseError
from repro.deps.base import Dependency
from repro.deps.parser import parse_dependency
from repro.model.builders import database as build_database
from repro.model.database import Database
from repro.model.schema import DatabaseSchema


def schema_to_dict(schema: DatabaseSchema) -> dict[str, list[str]]:
    return {rel.name: list(rel.attributes) for rel in schema}


def schema_from_dict(spec: dict[str, Any]) -> DatabaseSchema:
    return DatabaseSchema.from_dict(spec)


def database_to_dict(db: Database) -> dict[str, list[list[Any]]]:
    return {
        rel.name: [list(row) for row in rel.sorted_rows()] for rel in db
    }


def bundle_to_json(
    schema: DatabaseSchema,
    dependencies: list[Dependency] | None = None,
    db: Database | None = None,
    indent: int = 2,
) -> str:
    """Serialize a (schema, dependencies, database) bundle."""
    payload: dict[str, Any] = {"schema": schema_to_dict(schema)}
    if dependencies is not None:
        payload["dependencies"] = [str(dep) for dep in dependencies]
    if db is not None:
        payload["database"] = database_to_dict(db)
    return json.dumps(payload, indent=indent, default=str)


def bundle_from_json(
    text: str,
) -> tuple[DatabaseSchema, list[Dependency], Database | None]:
    """Parse a bundle; validates dependencies against the schema."""
    payload = json.loads(text)
    if "schema" not in payload:
        raise ParseError("bundle is missing the 'schema' key")
    schema = schema_from_dict(payload["schema"])
    dependencies: list[Dependency] = []
    for line in payload.get("dependencies", []):
        dep = parse_dependency(line)
        dep.validate(schema)
        dependencies.append(dep)
    db = None
    if "database" in payload:
        contents = {
            name: [tuple(row) for row in rows]
            for name, rows in payload["database"].items()
        }
        db = build_database(schema, contents)
    return schema, dependencies, db


def dump_bundle(
    fp: TextIO,
    schema: DatabaseSchema,
    dependencies: list[Dependency] | None = None,
    db: Database | None = None,
) -> None:
    fp.write(bundle_to_json(schema, dependencies, db))


def load_bundle(fp: TextIO):
    return bundle_from_json(fp.read())
