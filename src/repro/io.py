"""JSON serialization for schemas, dependencies, and databases.

A small, stable on-disk format so dependency sets and instances can be
shipped between tools:

.. code-block:: json

    {
      "schema": {"MGR": ["NAME", "DEPT"], "EMP": ["NAME", "DEPT"]},
      "dependencies": ["MGR[NAME,DEPT] <= EMP[NAME,DEPT]",
                       "EMP: NAME -> DEPT"],
      "database": {"MGR": [["Hilbert", "Math"]]}
    }

Dependencies use the text DSL (round-tripping through the parser), so
the files stay human-editable.  Loading validates the payload shape
strictly — unknown top-level keys, rows over unknown relations, and
rows of the wrong arity all raise :class:`ParseError` with enough
context to find the offending entry.

Bundles can be loaded straight into a
:class:`~repro.engine.session.ReasoningSession` with
:func:`session_from_json` / :func:`load_session`.

A *patch* is the bundle's mutation companion — the on-disk form of one
``add``/``retract`` step of the session lifecycle:

.. code-block:: json

    {
      "retract": ["EMP: NAME -> DEPT"],
      "add": ["EMP[NAME] <= PERSON[NAME]"]
    }

:func:`patch_from_json` parses and validates one against a schema, and
:func:`apply_patch` plays it into a live session (retractions first,
then additions, as one version bump each).
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.exceptions import ParseError
from repro.deps.base import Dependency
from repro.deps.parser import parse_dependency
from repro.engine.session import ReasoningSession
from repro.model.builders import database as build_database
from repro.model.database import Database
from repro.model.schema import DatabaseSchema

_BUNDLE_KEYS = ("schema", "dependencies", "database")


def schema_to_dict(schema: DatabaseSchema) -> dict[str, list[str]]:
    return {rel.name: list(rel.attributes) for rel in schema}


def schema_from_dict(spec: dict[str, Any]) -> DatabaseSchema:
    return DatabaseSchema.from_dict(spec)


def database_to_dict(db: Database) -> dict[str, list[list[Any]]]:
    return {
        rel.name: [list(row) for row in rel.sorted_rows()] for rel in db
    }


def bundle_to_json(
    schema: DatabaseSchema,
    dependencies: list[Dependency] | None = None,
    db: Database | None = None,
    indent: int = 2,
) -> str:
    """Serialize a (schema, dependencies, database) bundle."""
    payload: dict[str, Any] = {"schema": schema_to_dict(schema)}
    if dependencies is not None:
        payload["dependencies"] = [str(dep) for dep in dependencies]
    if db is not None:
        payload["database"] = database_to_dict(db)
    return json.dumps(payload, indent=indent, default=str)


def _schema_from_payload(payload: Any) -> DatabaseSchema:
    """Validate the shape of the schema section before building it.

    JSON bundles must spell attributes as arrays of strings; anything
    else (a bare string would otherwise be iterated character by
    character) is reported as a :class:`ParseError`.
    """
    if not isinstance(payload, dict):
        raise ParseError(
            f"bundle 'schema' must be an object mapping relation names to "
            f"attribute lists, got {type(payload).__name__}"
        )
    for name, attrs in payload.items():
        if not isinstance(attrs, list) or not all(
            isinstance(attr, str) for attr in attrs
        ):
            raise ParseError(
                f"schema entry {name!r} must be a list of attribute "
                f"names, got {attrs!r}"
            )
    return schema_from_dict(payload)


def _database_from_payload(
    schema: DatabaseSchema, payload: Any
) -> Database:
    """Validate and build the optional database section.

    Row problems are reported with relation/row context instead of the
    bare arity error the model layer would raise.
    """
    if not isinstance(payload, dict):
        raise ParseError(
            f"bundle 'database' must be an object mapping relation names "
            f"to row lists, got {type(payload).__name__}"
        )
    contents: dict[str, list[tuple]] = {}
    for name, rows in payload.items():
        if name not in schema:
            raise ParseError(
                f"database mentions relation {name!r} which is not in the "
                f"schema (known: {', '.join(schema.names)})"
            )
        arity = schema.relation(name).arity
        checked: list[tuple] = []
        if not isinstance(rows, list):
            raise ParseError(
                f"database entry for relation {name!r} must be a list of "
                f"rows, got {type(rows).__name__}"
            )
        for position, row in enumerate(rows):
            if not isinstance(row, (list, tuple)):
                raise ParseError(
                    f"row {position} of relation {name!r} must be an "
                    f"array, got {row!r}"
                )
            if len(row) != arity:
                raise ParseError(
                    f"row {position} of relation {name!r} has {len(row)} "
                    f"value(s) but {schema.relation(name)} has arity "
                    f"{arity}: {row!r}"
                )
            checked.append(tuple(row))
        contents[name] = checked
    return build_database(schema, contents)


def bundle_from_json(
    text: str,
) -> tuple[DatabaseSchema, list[Dependency], Database | None]:
    """Parse a bundle; validates shape and dependencies against the schema."""
    return bundle_from_payload(json.loads(text))


def bundle_from_payload(
    payload: Any,
) -> tuple[DatabaseSchema, list[Dependency], Database | None]:
    """Validate an already-decoded bundle payload (what the serving
    layer receives inside a larger request body)."""
    if not isinstance(payload, dict):
        raise ParseError(
            f"bundle must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_BUNDLE_KEYS))
    if unknown:
        raise ParseError(
            f"bundle has unknown top-level key(s) {', '.join(map(repr, unknown))}; "
            f"expected only {', '.join(map(repr, _BUNDLE_KEYS))}"
        )
    if "schema" not in payload:
        raise ParseError("bundle is missing the 'schema' key")
    schema = _schema_from_payload(payload["schema"])
    lines = payload.get("dependencies", [])
    if not isinstance(lines, list):
        raise ParseError(
            f"bundle 'dependencies' must be a list of DSL strings, got "
            f"{type(lines).__name__}"
        )
    dependencies: list[Dependency] = []
    for line in lines:
        if not isinstance(line, str):
            raise ParseError(
                f"dependency entries must be DSL strings, got {line!r}"
            )
        dep = parse_dependency(line)
        dep.validate(schema)
        dependencies.append(dep)
    db = None
    if "database" in payload:
        db = _database_from_payload(schema, payload["database"])
    return schema, dependencies, db


def session_from_json(text: str, **session_options: Any) -> ReasoningSession:
    """Load a bundle directly into a :class:`ReasoningSession`.

    The schema, dependencies, and optional database all land in the
    session; keyword options (budgets) are forwarded to its
    constructor.
    """
    schema, dependencies, db = bundle_from_json(text)
    return ReasoningSession(schema, dependencies, db=db, **session_options)


def dump_bundle(
    fp: TextIO,
    schema: DatabaseSchema,
    dependencies: list[Dependency] | None = None,
    db: Database | None = None,
) -> None:
    fp.write(bundle_to_json(schema, dependencies, db))


def load_bundle(fp: TextIO):
    return bundle_from_json(fp.read())


def load_session(fp: TextIO, **session_options: Any) -> ReasoningSession:
    """File-object variant of :func:`session_from_json`."""
    return session_from_json(fp.read(), **session_options)


# -- bundle patches (the lifecycle on disk) -------------------------------

_PATCH_KEYS = ("add", "retract")


def _patch_section(payload: dict, key: str, schema: DatabaseSchema) -> list[Dependency]:
    lines = payload.get(key, [])
    if not isinstance(lines, list):
        raise ParseError(
            f"patch {key!r} must be a list of DSL strings, got "
            f"{type(lines).__name__}"
        )
    dependencies: list[Dependency] = []
    for line in lines:
        if not isinstance(line, str):
            raise ParseError(
                f"patch {key!r} entries must be DSL strings, got {line!r}"
            )
        dep = parse_dependency(line)
        dep.validate(schema)
        dependencies.append(dep)
    return dependencies


def patch_from_json(
    text: str, schema: DatabaseSchema
) -> tuple[list[Dependency], list[Dependency]]:
    """Parse a patch as ``(additions, retractions)``.

    Validated with the same strictness as bundles: the payload must be
    an object, only ``add``/``retract`` keys are allowed, and every
    entry must parse and be well-formed over ``schema``.
    """
    return patch_from_payload(json.loads(text), schema)


def patch_from_payload(
    payload: Any, schema: DatabaseSchema
) -> tuple[list[Dependency], list[Dependency]]:
    """Validate an already-decoded patch payload (what the serving
    layer's write-ahead log records and replays on recovery)."""
    if not isinstance(payload, dict):
        raise ParseError(
            f"patch must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_PATCH_KEYS))
    if unknown:
        raise ParseError(
            f"patch has unknown key(s) {', '.join(map(repr, unknown))}; "
            f"expected only {', '.join(map(repr, _PATCH_KEYS))}"
        )
    add = _patch_section(payload, "add", schema)
    retract = _patch_section(payload, "retract", schema)
    if not (add or retract):
        raise ParseError("patch is empty: needs an 'add' or 'retract' entry")
    return add, retract


def patch_to_json(
    add: list[Dependency] | None = None,
    retract: list[Dependency] | None = None,
    indent: int = 2,
) -> str:
    """Serialize a patch (DSL strings, human-editable like bundles)."""
    payload: dict[str, list[str]] = {}
    if add:
        payload["add"] = [str(dep) for dep in add]
    if retract:
        payload["retract"] = [str(dep) for dep in retract]
    if not payload:
        raise ParseError("patch is empty: needs an 'add' or 'retract' section")
    return json.dumps(payload, indent=indent)


def load_patch(
    fp: TextIO, schema: DatabaseSchema
) -> tuple[list[Dependency], list[Dependency]]:
    """File-object variant of :func:`patch_from_json`."""
    return patch_from_json(fp.read(), schema)


def apply_patch(session: ReasoningSession, text: str) -> int:
    """Play a JSON patch into a live session; returns the new version.

    Retractions are applied before additions, so a patch can replace a
    premise in one file.  Each non-empty section is one mutation (one
    version bump) with the session's scoped cache invalidation.
    """
    add, retract = patch_from_json(text, session.schema)
    if retract:
        session.retract(retract)
    if add:
        session.add(add)
    return session.version
