"""Graph views of IND/FD sets (networkx-backed).

These are analysis conveniences on top of the core engines — useful
for inspecting why an implication holds (paths), why a decision blew
up (orbit sizes), or where the finite-implication cycle rule fires
(strongly connected components).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.core.ind_decision import Expression, successors
from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.exceptions import SearchBudgetExceeded


def expression_graph(
    start: Expression,
    premises: Iterable[IND],
    max_nodes: int = 100_000,
) -> nx.DiGraph:
    """The reachable part of the Corollary 3.2 expression graph.

    Nodes are expressions ``(relation, attribute sequence)``; each edge
    carries the premise and IND2 selection that justifies it.
    Reachability in this graph **is** IND implication (Corollary 3.2).
    """
    premise_list = list(premises)
    graph = nx.DiGraph()
    graph.add_node(start)
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for nxt, link in successors(current, premise_list):
            if nxt not in graph:
                if graph.number_of_nodes() >= max_nodes:
                    raise SearchBudgetExceeded(
                        f"expression graph exceeded {max_nodes} nodes",
                        explored=graph.number_of_nodes(),
                    )
                graph.add_node(nxt)
                frontier.append(nxt)
            if not graph.has_edge(current, nxt):
                graph.add_edge(
                    current, nxt,
                    premise=str(link.premise),
                    indices=link.indices,
                )
    return graph


def ind_flow_graph(premises: Iterable[IND]) -> nx.MultiDiGraph:
    """The relation-level flow graph: one node per relation, one edge
    per IND (labelled with its attribute mapping).

    Cycles here are where Rule (*) saturation, chase divergence, and
    the finite-implication phenomena live.
    """
    graph = nx.MultiDiGraph()
    for premise in premises:
        graph.add_edge(
            premise.lhs_relation,
            premise.rhs_relation,
            label=str(premise),
            mapping=premise.attribute_mapping(),
        )
    return graph


def cardinality_digraph(dependencies: Iterable[Dependency]) -> nx.DiGraph:
    """The unary engine's cardinality digraph.

    Edge ``u -> v`` means ``|u| <= |v|`` in every finite model: INDs
    contribute source -> target; FDs ``R: A -> B`` contribute
    ``(R,B) -> (R,A)``.
    """
    graph = nx.DiGraph()
    for dep in dependencies:
        if isinstance(dep, IND) and dep.is_unary():
            graph.add_edge(
                (dep.lhs_relation, dep.lhs_attributes[0]),
                (dep.rhs_relation, dep.rhs_attributes[0]),
                kind="ind",
            )
        elif isinstance(dep, FD) and dep.is_unary():
            graph.add_edge(
                (dep.relation, dep.rhs[0]),
                (dep.relation, dep.lhs[0]),
                kind="fd",
            )
    return graph


def cycle_rule_components(dependencies: Iterable[Dependency]) -> list[set]:
    """The nontrivial SCCs of the cardinality digraph — exactly the
    places where the finite-implication cycle rule reverses
    dependencies (Theorem 4.4 / Section 6)."""
    graph = cardinality_digraph(dependencies)
    return [
        set(component)
        for component in nx.strongly_connected_components(graph)
        if len(component) > 1
        or graph.has_edge(*(list(component) * 2))  # self-loop
    ]


@dataclass
class IndSetSummary:
    """Headline statistics of an IND set."""

    ind_count: int
    relations: int
    unary: int
    typed: int
    max_arity: int
    flow_cyclic: bool
    flow_components: int

    def __str__(self) -> str:
        return (
            f"{self.ind_count} INDs over {self.relations} relations "
            f"({self.unary} unary, {self.typed} typed, max arity "
            f"{self.max_arity}); flow graph "
            f"{'cyclic' if self.flow_cyclic else 'acyclic'} with "
            f"{self.flow_components} weakly connected component(s)"
        )


def summarize_ind_set(premises: Iterable[IND]) -> IndSetSummary:
    """Quick structural profile of an IND set."""
    premise_list = list(premises)
    flow = ind_flow_graph(premise_list)
    relations = set()
    for premise in premise_list:
        relations.update(premise.relations())
    return IndSetSummary(
        ind_count=len(premise_list),
        relations=len(relations),
        unary=sum(1 for p in premise_list if p.is_unary()),
        typed=sum(1 for p in premise_list if p.is_typed()),
        max_arity=max((p.arity for p in premise_list), default=0),
        flow_cyclic=not nx.is_directed_acyclic_graph(flow) if flow else False,
        flow_components=(
            nx.number_weakly_connected_components(flow) if flow else 0
        ),
    )
