"""Structural analysis of dependency sets.

Graph views of the objects the paper reasons about: the Corollary 3.2
expression graph (whose reachability *is* IND implication), the
relation-level flow graph of an IND set, and the cardinality digraph
of the unary finite-implication engine (whose strongly connected
components trigger the cycle rule).
"""

from repro.analysis.ind_graph import (
    cardinality_digraph,
    cycle_rule_components,
    expression_graph,
    ind_flow_graph,
    summarize_ind_set,
)

__all__ = [
    "cardinality_digraph",
    "cycle_rule_components",
    "expression_graph",
    "ind_flow_graph",
    "summarize_ind_set",
]
