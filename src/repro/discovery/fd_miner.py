"""FD discovery: a levelwise lattice walk over stripped partitions.

For each relation and each right-hand attribute ``A``, walk the
subsets of the remaining attributes level by level (TANE's direction),
testing ``X -> A`` with the partition-class count and pruning every
superset of an already-found minimal left-hand side — the classical
minimality cut that keeps the walk far below the full lattice.  The
empty left-hand side is level zero: ``0 -> A`` means column ``A`` is
constant, and finding it prunes the whole lattice for that ``A``.

The output per relation is the set of *minimal nontrivial* FDs the
data satisfies; every satisfied FD is implied by it via reflexivity
and augmentation (pinned against brute-force enumeration by the
property tests).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional

from repro.deps.fd import FD
from repro.discovery.partitions import PartitionCache
from repro.discovery.report import PhaseCounters
from repro.model.database import Database


def discover_relation_fds(
    cache: PartitionCache,
    counters: Optional[PhaseCounters] = None,
    max_lhs: Optional[int] = None,
) -> list[FD]:
    """Minimal nontrivial FDs of one relation (via its partition cache)."""
    counters = counters if counters is not None else PhaseCounters()
    schema = cache.relation.schema
    attrs = tuple(sorted(schema.attributes))
    limit = len(attrs) - 1 if max_lhs is None else min(max_lhs, len(attrs) - 1)
    found: list[FD] = []
    for rhs in attrs:
        pool = tuple(a for a in attrs if a != rhs)
        minimal: list[frozenset[str]] = []
        counters.candidates_generated += 1
        counters.validated += 1
        if cache.refines_to(frozenset(), rhs):
            # Constant column: 0 -> A, and every superset is redundant.
            found.append(FD(schema.name, None, (rhs,)))
            continue
        for size in range(1, limit + 1):
            for combo in combinations(pool, size):
                candidate = frozenset(combo)
                if any(lhs <= candidate for lhs in minimal):
                    continue  # superset of a minimal FD: implied
                counters.candidates_generated += 1
                counters.validated += 1
                if cache.refines_to(candidate, rhs):
                    minimal.append(candidate)
                    found.append(FD(schema.name, combo, (rhs,)))
    counters.rows_scanned += cache.rows_scanned
    counters.partitions_computed += cache.partitions_computed
    counters.partition_cache_hits += cache.cache_hits
    counters.found += len(found)
    return found


def discover_fds(
    db: Database,
    relations: Optional[Iterable[str]] = None,
    counters: Optional[PhaseCounters] = None,
    max_lhs: Optional[int] = None,
) -> list[FD]:
    """Minimal nontrivial FDs of every (named) relation of ``db``.

    ``max_lhs`` caps the left-hand-side size (the walk is exponential
    in the arity without it); the default walks the full lattice,
    which is exact.
    """
    names = (
        sorted(rel.name for rel in db.schema)
        if relations is None
        else list(relations)
    )
    result: list[FD] = []
    for name in names:
        cache = PartitionCache(db.relation(name))
        result.extend(discover_relation_fds(cache, counters, max_lhs=max_lhs))
    return result
