"""IND discovery: inverted value index + implication-pruned apriori lift.

Unary INDs first (MatchBox/De Marchi style): one pass over every
column builds a shared inverted ``value -> {column}`` index, and one
pass over that index intersects away every candidate ``R[A] c S[B]``
some value refutes — no column pair is ever compared directly.

The n-ary lift is apriori-shaped (an IND can only hold if all its
projections do): level ``k+1`` candidates extend a validated ``k``-ary
IND with a validated unary IND over the same relation pair, keeping
the left side sorted so each candidate is generated exactly once, and
are admitted only when *every* ``k``-ary projection was validated.

The twist this package exists for: before a candidate touches the
data, a :class:`~repro.engine.session.ReasoningSession` over the
*accepted* INDs is asked whether it already implies the candidate
(amortized O(1) per question through the session's compiled reach
index).  Implied candidates are sound by construction — every
accepted premise holds in the database — so they are accepted with
zero rows scanned; only the genuinely new ones pay for validation.
"""

from __future__ import annotations

from typing import Optional

from repro.deps.ind import IND
from repro.exceptions import SearchBudgetExceeded
from repro.discovery.report import PhaseCounters
from repro.engine.session import ReasoningSession
from repro.model.database import Database

Column = tuple[str, str]
"""A column id: (relation name, attribute name)."""


def _columns_of(db: Database) -> list[Column]:
    return [
        (rel.name, attr)
        for rel in sorted(db, key=lambda rel: rel.name)
        for attr in rel.schema.attributes
    ]


def discover_unary_inds(
    db: Database, counters: Optional[PhaseCounters] = None
) -> list[IND]:
    """Every nontrivial unary IND ``R[A] c S[B]`` holding in ``db``.

    One shared inverted index over all columns: a candidate survives
    iff every value of its left column also appears in its right
    column, computed by intersecting per-value column sets.  An empty
    left column is included in everything.
    """
    counters = counters if counters is not None else PhaseCounters()
    columns = _columns_of(db)
    ids = {column: index for index, column in enumerate(columns)}
    universe = frozenset(range(len(columns)))

    value_index: dict[object, set[int]] = {}
    for rel in db:
        for row in rel:
            counters.rows_scanned += 1
            for position, value in enumerate(row):
                column_id = ids[(rel.name, rel.schema.attributes[position])]
                value_index.setdefault(value, set()).add(column_id)

    rhs_candidates: dict[int, frozenset[int]] = {
        index: universe for index in range(len(columns))
    }
    for cover in value_index.values():
        shared = frozenset(cover)
        for column_id in cover:
            rhs_candidates[column_id] &= shared

    found: list[IND] = []
    pairs = len(columns) * (len(columns) - 1)
    for lhs_id, (lhs_rel, lhs_attr) in enumerate(columns):
        for rhs_id in sorted(rhs_candidates[lhs_id]):
            if rhs_id == lhs_id:
                continue
            rhs_rel, rhs_attr = columns[rhs_id]
            found.append(IND(lhs_rel, (lhs_attr,), rhs_rel, (rhs_attr,)))
    counters.candidates_generated += pairs
    counters.validated += pairs
    counters.found += len(found)
    return found


def _extensions(
    base: IND, unary_pool: dict[tuple[str, str], list[IND]]
) -> list[IND]:
    """Level ``k+1`` candidates extending ``base`` with one unary IND.

    Only unary extensions whose left attribute sorts after ``base``'s
    last (sorted) left attribute are used, so every candidate — whose
    canonical form has a sorted left side — is generated from exactly
    one (base, unary) pair: the base is the candidate minus its last
    left position.
    """
    last = base.lhs_attributes[-1]
    rhs_taken = set(base.rhs_attributes)
    out: list[IND] = []
    for unary in unary_pool.get((base.lhs_relation, base.rhs_relation), ()):
        attr = unary.lhs_attributes[0]
        image = unary.rhs_attributes[0]
        if attr <= last or image in rhs_taken:
            continue
        out.append(
            IND(
                base.lhs_relation,
                base.lhs_attributes + (attr,),
                base.rhs_relation,
                base.rhs_attributes + (image,),
            )
        )
    return out


def _generalizations(candidate: IND) -> list[IND]:
    """All one-position-removed projections (rule IND2 downward)."""
    arity = candidate.arity
    keep = range(arity)
    return [
        candidate.project_onto([i for i in keep if i != drop])
        for drop in keep
    ]


def discover_inds(
    db: Database,
    counters: Optional[PhaseCounters] = None,
    unary_counters: Optional[PhaseCounters] = None,
    max_arity: Optional[int] = None,
    prune: bool = True,
    session: Optional[ReasoningSession] = None,
) -> list[IND]:
    """Every nontrivial IND holding in ``db``, up to ``max_arity``.

    ``prune`` enables implication pruning through ``session`` (a fresh
    IND-only session over the unary results by default); ``False`` is
    the validate-everything baseline the benchmarks compare against.
    The returned list is identical either way — pruning only changes
    *how* a candidate is accepted, never *whether*.
    """
    if max_arity is not None and max_arity < 1:
        return []
    counters = counters if counters is not None else PhaseCounters()
    unary = discover_unary_inds(
        db, unary_counters if unary_counters is not None else counters
    )
    found: list[IND] = list(unary)
    if max_arity == 1:
        return found

    if prune and session is None:
        session = ReasoningSession(db.schema, unary)
    elif prune and session is not None:
        existing = set(session.dependencies)
        fresh = [ind for ind in unary if ind not in existing]
        if fresh:
            session.add(fresh)

    unary_pool: dict[tuple[str, str], list[IND]] = {}
    for ind in unary:
        unary_pool.setdefault(
            (ind.lhs_relation, ind.rhs_relation), []
        ).append(ind)

    # Trivial INDs R[A] c R[A] are tautologies: never reported, but
    # they participate in the lattice as validated stepping stones —
    # without them the apriori check would wrongly reject candidates
    # like R[A,B] c R[A,C], whose projections include a trivial IND.
    # They are only needed where they can lead anywhere: a nontrivial
    # intra-relation n-ary IND always has a nontrivial unary
    # projection, so a relation with no nontrivial (R, R) unary IND
    # gets no stones — otherwise a plain wide table would walk its
    # whole 2^arity trivial lattice to discover nothing.
    trivial_unary = [
        IND(rel.name, (attr,), rel.name, (attr,))
        for rel in sorted(db, key=lambda rel: rel.name)
        if unary_pool.get((rel.name, rel.name))
        for attr in rel.schema.attributes
    ]
    for ind in trivial_unary:
        unary_pool[(ind.lhs_relation, ind.rhs_relation)].append(ind)

    level = [ind.canonical() for ind in unary + trivial_unary]
    arity = 1
    while level and (max_arity is None or arity < max_arity):
        validated = set(level)
        next_level: list[IND] = []
        for base in level:
            for candidate in _extensions(base, unary_pool):
                if any(
                    projection not in validated
                    for projection in _generalizations(candidate)
                ):
                    continue  # some projection fails: the IND cannot hold
                if candidate.is_trivial():
                    # A tautology: costs nothing, reported nowhere, but
                    # stays in the level for higher apriori checks.
                    next_level.append(candidate)
                    continue
                counters.candidates_generated += 1
                holds = None
                if prune and session is not None:
                    try:
                        implied = session.implies(candidate).verdict
                    except SearchBudgetExceeded:
                        # A blown reachability budget is not a verdict:
                        # fall back to validating against the data.
                        implied = False
                    if implied:
                        counters.pruned_by_implication += 1
                        holds = True
                if holds is None:
                    counters.validated += 1
                    counters.rows_scanned += len(
                        db.relation(candidate.lhs_relation)
                    ) + len(db.relation(candidate.rhs_relation))
                    holds = candidate.holds_in(db)
                    if holds and prune and session is not None:
                        # Only *validated* INDs carry new information;
                        # implied ones would bloat the premise set and
                        # force needless reach-index recompiles.
                        session.add(candidate)
                if holds:
                    next_level.append(candidate)
        fresh = [ind for ind in next_level if not ind.is_trivial()]
        counters.found += len(fresh)
        found.extend(fresh)
        level = next_level
        arity += 1
    return found
