"""The discovery pipeline: data -> satisfied deps -> minimal cover.

:func:`discover` orchestrates the phase sequence — FD mining per
relation, unary IND mining over the shared inverted index, the
implication-pruned n-ary lift — and then :func:`minimal_cover`
*reduces* the result with the reasoning engine: every discovered
dependency the remaining ones already imply is dropped, exercising
the session lifecycle (``retract`` -> ``implies`` -> ``add`` back)
instead of rebuilding a premise set per question.

Reduction strategies
--------------------

``"auto"`` (default) uses whole-premise implication whenever an exact
engine exists for every question (pure-FD, pure-IND, or the unary
fragment) and falls back to *class-local* reduction — FDs against the
other FDs, INDs against the other INDs — on mixed non-unary sets,
where whole-premise implication is only chase-semi-decidable.
``"full"`` forces whole-premise implication (budgeted; a blown chase
budget conservatively keeps the dependency), ``"class-local"`` forces
the per-class reduction.  Every strategy is sound: a dropped
dependency is always implied by what remains.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.exceptions import ChaseBudgetExceeded, SearchBudgetExceeded
from repro.discovery.fd_miner import discover_fds
from repro.discovery.ind_miner import discover_inds
from repro.discovery.report import DiscoveryReport
from repro.engine.session import ReasoningSession
from repro.model.database import Database

_STRATEGIES = ("auto", "full", "class-local")


def _reduction_order(dependencies: Sequence[Dependency]) -> list[Dependency]:
    """Deterministic reduction order: INDs by descending arity first,
    then FDs by descending left-hand-side size, ties by rendering.

    High-arity INDs are questioned while every projection is still
    present (projections never imply their extension, so the strong
    INDs survive and the redundant projections fall right after);
    wide-lhs FDs are the augmentation-redundant ones and fall early.
    """

    def rank(dep: Dependency) -> tuple:
        if isinstance(dep, IND):
            return (0, -dep.arity, str(dep))
        if isinstance(dep, FD):
            return (1, -len(dep.lhs), str(dep))
        return (2, 0, str(dep))

    return sorted(dependencies, key=rank)


def _exact_engines_cover(session: ReasoningSession) -> bool:
    """Whether every premise-set question has an exact engine."""
    index = session.index
    return index.pure_ind or index.pure_fd or (
        index.all_unary and not index.rds
    )


def _implied_without(session: ReasoningSession, dep: Dependency) -> bool:
    """Whether the session's *other* premises imply ``dep``.

    The dependency is retracted, asked, and added back unless implied —
    one lifecycle round-trip per question, so the session's compiled
    kernels and reach index amortize across the whole reduction.  A
    blown chase/search budget conservatively counts as "not implied".
    """
    session.retract(dep)
    try:
        implied = session.implies(dep).verdict
    except (ChaseBudgetExceeded, SearchBudgetExceeded):
        implied = False
    if not implied:
        session.add(dep)
    return implied


def minimal_cover(
    session: ReasoningSession, strategy: str = "auto"
) -> list[Dependency]:
    """Drop every session premise the remaining premises imply.

    Mutates ``session`` in place (the kept premises *are* the cover)
    and returns the cover in the session's premise order.  See the
    module docstring for the strategy semantics; every strategy is
    sound, "full"/"auto"-with-exact-engines are also locally minimal
    (no kept dependency is implied by the others).
    """
    if strategy not in _STRATEGIES:
        raise ValueError(
            f"unknown reduction strategy {strategy!r}; "
            f"expected one of {_STRATEGIES}"
        )
    if strategy == "auto":
        strategy = (
            "full" if _exact_engines_cover(session) else "class-local"
        )

    if strategy == "full":
        for dep in _reduction_order(session.dependencies):
            _implied_without(session, dep)
        return list(session.dependencies)

    # Class-local: reduce each class against its own kind only (sound:
    # implication from a premise subset is implication from the set).
    fds = [dep for dep in session.dependencies if isinstance(dep, FD)]
    inds = [dep for dep in session.dependencies if isinstance(dep, IND)]
    keep_fd = _reduce_class(session.schema, fds)
    keep_ind = _reduce_class(session.schema, inds)
    dropped = (set(fds) - set(keep_fd)) | (set(inds) - set(keep_ind))
    doomed = [dep for dep in session.dependencies if dep in dropped]
    if doomed:
        session.retract(doomed)
    return list(session.dependencies)


def _reduce_class(schema, dependencies: list) -> list:
    """One class reduced by its exact engine via a scratch session."""
    if len(dependencies) < 2:
        return list(dependencies)
    scratch = ReasoningSession(schema, dependencies)
    for dep in _reduction_order(dependencies):
        _implied_without(scratch, dep)
    return list(scratch.dependencies)


def discover(
    db: Database,
    classes: Iterable[str] = ("fd", "ind"),
    max_lhs: Optional[int] = None,
    max_ind_arity: Optional[int] = None,
    prune: bool = True,
    reduce: bool = True,
    reduce_strategy: str = "auto",
) -> DiscoveryReport:
    """Mine the dependencies ``db`` satisfies and reduce them.

    ``classes`` selects what to mine (``"fd"``, ``"ind"``, or both);
    ``max_lhs`` / ``max_ind_arity`` bound the FD lattice walk and the
    IND apriori lift; ``prune=False`` disables implication pruning
    (the validate-everything baseline, for benchmarking); ``reduce``
    runs :func:`minimal_cover` over the result.

    Every dependency in the returned report holds in ``db``; on small
    schemas the report implies every FD/IND that holds (exactness —
    see the property tests).
    """
    wanted = set(classes)
    unknown = wanted - {"fd", "ind"}
    if unknown:
        raise ValueError(
            f"unknown dependency class(es) {sorted(unknown)}; "
            "discovery mines 'fd' and 'ind'"
        )
    report = DiscoveryReport(schema=db.schema)
    if "fd" in wanted:
        report.fds = discover_fds(
            db, counters=report.counters("fd"), max_lhs=max_lhs
        )
    if "ind" in wanted:
        report.inds = discover_inds(
            db,
            counters=report.counters("nary_ind"),
            unary_counters=report.counters("unary_ind"),
            max_arity=max_ind_arity,
            prune=prune,
        )
    report.cover = report.dependencies
    if reduce and report.cover:
        # No "reduce" counter phase: the mining phases already counted
        # every dependency once, and totals() must not double-count.
        session = ReasoningSession(db.schema, report.cover, db=db)
        report.cover = minimal_cover(session, strategy=reduce_strategy)
        report.reduced = True
        report.session = session
    return report
