"""The :class:`DiscoveryReport`: what a profiling run found and paid.

One report per :func:`repro.discovery.pipeline.discover` run, carrying
the discovered dependencies, the reduced cover, and one
:class:`PhaseCounters` per phase — the cost model the benchmarks
record (candidates generated / pruned by implication / validated /
rows scanned).

``to_json`` is the machine format behind ``repro discover --json``;
``bundle_json`` renders the schema plus the reduced cover as a
standard :mod:`repro.io` bundle, so a discovery run's output loads
straight back into a :class:`~repro.engine.session.ReasoningSession`
via :func:`repro.io.session_from_json`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema


@dataclass
class PhaseCounters:
    """Work counters for one discovery phase.

    ``candidates_generated`` counts lattice/apriori candidates that
    reached the acceptance pipeline; ``pruned_by_implication`` those
    the reasoning session derived from already-accepted dependencies
    (accepted *without* a data scan); ``validated`` those checked
    against the data; ``rows_scanned`` row touches during validation
    and partition building; ``found`` dependencies accepted.
    """

    candidates_generated: int = 0
    pruned_by_implication: int = 0
    validated: int = 0
    rows_scanned: int = 0
    found: int = 0
    partitions_computed: int = 0
    partition_cache_hits: int = 0

    def to_json(self) -> dict[str, int]:
        payload = {
            "candidates_generated": self.candidates_generated,
            "pruned_by_implication": self.pruned_by_implication,
            "validated": self.validated,
            "rows_scanned": self.rows_scanned,
            "found": self.found,
        }
        if self.partitions_computed or self.partition_cache_hits:
            payload["partitions_computed"] = self.partitions_computed
            payload["partition_cache_hits"] = self.partition_cache_hits
        return payload


@dataclass
class DiscoveryReport:
    """Outcome of one data -> dependencies -> minimal-cover run.

    ``session`` is the reduction session the pipeline already built —
    its premises *are* the cover, the profiled database is bundled,
    and its FD kernels and reach index are warm from the reduction
    queries — so consumers (``ReasoningSession.from_database``) can
    adopt it instead of re-indexing the cover.  ``None`` when the run
    skipped reduction.
    """

    schema: DatabaseSchema
    fds: list[FD] = field(default_factory=list)
    inds: list[IND] = field(default_factory=list)
    cover: list[Dependency] = field(default_factory=list)
    phases: dict[str, PhaseCounters] = field(default_factory=dict)
    reduced: bool = False
    session: Any = field(default=None, repr=False, compare=False)

    @property
    def dependencies(self) -> list[Dependency]:
        """Everything discovered, FDs first (deterministic order)."""
        return list(self.fds) + list(self.inds)

    def counters(self, phase: str) -> PhaseCounters:
        """The named phase's counters, created on first touch."""
        bucket = self.phases.get(phase)
        if bucket is None:
            bucket = PhaseCounters()
            self.phases[phase] = bucket
        return bucket

    def totals(self) -> dict[str, int]:
        """Counter sums across phases (the headline cost numbers)."""
        keys = (
            "candidates_generated",
            "pruned_by_implication",
            "validated",
            "rows_scanned",
            "found",
        )
        return {
            key: sum(getattr(phase, key) for phase in self.phases.values())
            for key in keys
        }

    def to_json(self) -> dict[str, Any]:
        """The machine-readable report (``repro discover --json``)."""
        return {
            "schema": {
                rel.name: list(rel.attributes) for rel in self.schema
            },
            "fds": [str(fd) for fd in self.fds],
            "inds": [str(ind) for ind in self.inds],
            "cover": [str(dep) for dep in self.cover],
            "reduced": self.reduced,
            "phases": {
                name: phase.to_json() for name, phase in self.phases.items()
            },
            "totals": self.totals(),
        }

    def bundle_json(self, indent: Optional[int] = 2) -> str:
        """The reduced cover as a loadable :mod:`repro.io` bundle."""
        from repro.io import bundle_to_json

        return bundle_to_json(self.schema, list(self.cover), indent=indent)

    def describe(self) -> str:
        """The human-readable rendering ``repro discover`` prints."""
        lines = [
            f"discovered {len(self.fds)} FD(s), {len(self.inds)} IND(s)"
        ]
        if self.reduced:
            lines[0] += f"; minimal cover keeps {len(self.cover)}"
        for dep in self.cover:
            lines.append(f"  {dep}")
        totals = self.totals()
        lines.append(
            f"candidates {totals['candidates_generated']}, "
            f"pruned-by-implication {totals['pruned_by_implication']}, "
            f"validated {totals['validated']}, "
            f"rows scanned {totals['rows_scanned']}"
        )
        return "\n".join(lines)
