"""Dependency discovery: mine the FDs/INDs a database satisfies.

The paper studies implication over *given* premise sets; this package
closes the loop with the data itself — the profiling step every
production consumer runs first:

* :mod:`repro.discovery.partitions` — stripped-partition machinery
  (the TANE representation of attribute-set equivalence classes);
* :mod:`repro.discovery.fd_miner` — per-relation FD discovery via a
  levelwise lattice walk over cached partition refinements;
* :mod:`repro.discovery.ind_miner` — unary IND discovery from one
  shared inverted value index, lifted to n-ary INDs by apriori
  candidate generation with *implication pruning*: a candidate the
  reasoning session already derives from accepted dependencies is
  accepted without touching the data;
* :mod:`repro.discovery.pipeline` — the data -> dependencies ->
  minimal cover orchestration behind ``repro discover`` and
  :meth:`~repro.engine.session.ReasoningSession.from_database`;
* :mod:`repro.discovery.report` — the :class:`DiscoveryReport` with
  per-phase counters (candidates generated / pruned by implication /
  validated / rows scanned).

Soundness invariant (pinned by the property tests): every dependency a
report lists holds in the profiled database.  Completeness (small
schemas, against brute-force enumeration): every FD/IND the database
satisfies is implied by the reported set.
"""

from repro.discovery.fd_miner import discover_fds
from repro.discovery.ind_miner import discover_inds, discover_unary_inds
from repro.discovery.partitions import PartitionCache, StrippedPartition
from repro.discovery.pipeline import discover, minimal_cover
from repro.discovery.report import DiscoveryReport, PhaseCounters

__all__ = [
    "DiscoveryReport",
    "PhaseCounters",
    "PartitionCache",
    "StrippedPartition",
    "discover",
    "discover_fds",
    "discover_inds",
    "discover_unary_inds",
    "minimal_cover",
]
