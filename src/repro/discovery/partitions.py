"""Stripped partitions — the TANE representation of FD satisfaction.

The partition ``pi_X`` of a relation groups row indices that agree on
the attribute set ``X``; an FD ``X -> A`` holds iff refining ``pi_X``
by ``A`` splits nothing, i.e. ``pi_X`` and ``pi_{X u A}`` have the
same number of equivalence classes.  *Stripped* partitions drop the
singleton classes (a singleton can never witness a violation), which
keeps the representation linear in the number of *duplicated* rows —
the TANE trick that makes levelwise FD discovery feasible.

:class:`PartitionCache` owns one relation's partitions, computes
single-attribute partitions by one column scan each, and builds
multi-attribute partitions by *refinement products* of cached
sub-partitions, so a levelwise lattice walk reuses level ``k-1``'s
work at level ``k`` instead of rescanning the data per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.relation import Relation


@dataclass(frozen=True)
class StrippedPartition:
    """Equivalence classes of row indices, singletons stripped."""

    groups: tuple[tuple[int, ...], ...]
    n_rows: int

    @property
    def covered(self) -> int:
        """Rows appearing in some (size >= 2) group."""
        return sum(len(group) for group in self.groups)

    @property
    def num_classes(self) -> int:
        """Total class count, singletons included (the FD test reads
        this: ``X -> A`` iff ``pi_X`` and ``pi_{X u A}`` agree)."""
        return len(self.groups) + (self.n_rows - self.covered)

    @property
    def error(self) -> int:
        """TANE's ``e(X)``: rows that must be dropped to make ``X`` a
        key (``||pi|| - |pi|`` over the stripped groups)."""
        return self.covered - len(self.groups)

    def is_key_partition(self) -> bool:
        """All classes singleton — the attribute set is a superkey."""
        return not self.groups


class PartitionCache:
    """Partitions of one relation, memoized by attribute set.

    Rows are pinned to a deterministic order once, so group contents —
    and therefore every downstream counter — are reproducible across
    runs.  ``rows_scanned`` counts row touches (column scans and
    product refinements) for the discovery report.
    """

    def __init__(self, relation: Relation):
        self.relation = relation
        self.rows = relation.sorted_rows()
        self.n_rows = len(self.rows)
        self._cache: dict[frozenset[str], StrippedPartition] = {}
        self.partitions_computed = 0
        self.cache_hits = 0
        self.rows_scanned = 0

    def partition(self, attrs: frozenset[str]) -> StrippedPartition:
        """The stripped partition ``pi_X``, computed or cached.

        Multi-attribute sets are built as the product of the cached
        partition for ``X - {a}`` with the single-attribute partition
        for ``a`` (``a`` the lexicographic maximum, so the levelwise
        walk hits the cache for the prefix it just produced).
        """
        cached = self._cache.get(attrs)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if not attrs:
            partition = self._whole()
        elif len(attrs) == 1:
            partition = self._single(next(iter(attrs)))
        else:
            last = max(attrs)
            partition = self._product(
                self.partition(attrs - {last}), self.partition(frozenset((last,)))
            )
        self._cache[attrs] = partition
        self.partitions_computed += 1
        return partition

    def refines_to(self, attrs: frozenset[str], attribute: str) -> bool:
        """Whether ``attrs -> attribute`` holds (the partition test)."""
        return (
            self.partition(attrs).num_classes
            == self.partition(attrs | {attribute}).num_classes
        )

    def _whole(self) -> StrippedPartition:
        """``pi_{}``: every row in one class (stripped if singleton)."""
        if self.n_rows < 2:
            return StrippedPartition((), self.n_rows)
        return StrippedPartition((tuple(range(self.n_rows)),), self.n_rows)

    def _single(self, attribute: str) -> StrippedPartition:
        position = self.relation.schema.position(attribute)
        groups: dict[object, list[int]] = {}
        for index, row in enumerate(self.rows):
            groups.setdefault(row[position], []).append(index)
        self.rows_scanned += self.n_rows
        stripped = tuple(
            tuple(group) for group in groups.values() if len(group) >= 2
        )
        return StrippedPartition(stripped, self.n_rows)

    def _product(
        self, left: StrippedPartition, right: StrippedPartition
    ) -> StrippedPartition:
        """Rows share a product class iff they share a class on both
        sides; rows singleton on either side stay singleton."""
        owner: dict[int, int] = {}
        for group_id, group in enumerate(left.groups):
            for row in group:
                owner[row] = group_id
        groups: list[tuple[int, ...]] = []
        for group in right.groups:
            buckets: dict[int, list[int]] = {}
            for row in group:
                left_id = owner.get(row)
                if left_id is not None:
                    buckets.setdefault(left_id, []).append(row)
            self.rows_scanned += len(group)
            for bucket in buckets.values():
                if len(bucket) >= 2:
                    groups.append(tuple(bucket))
        return StrippedPartition(tuple(groups), self.n_rows)
