"""Repeating dependencies ``R[X = Y]`` (paper, Section 4).

An RD states that in each tuple ``t`` of ``R``, ``t[X] = t[Y]``.
RDs arise from the interplay of FDs and INDs (Proposition 4.3) and
are *new* dependencies: a nontrivial RD is not equivalent to any set
of FDs and INDs.

The paper notes ``R[A1..Am = B1..Bm]`` is equivalent to the set of
unary RDs ``{R[Ai = Bi]}`` — satisfaction depends only on the set of
attribute pairs, which is what equality and hashing use here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.exceptions import DependencyError
from repro.deps.base import Dependency
from repro.model.attributes import as_attribute_sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.database import Database
    from repro.model.schema import DatabaseSchema


class RD(Dependency):
    """The repeating dependency ``R[X = Y]``."""

    __slots__ = ("relation", "left", "right")

    def __init__(
        self,
        relation: str,
        left: str | Iterable[str],
        right: str | Iterable[str],
    ):
        if not relation:
            raise DependencyError("RD needs a relation name")
        left_seq = as_attribute_sequence(left)
        right_seq = as_attribute_sequence(right)
        if not left_seq:
            raise DependencyError("RD sides must be non-empty")
        if len(left_seq) != len(right_seq):
            raise DependencyError(
                f"RD sides must have equal length: |{left_seq}| != |{right_seq}|"
            )
        self.relation = relation
        self.left = left_seq
        self.right = right_seq

    # -- structure ------------------------------------------------------

    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        """The attribute pairs ``(Ai, Bi)`` the RD equates."""
        return tuple(zip(self.left, self.right))

    def _normalized_pairs(self) -> frozenset[tuple[str, str]]:
        """Order-insensitive nontrivial pairs (``A = B`` equals ``B = A``)."""
        return frozenset(
            (min(a, b), max(a, b)) for a, b in self.pairs if a != b
        )

    def is_trivial(self) -> bool:
        """Trivial iff every equated pair is an attribute with itself."""
        return not self._normalized_pairs()

    def is_unary(self) -> bool:
        return len(self.left) == 1

    def relations(self) -> tuple[str, ...]:
        return (self.relation,)

    def rename(self, mapping: dict[str, str]) -> "RD":
        return RD(mapping.get(self.relation, self.relation), self.left, self.right)

    def validate(self, schema: "DatabaseSchema") -> None:
        rel = schema.relation(self.relation)
        for attr in (*self.left, *self.right):
            if attr not in rel:
                raise DependencyError(f"attribute {attr!r} of {self} is not in {rel}")

    def decompose(self) -> list["RD"]:
        """The equivalent set of unary RDs (paper, Section 4)."""
        return [RD(self.relation, (a,), (b,)) for a, b in self.pairs]

    # -- semantics ------------------------------------------------------

    def holds_in(self, db: "Database") -> bool:
        rel = db.relation(self.relation)
        left_pos = rel.schema.positions(self.left)
        right_pos = rel.schema.positions(self.right)
        for row in rel:
            for lp, rp in zip(left_pos, right_pos):
                if row[lp] != row[rp]:
                    return False
        return True

    def violations(self, db: "Database") -> list[tuple]:
        rel = db.relation(self.relation)
        left_pos = rel.schema.positions(self.left)
        right_pos = rel.schema.positions(self.right)
        return sorted(
            (
                row
                for row in rel
                if any(row[lp] != row[rp] for lp, rp in zip(left_pos, right_pos))
            ),
            key=repr,
        )

    # -- identity -------------------------------------------------------

    def _key(self) -> tuple:
        return ("RD", self.relation, self._normalized_pairs())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RD):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        return f"{self.relation}[{','.join(self.left)} = {','.join(self.right)}]"

    def __repr__(self) -> str:
        return f"RD({self.relation!r}, {self.left!r}, {self.right!r})"
