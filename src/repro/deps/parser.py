"""A small text DSL for dependencies.

Grammar (whitespace-insensitive)::

    IND   :=  R[A,B] <= S[C,D]         (also accepts the symbol ⊆)
    FD    :=  R: A,B -> C              (empty lhs: "R: 0 -> C" or "R: -> C")
    RD    :=  R[A,B = C,D]
    EMVD  :=  R: X ->> Y | Z           (X may be "0" for empty)

Examples
--------
>>> parse_dependency("MGR[NAME,DEPT] <= EMP[NAME,DEPT]")
IND('MGR', ('NAME', 'DEPT'), 'EMP', ('NAME', 'DEPT'))
>>> parse_dependency("R: A -> B")
FD('R', ('A',), ('B',))
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.exceptions import ParseError
from repro.deps.base import Dependency
from repro.deps.emvd import EMVD
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD

_NAME = r"[A-Za-z_][\w@.]*"
_ATTRS = rf"{_NAME}(?:\s*,\s*{_NAME})*"

_IND_RE = re.compile(
    rf"^\s*({_NAME})\s*\[\s*({_ATTRS})\s*\]\s*(?:<=|⊆)\s*"
    rf"({_NAME})\s*\[\s*({_ATTRS})\s*\]\s*$"
)
_RD_RE = re.compile(
    rf"^\s*({_NAME})\s*\[\s*({_ATTRS})\s*=\s*({_ATTRS})\s*\]\s*$"
)
_EMVD_RE = re.compile(
    rf"^\s*({_NAME})\s*:\s*({_ATTRS}|0|)\s*->>\s*({_ATTRS})\s*\|\s*({_ATTRS})\s*$"
)
_FD_RE = re.compile(
    rf"^\s*({_NAME})\s*:\s*({_ATTRS}|0|)\s*->\s*({_ATTRS})\s*$"
)


def _split_attrs(text: str) -> tuple[str, ...]:
    text = text.strip()
    if not text or text == "0":
        return ()
    return tuple(part.strip() for part in text.split(","))


def parse_dependency(text: str) -> Dependency:
    """Parse one dependency; raises :class:`ParseError` on failure."""
    match = _IND_RE.match(text)
    if match:
        lhs_rel, lhs_attrs, rhs_rel, rhs_attrs = match.groups()
        return IND(lhs_rel, _split_attrs(lhs_attrs), rhs_rel, _split_attrs(rhs_attrs))
    match = _RD_RE.match(text)
    if match:
        rel, left, right = match.groups()
        return RD(rel, _split_attrs(left), _split_attrs(right))
    match = _EMVD_RE.match(text)  # must precede FD: "->>" contains "->"
    if match:
        rel, x, y, z = match.groups()
        return EMVD(rel, _split_attrs(x) or None, _split_attrs(y), _split_attrs(z))
    match = _FD_RE.match(text)
    if match:
        rel, lhs, rhs = match.groups()
        return FD(rel, _split_attrs(lhs) or None, _split_attrs(rhs))
    raise ParseError(f"could not parse dependency: {text!r}")


def parse_dependencies(lines: str | Iterable[str]) -> list[Dependency]:
    """Parse many dependencies.

    ``lines`` may be a single newline/semicolon-separated string or an
    iterable of strings.  Blank lines and ``#`` comments are skipped.
    """
    if isinstance(lines, str):
        pieces: list[str] = []
        for raw_line in lines.splitlines():
            pieces.extend(raw_line.split(";"))
    else:
        pieces = list(lines)
    result = []
    for piece in pieces:
        stripped = piece.strip()
        if not stripped or stripped.startswith("#"):
            continue
        result.append(parse_dependency(stripped))
    return result
