"""The abstract dependency protocol.

A *dependency* is a sentence about databases (the paper, Section 2).
Every concrete class implements satisfaction over finite databases,
triviality (tautology) testing, and scheme validation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.database import Database
    from repro.model.schema import DatabaseSchema


class Dependency(ABC):
    """Base class of all dependency sentences."""

    @abstractmethod
    def holds_in(self, db: "Database") -> bool:
        """Whether a (finite) database obeys this dependency."""

    @abstractmethod
    def is_trivial(self) -> bool:
        """Whether the dependency is a tautology (true in every database)."""

    @abstractmethod
    def relations(self) -> tuple[str, ...]:
        """Names of the relation schemes this dependency mentions."""

    @abstractmethod
    def validate(self, schema: "DatabaseSchema") -> None:
        """Raise :class:`DependencyError` unless well-formed over ``schema``."""

    @abstractmethod
    def rename(self, mapping: dict[str, str]) -> "Dependency":
        """A copy with relation names substituted via ``mapping``.

        Names absent from ``mapping`` are kept.  Used by the cyclic
        relabelling argument of Section 6 ("Sigma is symmetric with
        respect to INDs").
        """

    def violations(self, db: "Database") -> list:
        """Witness objects demonstrating a violation (empty if none).

        Subclasses override with class-specific witnesses; the default
        gives no detail beyond the boolean.
        """
        return [] if self.holds_in(db) else [self]


def validate_all(dependencies: Iterable[Dependency], schema: "DatabaseSchema") -> None:
    """Validate every dependency against ``schema``."""
    for dep in dependencies:
        dep.validate(schema)
