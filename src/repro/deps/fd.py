"""Functional dependencies ``R: X -> Y`` (paper, Section 2).

The paper defines FDs over *sequences* of distinct attributes (so that
FDs and INDs can be interrelated), but satisfaction depends only on
the underlying sets.  Equality and hashing therefore use the
set-semantics canonical form, while the original sequences are kept
for faithful printing.

An empty left-hand side is allowed: ``R: 0 -> A`` says every ``A``
entry of ``R`` is the same constant (used in Section 6, Case 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.exceptions import DependencyError, SchemaError
from repro.deps.base import Dependency
from repro.model.attributes import check_distinct

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.database import Database
    from repro.model.schema import DatabaseSchema


class FD(Dependency):
    """The functional dependency ``R: X -> Y``."""

    __slots__ = ("relation", "lhs", "rhs", "_key_memo")

    def __init__(
        self,
        relation: str,
        lhs: str | Iterable[str] | None,
        rhs: str | Iterable[str],
    ):
        if not relation:
            raise DependencyError("FD needs a relation name")
        try:
            lhs_seq = (
                () if lhs is None else check_distinct(lhs, context="FD left-hand side")
            )
            rhs_seq = check_distinct(rhs, context="FD right-hand side")
        except SchemaError as exc:
            raise DependencyError(str(exc)) from exc
        if not rhs_seq:
            raise DependencyError("FD right-hand side must be non-empty")
        self.relation = relation
        self.lhs = lhs_seq
        self.rhs = rhs_seq

    # -- structure ------------------------------------------------------

    @property
    def lhs_set(self) -> frozenset[str]:
        return frozenset(self.lhs)

    @property
    def rhs_set(self) -> frozenset[str]:
        return frozenset(self.rhs)

    def is_trivial(self) -> bool:
        """An FD is a tautology iff ``Y``'s attributes all appear in ``X``."""
        return self.rhs_set <= self.lhs_set

    def is_unary(self) -> bool:
        """Unary FDs (|X| = |Y| = 1) are the fragment of Sections 4, 6, 7."""
        return len(self.lhs) == 1 and len(self.rhs) == 1

    def relations(self) -> tuple[str, ...]:
        return (self.relation,)

    def rename(self, mapping: dict[str, str]) -> "FD":
        return FD(mapping.get(self.relation, self.relation), self.lhs, self.rhs)

    def validate(self, schema: "DatabaseSchema") -> None:
        rel = schema.relation(self.relation)
        for attr in (*self.lhs, *self.rhs):
            if attr not in rel:
                raise DependencyError(f"attribute {attr!r} of {self} is not in {rel}")

    # -- semantics ------------------------------------------------------

    def holds_in(self, db: "Database") -> bool:
        rel = db.relation(self.relation)
        lhs_pos = rel.schema.positions(self.lhs)
        rhs_pos = rel.schema.positions(self.rhs)
        seen: dict[tuple, tuple] = {}
        for row in rel:
            key = tuple(row[p] for p in lhs_pos)
            image = tuple(row[p] for p in rhs_pos)
            previous = seen.get(key)
            if previous is None:
                seen[key] = image
            elif previous != image:
                return False
        return True

    def violations(self, db: "Database") -> list[tuple]:
        """Pairs of tuples witnessing a violation."""
        rel = db.relation(self.relation)
        lhs_pos = rel.schema.positions(self.lhs)
        rhs_pos = rel.schema.positions(self.rhs)
        groups: dict[tuple, list[tuple]] = {}
        for row in rel:
            groups.setdefault(tuple(row[p] for p in lhs_pos), []).append(row)
        witnesses = []
        for rows in groups.values():
            images = {tuple(row[p] for p in rhs_pos): row for row in rows}
            if len(images) > 1:
                pair = sorted(images.values(), key=repr)[:2]
                witnesses.append((pair[0], pair[1]))
        return witnesses

    # -- identity -------------------------------------------------------

    def _key(self) -> tuple:
        # Memoized: equality/hashing is hot in the session lifecycle
        # (retract scans the premise list), and the sides never change.
        memo = getattr(self, "_key_memo", None)
        if memo is None:
            memo = ("FD", self.relation, self.lhs_set, self.rhs_set)
            self._key_memo = memo
        return memo

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FD):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        lhs = ",".join(self.lhs) if self.lhs else "0"
        return f"{self.relation}: {lhs} -> {','.join(self.rhs)}"

    def __repr__(self) -> str:
        return f"FD({self.relation!r}, {self.lhs!r}, {self.rhs!r})"

    # -- convenience ----------------------------------------------------

    def canonical(self) -> "FD":
        """The sorted-sequence representative of this FD's equality class."""
        lhs = tuple(sorted(self.lhs_set)) or None
        return FD(self.relation, lhs, tuple(sorted(self.rhs_set)))

    def decompose(self) -> list["FD"]:
        """Split ``X -> A1...Ak`` into singleton-rhs FDs (equivalent set)."""
        lhs = self.lhs or None
        return [FD(self.relation, lhs, (attr,)) for attr in self.rhs]
