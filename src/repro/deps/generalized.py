"""Generalized inclusion dependencies (Mitchell [Mi1], via Section 4).

A *generalized IND* drops the distinctness requirement: attributes may
repeat on either side of ``R[X] c S[Y]``.  Section 4 observes that
repeating dependencies are exactly a special case: the RD ``R[A = B]``
is equivalent to the generalized IND ``R[A,B] c R[A,A]`` — a tuple's
``(A, B)`` pair can only match some ``(t[A], t[A])`` if its own two
entries coincide.

This module provides the class with satisfaction checking, the RD
translation in both directions, and the triviality analysis
(``R[X] c R[Y]`` is generalized-trivial when each left attribute
equals its right counterpart).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.exceptions import DependencyError
from repro.deps.base import Dependency
from repro.deps.rd import RD
from repro.model.attributes import as_attribute_sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.database import Database
    from repro.model.schema import DatabaseSchema


class GeneralizedIND(Dependency):
    """An IND whose sides may repeat attributes."""

    __slots__ = ("lhs_relation", "lhs_attributes", "rhs_relation", "rhs_attributes")

    def __init__(
        self,
        lhs_relation: str,
        lhs_attributes: str | Iterable[str],
        rhs_relation: str,
        rhs_attributes: str | Iterable[str],
    ):
        if not lhs_relation or not rhs_relation:
            raise DependencyError("generalized IND needs relation names")
        lhs = as_attribute_sequence(lhs_attributes)
        rhs = as_attribute_sequence(rhs_attributes)
        if not lhs:
            raise DependencyError("generalized IND sides must be non-empty")
        if len(lhs) != len(rhs):
            raise DependencyError(
                f"generalized IND sides must have equal arity: {lhs} vs {rhs}"
            )
        self.lhs_relation = lhs_relation
        self.lhs_attributes = lhs
        self.rhs_relation = rhs_relation
        self.rhs_attributes = rhs

    # -- structure ------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.lhs_attributes)

    def has_repeats(self) -> bool:
        """Whether either side repeats an attribute (the feature that
        distinguishes generalized INDs from the paper's INDs)."""
        return len(set(self.lhs_attributes)) < self.arity or (
            len(set(self.rhs_attributes)) < self.arity
        )

    def is_ordinary(self) -> bool:
        """Whether this is an ordinary (distinct-attribute) IND."""
        return not self.has_repeats()

    def to_ordinary(self):
        """Convert to :class:`repro.deps.ind.IND` when possible."""
        from repro.deps.ind import IND

        if not self.is_ordinary():
            raise DependencyError(f"{self} repeats attributes")
        return IND(
            self.lhs_relation, self.lhs_attributes,
            self.rhs_relation, self.rhs_attributes,
        )

    def is_trivial(self) -> bool:
        """True when the two sides are identical over one relation
        (positionwise), which is satisfied by every database."""
        return (
            self.lhs_relation == self.rhs_relation
            and self.lhs_attributes == self.rhs_attributes
        )

    def relations(self) -> tuple[str, ...]:
        if self.lhs_relation == self.rhs_relation:
            return (self.lhs_relation,)
        return (self.lhs_relation, self.rhs_relation)

    def rename(self, mapping: dict[str, str]) -> "GeneralizedIND":
        return GeneralizedIND(
            mapping.get(self.lhs_relation, self.lhs_relation),
            self.lhs_attributes,
            mapping.get(self.rhs_relation, self.rhs_relation),
            self.rhs_attributes,
        )

    def validate(self, schema: "DatabaseSchema") -> None:
        lhs_schema = schema.relation(self.lhs_relation)
        rhs_schema = schema.relation(self.rhs_relation)
        for attr in self.lhs_attributes:
            if attr not in lhs_schema:
                raise DependencyError(f"attribute {attr!r} of {self} unknown")
        for attr in self.rhs_attributes:
            if attr not in rhs_schema:
                raise DependencyError(f"attribute {attr!r} of {self} unknown")

    # -- semantics ------------------------------------------------------

    def holds_in(self, db: "Database") -> bool:
        source_rel = db.relation(self.lhs_relation)
        target_rel = db.relation(self.rhs_relation)
        src_pos = [source_rel.schema.position(a) for a in self.lhs_attributes]
        dst_pos = [target_rel.schema.position(a) for a in self.rhs_attributes]
        target_rows = {
            tuple(row[p] for p in dst_pos) for row in target_rel
        }
        return all(
            tuple(row[p] for p in src_pos) in target_rows for row in source_rel
        )

    # -- identity -------------------------------------------------------

    def _key(self) -> tuple:
        return (
            "GIND",
            self.lhs_relation,
            self.lhs_attributes,
            self.rhs_relation,
            self.rhs_attributes,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedIND):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        return (
            f"{self.lhs_relation}[{','.join(self.lhs_attributes)}] <=g "
            f"{self.rhs_relation}[{','.join(self.rhs_attributes)}]"
        )

    def __repr__(self) -> str:
        return (
            f"GeneralizedIND({self.lhs_relation!r}, {self.lhs_attributes!r}, "
            f"{self.rhs_relation!r}, {self.rhs_attributes!r})"
        )


def rd_as_generalized_ind(rd: RD) -> GeneralizedIND:
    """Section 4's observation, constructive: ``R[X = Y]`` becomes
    ``R[X..Y..] c R[X..X..]`` (each equated pair contributes its left
    attribute twice on the right)."""
    lhs: list[str] = []
    rhs: list[str] = []
    for left, right in rd.pairs:
        lhs.extend((left, right))
        rhs.extend((left, left))
    return GeneralizedIND(rd.relation, lhs, rd.relation, rhs)


def generalized_ind_as_rd(gind: GeneralizedIND) -> RD:
    """Inverse direction for the RD-shaped fragment: a generalized IND
    ``R[.., A, B, ..] c R[.., A, A, ..]`` (within one relation, with the
    right side repeating the left's anchor) is an RD.

    Raises :class:`DependencyError` outside the recognizable shape.
    """
    if gind.lhs_relation != gind.rhs_relation:
        raise DependencyError(f"{gind} spans two relations; not an RD shape")
    if gind.arity % 2 != 0:
        raise DependencyError(f"{gind} has odd arity; not an RD shape")
    left: list[str] = []
    right: list[str] = []
    for i in range(0, gind.arity, 2):
        a1, b1 = gind.lhs_attributes[i], gind.lhs_attributes[i + 1]
        a2, b2 = gind.rhs_attributes[i], gind.rhs_attributes[i + 1]
        if not (a1 == a2 == b2):
            raise DependencyError(f"{gind} does not follow the RD pattern")
        left.append(a1)
        right.append(b1)
    return RD(gind.lhs_relation, left, right)
