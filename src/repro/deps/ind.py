"""Inclusion dependencies ``R[A1,...,Am] c S[B1,...,Bm]`` (Section 2).

An IND holds when the projection of ``R`` onto the left attribute
sequence is a subset of the projection of ``S`` onto the right one.
Both sides are sequences of *distinct* attributes of equal length.

Satisfaction is invariant under applying one permutation to both
sides simultaneously; equality/hashing canonicalizes accordingly
(sort the left side, carry the right side along).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.exceptions import DependencyError, SchemaError
from repro.deps.base import Dependency
from repro.model.attributes import check_distinct

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.database import Database
    from repro.model.schema import DatabaseSchema


class IND(Dependency):
    """The inclusion dependency ``R[X] c S[Y]``."""

    __slots__ = (
        "lhs_relation",
        "lhs_attributes",
        "rhs_relation",
        "rhs_attributes",
        "_key_memo",
        "_kernel_memo",
    )

    def __init__(
        self,
        lhs_relation: str,
        lhs_attributes: str | Iterable[str],
        rhs_relation: str,
        rhs_attributes: str | Iterable[str],
    ):
        if not lhs_relation or not rhs_relation:
            raise DependencyError("IND needs relation names on both sides")
        try:
            lhs = check_distinct(lhs_attributes, context="IND left-hand side")
            rhs = check_distinct(rhs_attributes, context="IND right-hand side")
        except SchemaError as exc:
            raise DependencyError(str(exc)) from exc
        if not lhs:
            raise DependencyError("IND sides must be non-empty")
        if len(lhs) != len(rhs):
            raise DependencyError(
                f"IND sides must have equal arity: |{lhs}| != |{rhs}|"
            )
        self.lhs_relation = lhs_relation
        self.lhs_attributes = lhs
        self.rhs_relation = rhs_relation
        self.rhs_attributes = rhs

    # -- structure ------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of attributes on each side."""
        return len(self.lhs_attributes)

    def is_trivial(self) -> bool:
        """``R[X] c R[X]`` is the only tautological form (rule IND1)."""
        return (
            self.lhs_relation == self.rhs_relation
            and self.lhs_attributes == self.rhs_attributes
        )

    def is_unary(self) -> bool:
        return self.arity == 1

    def is_typed(self) -> bool:
        """Typed INDs ``R[X] c S[X]`` repeat the same attribute sequence.

        The paper notes these have a polynomial-time decision problem.
        """
        return self.lhs_attributes == self.rhs_attributes

    def is_at_most_kary(self, k: int) -> bool:
        """Whether the IND's arity is at most ``k`` (another poly case)."""
        return self.arity <= k

    def relations(self) -> tuple[str, ...]:
        if self.lhs_relation == self.rhs_relation:
            return (self.lhs_relation,)
        return (self.lhs_relation, self.rhs_relation)

    def rename(self, mapping: dict[str, str]) -> "IND":
        return IND(
            mapping.get(self.lhs_relation, self.lhs_relation),
            self.lhs_attributes,
            mapping.get(self.rhs_relation, self.rhs_relation),
            self.rhs_attributes,
        )

    def validate(self, schema: "DatabaseSchema") -> None:
        lhs_schema = schema.relation(self.lhs_relation)
        rhs_schema = schema.relation(self.rhs_relation)
        for attr in self.lhs_attributes:
            if attr not in lhs_schema:
                raise DependencyError(f"attribute {attr!r} of {self} not in {lhs_schema}")
        for attr in self.rhs_attributes:
            if attr not in rhs_schema:
                raise DependencyError(f"attribute {attr!r} of {self} not in {rhs_schema}")

    def attribute_mapping(self) -> dict[str, str]:
        """The positional map from left attributes to right attributes.

        Used by the Corollary 3.2 decision procedure when applying rule
        IND2 (projection and permutation).
        """
        return dict(zip(self.lhs_attributes, self.rhs_attributes))

    # -- semantics ------------------------------------------------------

    def holds_in(self, db: "Database") -> bool:
        source = db.relation(self.lhs_relation).project(self.lhs_attributes)
        target = db.relation(self.rhs_relation).project(self.rhs_attributes)
        return source <= target

    def violations(self, db: "Database") -> list[tuple]:
        """Left-projection tuples missing from the right projection."""
        source = db.relation(self.lhs_relation).project(self.lhs_attributes)
        target = db.relation(self.rhs_relation).project(self.rhs_attributes)
        return sorted(source - target, key=repr)

    # -- identity -------------------------------------------------------

    def _canonical_sides(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        order = sorted(range(self.arity), key=lambda i: self.lhs_attributes[i])
        lhs = tuple(self.lhs_attributes[i] for i in order)
        rhs = tuple(self.rhs_attributes[i] for i in order)
        return lhs, rhs

    def canonical(self) -> "IND":
        """Representative with a sorted left-hand side."""
        lhs, rhs = self._canonical_sides()
        return IND(self.lhs_relation, lhs, self.rhs_relation, rhs)

    def _key(self) -> tuple:
        # Memoized: equality/hashing is hot in the session lifecycle
        # (retract scans the premise list), and the sides never change.
        memo = getattr(self, "_key_memo", None)
        if memo is None:
            lhs, rhs = self._canonical_sides()
            memo = ("IND", self.lhs_relation, lhs, self.rhs_relation, rhs)
            self._key_memo = memo
        return memo

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IND):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        return (
            f"{self.lhs_relation}[{','.join(self.lhs_attributes)}] <= "
            f"{self.rhs_relation}[{','.join(self.rhs_attributes)}]"
        )

    def __repr__(self) -> str:
        return (
            f"IND({self.lhs_relation!r}, {self.lhs_attributes!r}, "
            f"{self.rhs_relation!r}, {self.rhs_attributes!r})"
        )

    # -- convenience ----------------------------------------------------

    def reversed(self) -> "IND":
        """The converse inclusion ``S[Y] c R[X]``.

        Not implied in general; it *is* finitely implied in the cycle
        situations of Theorem 4.4 and Section 6.
        """
        return IND(
            self.rhs_relation, self.rhs_attributes, self.lhs_relation, self.lhs_attributes
        )

    def project_onto(self, indices: Iterable[int]) -> "IND":
        """Rule IND2: project/permute both sides by ``indices``.

        ``indices`` are distinct zero-based positions into the sides.
        """
        idx = tuple(indices)
        if len(idx) != len(set(idx)):
            raise DependencyError("IND2 selection indices must be distinct")
        if not idx:
            raise DependencyError("IND2 selection must be non-empty")
        for i in idx:
            if not 0 <= i < self.arity:
                raise DependencyError(f"IND2 selection index {i} out of range")
        return IND(
            self.lhs_relation,
            tuple(self.lhs_attributes[i] for i in idx),
            self.rhs_relation,
            tuple(self.rhs_attributes[i] for i in idx),
        )
