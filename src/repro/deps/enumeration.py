"""Exhaustive dependency enumeration over a database scheme.

The Armstrong-database verifications of Sections 6 and 7 quantify over
*every* FD, IND, or RD over the scheme ("if tau is an FD, IND, or RD,
then d obeys tau if and only if tau is in Gamma - delta").  This module
makes those quantifications executable by enumerating canonical
representatives of each class.

Canonicalization notes:

* FD satisfaction depends only on the attribute *sets*, and
  ``X -> A1..Ak`` is equivalent to the singleton-rhs set
  ``{X -> Ai}``; we enumerate sorted-lhs, singleton-rhs FDs by default
  (a complete set of representatives up to logical equivalence of
  single FDs).
* IND satisfaction is invariant under permuting both sides together;
  we enumerate INDs whose left side is sorted, with every permutation
  on the right.
* RDs decompose into unary RDs; we enumerate unordered attribute pairs.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Iterator

from repro.deps.emvd import EMVD
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.model.schema import DatabaseSchema, RelationSchema


def all_fds(
    schema: RelationSchema,
    include_trivial: bool = False,
    allow_empty_lhs: bool = True,
    singleton_rhs: bool = True,
    max_lhs: int | None = None,
) -> Iterator[FD]:
    """Every canonical FD over a single relation scheme.

    With ``singleton_rhs`` (default) the right-hand sides are single
    attributes, which is complete up to logical equivalence.
    """
    attrs = schema.attributes
    max_lhs = len(attrs) if max_lhs is None else max_lhs
    min_size = 0 if allow_empty_lhs else 1
    for size in range(min_size, max_lhs + 1):
        for lhs in combinations(sorted(attrs), size):
            rhs_choices: Iterator[tuple[str, ...]]
            if singleton_rhs:
                rhs_choices = ((a,) for a in sorted(attrs))
            else:
                rhs_choices = (
                    rhs
                    for r_size in range(1, len(attrs) + 1)
                    for rhs in combinations(sorted(attrs), r_size)
                )
            for rhs in rhs_choices:
                fd = FD(schema.name, lhs or None, rhs)
                if include_trivial or not fd.is_trivial():
                    yield fd


def all_inds(
    schema: DatabaseSchema,
    max_arity: int | None = None,
    include_trivial: bool = False,
) -> Iterator[IND]:
    """Every canonical IND over a database scheme.

    Left-hand sides are sorted attribute combinations; right-hand sides
    range over all same-length permutations of the target scheme's
    attributes.  This covers each IND equality class exactly once.
    """
    relations = list(schema)
    limit = max((rel.arity for rel in relations), default=0)
    if max_arity is not None:
        limit = min(limit, max_arity)
    for source in relations:
        for target in relations:
            top = min(source.arity, target.arity, limit)
            for arity in range(1, top + 1):
                for lhs in combinations(sorted(source.attributes), arity):
                    for rhs in permutations(sorted(target.attributes), arity):
                        ind = IND(source.name, lhs, target.name, rhs)
                        if include_trivial or not ind.is_trivial():
                            yield ind


def all_unary_inds(
    schema: DatabaseSchema, include_trivial: bool = False
) -> Iterator[IND]:
    """Every unary IND ``R[A] c S[B]`` over the scheme."""
    yield from all_inds(schema, max_arity=1, include_trivial=include_trivial)


def all_unary_rds(
    schema: RelationSchema, include_trivial: bool = False
) -> Iterator[RD]:
    """Every unary RD ``R[A = B]`` over one relation scheme.

    Nontrivial RDs correspond to unordered attribute pairs.
    """
    attrs = sorted(schema.attributes)
    if include_trivial:
        for attr in attrs:
            yield RD(schema.name, (attr,), (attr,))
    for left, right in combinations(attrs, 2):
        yield RD(schema.name, (left,), (right,))


def all_rds(schema: DatabaseSchema, include_trivial: bool = False) -> Iterator[RD]:
    """Every unary RD over every relation of a database scheme."""
    for rel in schema:
        yield from all_unary_rds(rel, include_trivial=include_trivial)


def all_emvds(schema: RelationSchema, include_trivial: bool = False) -> Iterator[EMVD]:
    """Every EMVD ``X ->> Y | Z`` over one relation scheme.

    ``X, Y, Z`` are disjoint (canonical representatives); ``Y, Z``
    non-empty; the unordered nature of ``Y | Z`` is deduplicated by
    requiring ``min(Y) < min(Z)``.
    """
    attrs = sorted(schema.attributes)
    n = len(attrs)
    # Assign each attribute a role: 0 = unused, 1 = X, 2 = Y, 3 = Z.
    def assignments(index: int, x: list, y: list, z: list):
        if index == n:
            if y and z and (min(y) < min(z)):
                yield tuple(x), tuple(y), tuple(z)
            return
        attr = attrs[index]
        yield from assignments(index + 1, x, y, z)
        yield from assignments(index + 1, x + [attr], y, z)
        yield from assignments(index + 1, x, y + [attr], z)
        yield from assignments(index + 1, x, y, z + [attr])

    for x, y, z in assignments(0, [], [], []):
        emvd = EMVD(schema.name, x or None, y, z)
        if include_trivial or not emvd.is_trivial():
            yield emvd


def dependency_universe(
    schema: DatabaseSchema,
    max_ind_arity: int | None = None,
    include_trivial: bool = False,
    with_rds: bool = True,
) -> list:
    """All FDs, INDs (and optionally RDs) over the scheme.

    This is the sentence set the paper calls Pi in Section 7 and the
    implicit universe of Section 6, restricted to canonical
    representatives.
    """
    universe: list = []
    for rel in schema:
        universe.extend(all_fds(rel, include_trivial=include_trivial))
    universe.extend(all_inds(schema, max_arity=max_ind_arity, include_trivial=include_trivial))
    if with_rds:
        universe.extend(all_rds(schema, include_trivial=include_trivial))
    return universe
