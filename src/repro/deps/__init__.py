"""Dependency classes: FDs, INDs, RDs, EMVDs/MVDs, plus parsing and
exhaustive enumeration over a database scheme.

These are the sentence classes the paper studies:

* functional dependencies ``R: X -> Y`` (Section 2),
* inclusion dependencies ``R[X] c S[Y]`` (Section 2),
* repeating dependencies ``R[X = Y]`` (Section 4),
* embedded multivalued dependencies ``X ->> Y | Z`` (Section 5).
"""

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.deps.emvd import EMVD, MVD
from repro.deps.parser import parse_dependencies, parse_dependency
from repro.deps.enumeration import (
    all_emvds,
    all_fds,
    all_inds,
    all_rds,
    all_unary_inds,
    all_unary_rds,
    dependency_universe,
)

__all__ = [
    "Dependency",
    "FD",
    "IND",
    "RD",
    "EMVD",
    "MVD",
    "parse_dependency",
    "parse_dependencies",
    "all_emvds",
    "all_fds",
    "all_inds",
    "all_rds",
    "all_unary_inds",
    "all_unary_rds",
    "dependency_universe",
]
