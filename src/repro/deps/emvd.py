"""Embedded multivalued dependencies ``X ->> Y | Z`` (paper, Section 5).

A relation ``r`` obeys the EMVD ``X ->> Y | Z`` (with ``Y`` and ``Z``
disjoint attribute sets) if whenever ``t1, t2`` in ``r`` agree on
``X``, there is a ``t3`` in ``r`` with ``t3[XY] = t1[XY]`` and
``t3[XZ] = t2[XZ]``.

The paper uses Sagiv and Walecka's EMVD family to demonstrate its
Corollary 5.2 on the nonexistence of k-ary complete axiomatizations
(Theorem 5.3).  An MVD is the special case where ``X u Y u Z`` covers
all attributes of the scheme.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.exceptions import DependencyError
from repro.deps.base import Dependency
from repro.model.attributes import as_attribute_sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.database import Database
    from repro.model.schema import DatabaseSchema


class EMVD(Dependency):
    """The embedded multivalued dependency ``X ->> Y | Z`` over ``R``."""

    __slots__ = ("relation", "x", "y", "z")

    def __init__(
        self,
        relation: str,
        x: str | Iterable[str] | None,
        y: str | Iterable[str],
        z: str | Iterable[str],
    ):
        if not relation:
            raise DependencyError("EMVD needs a relation name")
        x_set = frozenset(() if x is None else as_attribute_sequence(x))
        y_set = frozenset(as_attribute_sequence(y))
        z_set = frozenset(as_attribute_sequence(z))
        if not y_set or not z_set:
            raise DependencyError("EMVD Y and Z components must be non-empty")
        if y_set & z_set:
            raise DependencyError(
                f"EMVD Y and Z must be disjoint, both contain {sorted(y_set & z_set)}"
            )
        self.relation = relation
        self.x = x_set
        self.y = y_set
        self.z = z_set

    # -- structure ------------------------------------------------------

    def is_trivial(self) -> bool:
        """Sufficient syntactic triviality check.

        If ``Y - X`` or ``Z - X`` is empty, the witness tuple ``t3`` can
        always be chosen as ``t2`` or ``t1`` respectively, so the EMVD
        is a tautology.
        """
        return not (self.y - self.x) or not (self.z - self.x)

    def relations(self) -> tuple[str, ...]:
        return (self.relation,)

    def rename(self, mapping: dict[str, str]) -> "EMVD":
        return EMVD(mapping.get(self.relation, self.relation),
                    tuple(sorted(self.x)) or None,
                    tuple(sorted(self.y)), tuple(sorted(self.z)))

    def validate(self, schema: "DatabaseSchema") -> None:
        rel = schema.relation(self.relation)
        for attr in (*self.x, *self.y, *self.z):
            if attr not in rel:
                raise DependencyError(f"attribute {attr!r} of {self} is not in {rel}")

    def attribute_sets(self) -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
        return self.x, self.y, self.z

    # -- semantics ------------------------------------------------------

    def holds_in(self, db: "Database") -> bool:
        rel = db.relation(self.relation)
        x_seq = tuple(sorted(self.x))
        xy_seq = tuple(sorted(self.x | self.y))
        xz_seq = tuple(sorted(self.x | self.z))
        x_pos = rel.schema.positions(x_seq)
        xy_pos = rel.schema.positions(xy_seq)
        xz_pos = rel.schema.positions(xz_seq)

        groups: dict[tuple, list[tuple]] = {}
        for row in rel:
            groups.setdefault(tuple(row[p] for p in x_pos), []).append(row)
        for rows in groups.values():
            xy_values = {tuple(row[p] for p in xy_pos) for row in rows}
            xz_values = {tuple(row[p] for p in xz_pos) for row in rows}
            present = {
                (tuple(row[p] for p in xy_pos), tuple(row[p] for p in xz_pos))
                for row in rows
            }
            # For every pair (t1, t2) in the group we need the
            # combination (t1[XY], t2[XZ]) to be realized by some t3
            # of the same group (t3 agrees on X automatically).
            for xy in xy_values:
                for xz in xz_values:
                    if (xy, xz) not in present:
                        return False
        return True

    # -- identity -------------------------------------------------------

    def _key(self) -> tuple:
        return ("EMVD", self.relation, self.x, self.y, self.z)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EMVD):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        x = ",".join(sorted(self.x)) if self.x else "0"
        return (
            f"{self.relation}: {x} ->> {','.join(sorted(self.y))}"
            f" | {','.join(sorted(self.z))}"
        )

    def __repr__(self) -> str:
        return (
            f"EMVD({self.relation!r}, {sorted(self.x)!r}, "
            f"{sorted(self.y)!r}, {sorted(self.z)!r})"
        )


class MVD(EMVD):
    """A (full) multivalued dependency: ``X ->> Y`` with Z = rest.

    Constructed from a relation scheme so the complement can be taken.
    """

    def __init__(
        self,
        relation: str,
        attributes: Iterable[str],
        x: str | Iterable[str] | None,
        y: str | Iterable[str],
    ):
        all_attrs = frozenset(as_attribute_sequence(tuple(attributes)))
        x_set = frozenset(() if x is None else as_attribute_sequence(x))
        y_set = frozenset(as_attribute_sequence(y)) - x_set
        z_set = all_attrs - x_set - y_set
        if not y_set:
            # Degenerate: Y subset of X; represent with Z as the body.
            y_set = z_set or frozenset(all_attrs - x_set)
            z_set = frozenset()
        if not z_set:
            # Fully trivial MVD; encode as an EMVD with Z = Y to keep
            # the class total (it is a tautology either way).
            z_set = y_set
            super().__init__(relation, tuple(sorted(x_set)) or None,
                             tuple(sorted(y_set)), tuple(sorted(z_set)))
            return
        super().__init__(relation, tuple(sorted(x_set)) or None,
                         tuple(sorted(y_set)), tuple(sorted(z_set)))
