"""Nondeterministic linear bounded automata, rewrite-rule style.

Following the paper exactly: ``M = (K, Gamma, Delta, s, h)`` where a
configuration on an input of length ``n`` is a string in
``Gamma* K Gamma+`` of length ``n + 1`` (the ``K`` symbol marks the
state and head position, placed immediately left of the scanned
symbol), and the moves are *rewriting rules* ``abc -> a'b'c'`` with
``a, b, c, a', b', c'`` in ``K u Gamma``, applied anywhere in the
configuration.

Helper generators build the rule families corresponding to classical
head moves; arbitrary rule sets are equally welcome (the reduction
does not care where the rules came from).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import ReproError

Symbol = str
Window = tuple[Symbol, Symbol, Symbol]
Rule = tuple[Window, Window]


@dataclass(frozen=True)
class LBA:
    """A nondeterministic linear bounded automaton.

    ``states`` and ``alphabet`` must be disjoint; ``blank`` belongs to
    the alphabet; every rule must contain exactly one state symbol on
    each side (a configuration has exactly one).
    """

    states: frozenset[Symbol]
    alphabet: frozenset[Symbol]
    start: Symbol
    halt: Symbol
    rules: tuple[Rule, ...]
    blank: Symbol = "B"

    def __init__(
        self,
        states: Iterable[Symbol],
        alphabet: Iterable[Symbol],
        start: Symbol,
        halt: Symbol,
        rules: Iterable[Rule],
        blank: Symbol = "B",
    ):
        states = frozenset(states)
        alphabet = frozenset(alphabet)
        if states & alphabet:
            raise ReproError(
                f"states and alphabet overlap: {sorted(states & alphabet)}"
            )
        if start not in states or halt not in states:
            raise ReproError("start and halt must be states")
        if blank not in alphabet:
            raise ReproError(f"blank {blank!r} must be in the alphabet")
        normalized: list[Rule] = []
        for lhs, rhs in rules:
            lhs = tuple(lhs)
            rhs = tuple(rhs)
            if len(lhs) != 3 or len(rhs) != 3:
                raise ReproError(f"rules are windows of width 3: {lhs} -> {rhs}")
            for window in (lhs, rhs):
                state_count = sum(1 for sym in window if sym in states)
                if state_count != 1:
                    raise ReproError(
                        f"each rule side needs exactly one state symbol: {window}"
                    )
                for sym in window:
                    if sym not in states and sym not in alphabet:
                        raise ReproError(f"unknown symbol {sym!r} in rule")
            normalized.append((lhs, rhs))
        object.__setattr__(self, "states", states)
        object.__setattr__(self, "alphabet", alphabet)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "halt", halt)
        object.__setattr__(self, "rules", tuple(normalized))
        object.__setattr__(self, "blank", blank)

    @property
    def symbols(self) -> frozenset[Symbol]:
        """``K u Gamma``."""
        return self.states | self.alphabet

    def describe(self) -> str:
        lines = [
            f"LBA: states={sorted(self.states)}, alphabet={sorted(self.alphabet)},",
            f"     start={self.start}, halt={self.halt}, blank={self.blank}",
            f"     {len(self.rules)} rewrite rules:",
        ]
        for lhs, rhs in self.rules:
            lines.append(f"       {' '.join(lhs)} -> {' '.join(rhs)}")
        return "\n".join(lines)


def right_rules(
    state: Symbol,
    read: Symbol,
    write: Symbol,
    next_state: Symbol,
    alphabet: Iterable[Symbol],
) -> list[Rule]:
    """Classical right move ``(q, read) -> (q', write, R)`` as windows:
    ``q read x -> write q' x`` for every tape symbol ``x``."""
    return [
        ((state, read, x), (write, next_state, x)) for x in alphabet
    ]


def left_rules(
    state: Symbol,
    read: Symbol,
    write: Symbol,
    next_state: Symbol,
    alphabet: Iterable[Symbol],
) -> list[Rule]:
    """Classical left move: ``x q read -> q' x write``."""
    return [
        ((x, state, read), (next_state, x, write)) for x in alphabet
    ]


def stay_rules(
    state: Symbol,
    read: Symbol,
    write: Symbol,
    next_state: Symbol,
    alphabet: Iterable[Symbol],
) -> list[Rule]:
    """Classical stay move, in both window alignments so it can fire
    wherever the state sits: ``q read x -> q' write x`` and
    ``x q read -> x q' write``."""
    rules: list[Rule] = []
    for x in alphabet:
        rules.append(((state, read, x), (next_state, write, x)))
        rules.append(((x, state, read), (x, next_state, write)))
    return rules
