"""Configurations and their successor relation.

A configuration is a tuple of symbols of length ``n + 1`` containing
exactly one state symbol, which is never last (it stands immediately
left of the scanned cell).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import ReproError
from repro.lba.machine import LBA, Symbol

Configuration = tuple[Symbol, ...]


def initial_configuration(machine: LBA, word: Iterable[Symbol]) -> Configuration:
    """``s x``: the start state followed by the input word."""
    word = tuple(word)
    if not word:
        raise ReproError("LBA inputs must be non-empty")
    for sym in word:
        if sym not in machine.alphabet:
            raise ReproError(f"input symbol {sym!r} not in alphabet")
    return (machine.start, *word)


def accepting_configuration(machine: LBA, n: int) -> Configuration:
    """``h B^n``: the halting state followed by ``n`` blanks."""
    return (machine.halt, *([machine.blank] * n))


def is_valid_configuration(machine: LBA, config: Configuration) -> bool:
    """Exactly one state symbol, not in the last position."""
    state_positions = [
        i for i, sym in enumerate(config) if sym in machine.states
    ]
    if len(state_positions) != 1:
        return False
    if state_positions[0] == len(config) - 1:
        return False
    return all(
        sym in machine.alphabet or sym in machine.states for sym in config
    )


def successors(machine: LBA, config: Configuration) -> Iterator[Configuration]:
    """All configurations reachable in one rewrite step.

    A rule ``abc -> a'b'c'`` fires at every window position where the
    left side matches (the window always involves the state symbol,
    since rules carry exactly one state on each side).
    """
    length = len(config)
    for lhs, rhs in machine.rules:
        for j in range(length - 2):
            if config[j] == lhs[0] and config[j + 1] == lhs[1] and (
                config[j + 2] == lhs[2]
            ):
                yield config[:j] + rhs + config[j + 3:]


def reachable_configurations(
    machine: LBA,
    start: Configuration,
    max_configs: int = 1_000_000,
) -> set[Configuration]:
    """All configurations reachable from ``start`` (exact BFS closure)."""
    from collections import deque

    from repro.exceptions import SearchBudgetExceeded

    seen = {start}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for nxt in successors(machine, current):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
                if len(seen) > max_configs:
                    raise SearchBudgetExceeded(
                        f"configuration closure exceeded {max_configs}",
                        explored=len(seen),
                    )
    return seen
