"""LBA acceptance by exact configuration-graph search.

The configuration space on inputs of length ``n`` is finite
(``<= |K u Gamma|^(n+1)``), so breadth-first search decides acceptance
exactly — in exponential worst-case time, which is precisely why the
problem is the canonical PSPACE-complete benchmark rather than a
tractable one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.exceptions import SearchBudgetExceeded
from repro.lba.configuration import (
    Configuration,
    accepting_configuration,
    initial_configuration,
    successors,
)
from repro.lba.machine import LBA


@dataclass
class AcceptanceResult:
    """Outcome of the acceptance search, with a witness computation."""

    accepted: bool
    explored: int
    computation: Optional[list[Configuration]] = None

    def describe(self) -> str:
        lines = [
            f"{'ACCEPTED' if self.accepted else 'rejected'} "
            f"({self.explored} configurations explored)"
        ]
        if self.computation:
            for step, config in enumerate(self.computation):
                lines.append(f"  {step:3d}: {' '.join(config)}")
        return "\n".join(lines)


def accepts(
    machine: LBA,
    word: Iterable[str],
    max_configs: int = 1_000_000,
) -> AcceptanceResult:
    """Does ``machine`` accept ``word`` within ``|word|`` tape cells?

    Acceptance means reaching the configuration ``h B^n`` from ``s x``
    (the paper's convention).  Returns the witness computation when
    accepted.
    """
    word = tuple(word)
    start = initial_configuration(machine, word)
    goal = accepting_configuration(machine, len(word))
    if start == goal:
        return AcceptanceResult(True, explored=1, computation=[start])
    parents: dict[Configuration, Configuration] = {}
    seen = {start}
    queue: deque[Configuration] = deque([start])
    explored = 0
    while queue:
        current = queue.popleft()
        explored += 1
        if explored > max_configs:
            raise SearchBudgetExceeded(
                f"acceptance search exceeded {max_configs} configurations",
                explored=explored,
            )
        for nxt in successors(machine, current):
            if nxt in seen:
                continue
            seen.add(nxt)
            parents[nxt] = current
            if nxt == goal:
                path = [nxt]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                path.reverse()
                return AcceptanceResult(True, explored=explored, computation=path)
            queue.append(nxt)
    return AcceptanceResult(False, explored=explored)
