"""Compile classical Turing-machine transition tables into LBAs.

The paper takes moves as abstract rewrite rules ``abc -> a'b'c'``; for
convenience this module compiles the familiar head-move formulation
``delta(q, read) -> (q', write, L/R/S)`` into that rule form, using
the window encodings of :mod:`repro.lba.machine`:

* ``R``: ``q read x -> write q' x``  (head cannot move right off the
  last cell — no window exists there, matching the space bound);
* ``L``: ``x q read -> q' x write``;
* ``S``: both window alignments, so the move can fire at the right
  edge too.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import ReproError
from repro.lba.machine import LBA, Rule, left_rules, right_rules, stay_rules

Move = tuple[str, str, str]
"""``(next_state, write_symbol, direction)`` with direction L/R/S."""

TransitionTable = Mapping[tuple[str, str], Iterable[Move]]
"""``(state, read_symbol) -> iterable of nondeterministic moves``."""


def compile_lba(
    states: Iterable[str],
    alphabet: Iterable[str],
    start: str,
    halt: str,
    transitions: TransitionTable,
    blank: str = "B",
) -> LBA:
    """Build an LBA from a classical nondeterministic transition table.

    >>> machine = compile_lba(
    ...     states=("s", "h"),
    ...     alphabet=("a", "B"),
    ...     start="s", halt="h",
    ...     transitions={("s", "a"): [("s", "B", "R")]},
    ... )
    >>> len(machine.rules)
    2
    """
    alphabet = tuple(alphabet)
    rules: list[Rule] = []
    for (state, read), moves in transitions.items():
        for next_state, write, direction in moves:
            if direction == "R":
                rules.extend(right_rules(state, read, write, next_state, alphabet))
            elif direction == "L":
                rules.extend(left_rules(state, read, write, next_state, alphabet))
            elif direction == "S":
                rules.extend(stay_rules(state, read, write, next_state, alphabet))
            else:
                raise ReproError(f"unknown direction {direction!r} (use L/R/S)")
    return LBA(
        states=states,
        alphabet=alphabet,
        start=start,
        halt=halt,
        rules=rules,
        blank=blank,
    )


def sweep_and_home_machine() -> LBA:
    """A compiled example: blank the tape rightwards, then walk home.

    Demonstrates the compiler on the accept-all language (n >= 2):
    state ``s`` sweeps right writing blanks; when it runs out of
    right-moves (the window vanishes at the right wall) the stay-move
    turnaround fires; ``l`` walks left; the final stay-move converts to
    ``h`` at the left wall.
    """
    return compile_lba(
        states=("s", "l", "h"),
        alphabet=("a", "B"),
        start="s",
        halt="h",
        transitions={
            # sweep right over a's, blanking them
            ("s", "a"): [("s", "B", "R"),
                         # nondeterministic turnaround on the last a
                         ("l", "B", "S")],
            # walk left over blanks
            ("l", "B"): [("l", "B", "L"),
                         # convert to halt (fires anywhere; only the
                         # left-wall conversion reaches h B^n)
                         ("h", "B", "S")],
        },
    )
