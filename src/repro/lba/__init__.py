"""Linear bounded automata and the Theorem 3.3 PSPACE reduction.

The paper proves the decision problem for INDs PSPACE-complete by
reducing LINEAR BOUNDED AUTOMATON ACCEPTANCE to IND implication.  This
package implements the substrate from scratch: nondeterministic LBAs
in the paper's rewrite-rule formulation (moves as local rules
``abc -> a'b'c'`` on configurations), exact acceptance via
configuration-graph search, the reduction itself, and a library of
example machines.
"""

from repro.lba.machine import LBA, right_rules, left_rules, stay_rules
from repro.lba.configuration import (
    initial_configuration,
    accepting_configuration,
    successors,
)
from repro.lba.acceptance import accepts, AcceptanceResult
from repro.lba.reduction import (
    ReducedInstance,
    configuration_to_expression,
    expression_to_configuration,
    reduce_to_inds,
    verify_reduction,
)
from repro.lba.examples import (
    accept_all_machine,
    even_length_machine,
    contains_b_machine,
    looping_machine,
)
from repro.lba.compile import compile_lba, sweep_and_home_machine

__all__ = [
    "LBA",
    "right_rules",
    "left_rules",
    "stay_rules",
    "initial_configuration",
    "accepting_configuration",
    "successors",
    "accepts",
    "AcceptanceResult",
    "ReducedInstance",
    "configuration_to_expression",
    "expression_to_configuration",
    "reduce_to_inds",
    "verify_reduction",
    "accept_all_machine",
    "even_length_machine",
    "contains_b_machine",
    "looping_machine",
    "compile_lba",
    "sweep_and_home_machine",
]
