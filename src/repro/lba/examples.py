"""A small library of example LBAs for tests, examples, and benchmarks.

All machines follow the paper's acceptance convention: accept input
``x`` (|x| = n) by reaching the configuration ``h B^n`` — so accepting
machines sweep right consuming the input, then walk the head home.

Machines are defined directly as rewrite-rule systems (the paper's
formulation); see :mod:`repro.lba.machine` for the helpers that encode
classical head moves.
"""

from __future__ import annotations

from repro.lba.machine import LBA, Rule


def accept_all_machine() -> LBA:
    """Accepts every word over ``{a}`` of length >= 2.

    Sweeps right blanking ``a``s, consumes the last one while turning
    around, walks left over blanks, and converts to the halt state at
    the left wall.
    """
    rules: list[Rule] = [
        # sweep right, blanking: s a a -> B s a
        (("s", "a", "a"), ("B", "s", "a")),
        # right end: B s a -> B l B   (consume final a, turn around)
        (("B", "s", "a"), ("B", "l", "B")),
        # also handle n = 2 start: s a <end> needs the generic rules only
        # walk left over blanks: B l B -> l B B
        (("B", "l", "B"), ("l", "B", "B")),
        # arrive home: l B B -> h B B
        (("l", "B", "B"), ("h", "B", "B")),
    ]
    return LBA(
        states=("s", "l", "h"),
        alphabet=("a", "B"),
        start="s",
        halt="h",
        rules=rules,
    )


def even_length_machine() -> LBA:
    """Accepts ``a^n`` iff ``n`` is even (n >= 2).

    The sweep alternates parity states ``s0``/``s1``; only the
    odd-count-so-far state may consume the final symbol, so exactly the
    even-length inputs reach ``h B^n``.
    """
    rules: list[Rule] = [
        (("s0", "a", "a"), ("B", "s1", "a")),
        (("s1", "a", "a"), ("B", "s0", "a")),
        # consume the last a only from s1 (odd consumed so far =>
        # total even when this fires)
        (("B", "s1", "a"), ("B", "l", "B")),
        (("B", "l", "B"), ("l", "B", "B")),
        (("l", "B", "B"), ("h", "B", "B")),
    ]
    return LBA(
        states=("s0", "s1", "l", "h"),
        alphabet=("a", "B"),
        start="s0",
        halt="h",
        rules=rules,
    )


def contains_b_machine() -> LBA:
    """Accepts words over ``{a, b}`` (length >= 2) containing >= 1 'b'.

    State ``s0`` = no ``b`` seen yet, ``s1`` = some ``b`` seen; the
    turnaround fires from ``s1``, or from ``s0`` exactly when the final
    symbol is the sought ``b``.
    """
    rules: list[Rule] = []
    for x in ("a", "b"):
        rules.append((("s0", "a", x), ("B", "s0", x)))
        rules.append((("s0", "b", x), ("B", "s1", x)))
        rules.append((("s1", "a", x), ("B", "s1", x)))
        rules.append((("s1", "b", x), ("B", "s1", x)))
    rules.extend(
        [
            (("B", "s1", "a"), ("B", "l", "B")),
            (("B", "s1", "b"), ("B", "l", "B")),
            (("B", "s0", "b"), ("B", "l", "B")),
            (("B", "l", "B"), ("l", "B", "B")),
            (("l", "B", "B"), ("h", "B", "B")),
        ]
    )
    return LBA(
        states=("s0", "s1", "l", "h"),
        alphabet=("a", "b", "B"),
        start="s0",
        halt="h",
        rules=rules,
    )


def looping_machine() -> LBA:
    """Never accepts: toggles between two states forever.

    The configuration graph is a finite cycle that never reaches the
    accepting configuration; useful for exercising the rejecting side
    of the reduction.
    """
    rules: list[Rule] = [
        (("s", "a", "a"), ("t", "a", "a")),
        (("t", "a", "a"), ("s", "a", "a")),
    ]
    return LBA(
        states=("s", "t", "h"),
        alphabet=("a", "B"),
        start="s",
        halt="h",
        rules=rules,
    )
