"""Theorem 3.3: the reduction from LBA acceptance to IND implication.

Given machine ``M`` and input ``x`` with ``|x| = n``, build INDs over a
single relation scheme ``R`` whose attributes are
``(K u Gamma) x {1, ..., n+1}`` (one attribute per symbol/position
pair, encoded here as the string ``"sym@pos"``).

* the target IND is
  ``R[(s,1),(x1,2),...,(xn,n+1)] c R[(h,1),(B,2),...,(B,n+1)]``;
* each rewrite rule ``m = abc -> a'b'c'`` and window position
  ``j in {1,...,n-1}`` contribute the IND ``S(m,j)``:

  ``R[Pj, (a,j), (b,j+1), (c,j+2)] c R[Pj, (a',j), (b',j+1), (c',j+2)]``

  where ``Pj`` is a fixed ordering of the attributes
  ``Gamma x ({1..n+1} - {j, j+1, j+2})`` (tape symbols at the
  untouched positions are carried across unchanged).

Then ``Sigma |= sigma`` iff ``M`` accepts ``x`` in space ``n``.  The
correspondence between machine configurations and the expressions of
the Corollary 3.2 decision procedure is made explicit by
:func:`configuration_to_expression` / :func:`expression_to_configuration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import ReproError
from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.core.ind_decision import DecisionResult, decide_ind
from repro.lba.acceptance import AcceptanceResult, accepts
from repro.lba.configuration import Configuration
from repro.lba.machine import LBA

RELATION = "R"


def attr(symbol: str, position: int) -> str:
    """The attribute encoding the pair ``(symbol, position)``."""
    return f"{symbol}@{position}"


def split_attr(attribute: str) -> tuple[str, int]:
    symbol, _, position = attribute.rpartition("@")
    return symbol, int(position)


@dataclass
class ReducedInstance:
    """The IND-implication instance produced by the reduction."""

    machine: LBA
    word: tuple[str, ...]
    schema: DatabaseSchema
    premises: list[IND]
    target: IND

    @property
    def n(self) -> int:
        return len(self.word)

    def decide(self, max_nodes: int = 2_000_000) -> DecisionResult:
        """Run the Corollary 3.2 procedure on the reduced instance."""
        return decide_ind(self.target, self.premises, max_nodes=max_nodes)

    def size_report(self) -> dict[str, int]:
        """Reduction blow-up statistics (for the benchmark tables)."""
        return {
            "n": self.n,
            "machine_rules": len(self.machine.rules),
            "relation_arity": self.schema.relation(RELATION).arity,
            "ind_count": len(self.premises),
            "ind_arity": self.premises[0].arity if self.premises else 0,
        }


def reduction_schema(machine: LBA, n: int) -> DatabaseSchema:
    """The single relation scheme over ``(K u Gamma) x {1..n+1}``."""
    attributes = [
        attr(symbol, position)
        for position in range(1, n + 2)
        for symbol in sorted(machine.symbols)
    ]
    return DatabaseSchema.of(RelationSchema(RELATION, attributes))


def configuration_to_expression(config: Configuration) -> tuple[str, tuple[str, ...]]:
    """The Corollary 3.2 expression corresponding to a configuration:
    position ``i`` of the configuration becomes attribute
    ``(config[i], i+1)``."""
    return (
        RELATION,
        tuple(attr(symbol, i + 1) for i, symbol in enumerate(config)),
    )


def expression_to_configuration(expression: tuple[str, tuple[str, ...]]) -> Configuration:
    """Inverse of :func:`configuration_to_expression` (positions must
    form ``1..n+1`` in order)."""
    _relation, attrs = expression
    config: list[str] = []
    for i, attribute in enumerate(attrs, start=1):
        symbol, position = split_attr(attribute)
        if position != i:
            raise ReproError(
                f"attribute {attribute} out of place at index {i}"
            )
        config.append(symbol)
    return tuple(config)


def reduce_to_inds(machine: LBA, word: Iterable[str]) -> ReducedInstance:
    """Build ``(Sigma, sigma)`` from ``(M, x)`` per Theorem 3.3."""
    word = tuple(word)
    n = len(word)
    if n < 2:
        raise ReproError(
            "the reduction needs |x| >= 2 (windows span three positions)"
        )
    for sym in word:
        if sym not in machine.alphabet:
            raise ReproError(f"input symbol {sym!r} not in the alphabet")
    schema = reduction_schema(machine, n)

    target = IND(
        RELATION,
        [attr(machine.start, 1)] + [attr(sym, i + 2) for i, sym in enumerate(word)],
        RELATION,
        [attr(machine.halt, 1)] + [attr(machine.blank, i + 2) for i in range(n)],
    )

    tape_symbols = sorted(machine.alphabet)
    premises: list[IND] = []
    for lhs_window, rhs_window in machine.rules:
        for j in range(1, n):  # window positions 1..n-1 (1-based)
            untouched = [
                p for p in range(1, n + 2) if p not in (j, j + 1, j + 2)
            ]
            p_j = [attr(sym, p) for p in untouched for sym in tape_symbols]
            lhs = p_j + [
                attr(lhs_window[0], j),
                attr(lhs_window[1], j + 1),
                attr(lhs_window[2], j + 2),
            ]
            rhs = p_j + [
                attr(rhs_window[0], j),
                attr(rhs_window[1], j + 1),
                attr(rhs_window[2], j + 2),
            ]
            premises.append(IND(RELATION, lhs, RELATION, rhs))
    return ReducedInstance(
        machine=machine,
        word=word,
        schema=schema,
        premises=premises,
        target=target,
    )


@dataclass
class ReductionVerification:
    """Side-by-side outcome of simulation and IND decision."""

    acceptance: AcceptanceResult
    decision: DecisionResult
    word: tuple[str, ...]

    @property
    def agree(self) -> bool:
        return self.acceptance.accepted == self.decision.implied

    def computation_from_chain(self) -> list[Configuration]:
        """Reconstruct the machine computation from the IND chain."""
        if not self.decision.chain:
            return []
        return [
            expression_to_configuration(expr) for expr in self.decision.chain
        ]

    def __str__(self) -> str:
        return (
            f"word={''.join(self.word)}: machine says "
            f"{'accept' if self.acceptance.accepted else 'reject'}, "
            f"IND decision says "
            f"{'implied' if self.decision.implied else 'not implied'} "
            f"-> {'AGREE' if self.agree else 'DISAGREE'}"
        )


def verify_reduction(
    machine: LBA,
    word: Iterable[str],
    max_nodes: int = 2_000_000,
) -> ReductionVerification:
    """Check both directions of Theorem 3.3 on a concrete instance:
    the machine accepts iff the reduced IND implication holds, and the
    witness chain (when present) decodes to a valid computation."""
    word = tuple(word)
    instance = reduce_to_inds(machine, word)
    acceptance = accepts(machine, word)
    decision = instance.decide(max_nodes=max_nodes)
    return ReductionVerification(
        acceptance=acceptance, decision=decision, word=word
    )
