"""Seeded random dependency workloads.

Used by the cross-validation experiments (E1) and benchmarks: the
syntactic prover, the Rule (*) chase, and finite model checks must
agree on thousands of random instances.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema, RelationSchema


def random_schema(
    rng: random.Random,
    n_relations: int = 4,
    min_arity: int = 2,
    max_arity: int = 4,
) -> DatabaseSchema:
    """A random database scheme ``R0..R(n-1)`` with random arities."""
    schemas = []
    for index in range(n_relations):
        arity = rng.randint(min_arity, max_arity)
        attributes = tuple(f"A{j}" for j in range(arity))
        schemas.append(RelationSchema(f"R{index}", attributes))
    return DatabaseSchema(schemas)


def random_inds(
    rng: random.Random,
    schema: DatabaseSchema,
    count: int = 8,
    max_arity: int = 3,
) -> list[IND]:
    """Random non-trivial INDs over ``schema``."""
    relations = list(schema)
    result: list[IND] = []
    attempts = 0
    while len(result) < count and attempts < count * 50:
        attempts += 1
        source = rng.choice(relations)
        target = rng.choice(relations)
        top = min(source.arity, target.arity, max_arity)
        if top < 1:
            continue
        arity = rng.randint(1, top)
        lhs = tuple(rng.sample(source.attributes, arity))
        rhs = tuple(rng.sample(target.attributes, arity))
        ind = IND(source.name, lhs, target.name, rhs)
        if not ind.is_trivial():
            result.append(ind)
    return result


def random_fds(
    rng: random.Random,
    schema: DatabaseSchema,
    count: int = 6,
    max_lhs: int = 2,
) -> list[FD]:
    """Random non-trivial FDs over ``schema``."""
    relations = [rel for rel in schema if rel.arity >= 2]
    result: list[FD] = []
    attempts = 0
    while len(result) < count and attempts < count * 50 and relations:
        attempts += 1
        rel = rng.choice(relations)
        lhs_size = rng.randint(1, min(max_lhs, rel.arity - 1))
        lhs = tuple(rng.sample(rel.attributes, lhs_size))
        rhs_pool = [a for a in rel.attributes if a not in lhs]
        rhs = (rng.choice(rhs_pool),)
        result.append(FD(rel.name, lhs, rhs))
    return result


def random_implication_instance(
    rng: random.Random,
    n_relations: int = 4,
    n_premises: int = 8,
    max_arity: int = 3,
    force_implied: Optional[bool] = None,
) -> tuple[DatabaseSchema, list[IND], IND]:
    """A random IND implication question ``(schema, premises, target)``.

    With ``force_implied=True`` the target is built by composing and
    projecting premises (so it is guaranteed implied); with ``False``
    the target uses a fresh attribute pattern unlikely to be implied
    (not guaranteed); with ``None`` a coin decides which construction
    to attempt.
    """
    schema = random_schema(rng, n_relations=n_relations, max_arity=max_arity + 1)
    premises = random_inds(rng, schema, count=n_premises, max_arity=max_arity)
    if not premises:
        premises = random_inds(rng, schema, count=n_premises, max_arity=max_arity)

    want_implied = rng.random() < 0.5 if force_implied is None else force_implied
    if want_implied and premises:
        # Compose a short random walk of premises starting anywhere.
        start = rng.choice(premises)
        lhs_rel, lhs_attrs = start.lhs_relation, start.lhs_attributes
        rel, attrs = start.rhs_relation, start.rhs_attributes
        for _hop in range(rng.randint(0, 3)):
            candidates = [
                p
                for p in premises
                if p.lhs_relation == rel
                and set(attrs) <= set(p.lhs_attributes)
            ]
            if not candidates:
                break
            step = rng.choice(candidates)
            mapping = step.attribute_mapping()
            attrs = tuple(mapping[a] for a in attrs)
            rel = step.rhs_relation
        # Optionally project down.
        arity = len(lhs_attrs)
        keep = sorted(rng.sample(range(arity), rng.randint(1, arity)))
        target = IND(
            lhs_rel,
            tuple(lhs_attrs[i] for i in keep),
            rel,
            tuple(attrs[i] for i in keep),
        )
        return schema, premises, target

    relations = list(schema)
    source = rng.choice(relations)
    target_rel = rng.choice(relations)
    top = min(source.arity, target_rel.arity, max_arity)
    arity = rng.randint(1, top)
    target = IND(
        source.name,
        tuple(rng.sample(source.attributes, arity)),
        target_rel.name,
        tuple(rng.sample(target_rel.attributes, arity)),
    )
    return schema, premises, target
