"""Seeded random database instances.

Random databases drive the soundness property tests (a sound rule's
conclusion must hold in every database satisfying its premises) and
the referential-integrity example.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.model.builders import database
from repro.model.database import Database
from repro.model.relation import Relation
from repro.model.schema import DatabaseSchema
from repro.core.fdind_chase import chase_database


def random_database(
    rng: random.Random,
    schema: DatabaseSchema,
    tuples_per_relation: int = 6,
    domain_size: int = 5,
) -> Database:
    """Uniform random tuples over an integer domain."""
    contents = {
        rel.name: [
            tuple(rng.randrange(domain_size) for _ in range(rel.arity))
            for _ in range(tuples_per_relation)
        ]
        for rel in schema
    }
    return database(schema, contents)


def _drop_fd_conflicts(db: Database, dependencies: Iterable[Dependency]) -> Database:
    """Remove tuples violating FDs, keeping one tuple per key group."""
    result = db
    for dep in dependencies:
        if not isinstance(dep, FD):
            continue
        rel = result.relation(dep.relation)
        lhs_pos = rel.schema.positions(dep.lhs)
        kept: dict[tuple, tuple] = {}
        for row in rel.sorted_rows():
            kept.setdefault(tuple(row[p] for p in lhs_pos), row)
        result = result.with_relation(Relation(rel.schema, kept.values()))
    return result


def random_database_satisfying(
    rng: random.Random,
    schema: DatabaseSchema,
    dependencies: Iterable[Dependency],
    tuples_per_relation: int = 4,
    domain_size: int = 6,
    attempts: int = 25,
) -> Database:
    """A random database satisfying ``dependencies``.

    Strategy: draw a random instance, drop tuples that collide on FDs
    (one survivor per key group), then chase-repair the remainder
    (adding tuples for INDs, merging fresh values for FDs).  Falls
    back to the empty database (which satisfies everything) in the
    unlikely event every attempt fails.
    """
    deps = list(dependencies)
    for _attempt in range(attempts):
        candidate = random_database(
            rng, schema,
            tuples_per_relation=tuples_per_relation,
            domain_size=domain_size,
        )
        candidate = _drop_fd_conflicts(candidate, deps)
        try:
            repaired = chase_database(candidate, deps)
        except Exception:
            continue
        if repaired.satisfies_all(deps):
            return repaired
    return database(schema, {})
