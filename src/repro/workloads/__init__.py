"""Workload generators: random dependencies, random databases, and
named example schemas for tests, examples, and benchmarks."""

from repro.workloads.random_deps import (
    random_fds,
    random_implication_instance,
    random_inds,
    random_schema,
)
from repro.workloads.random_db import (
    random_database,
    random_database_satisfying,
)
from repro.workloads.schemas import (
    employee_dependencies,
    employee_schema,
    library_dependencies,
    library_schema,
)

__all__ = [
    "random_fds",
    "random_implication_instance",
    "random_inds",
    "random_schema",
    "random_database",
    "random_database_satisfying",
    "employee_dependencies",
    "employee_schema",
    "library_dependencies",
    "library_schema",
]
