"""Named example schemas.

``employee_schema`` is the paper's own motivating example: "every
MANAGER entry of the R relation appears as an EMPLOYEE entry of the S
relation", and the typed IND ``MGR[NAME,DEPT] c EMP[NAME,DEPT]``
("every manager is an employee of the department they manage").

``library_schema`` is an entity-relationship-mapped design (the
paper's Introduction cites ER mapping as a source of INDs): entities
BOOK and MEMBER, relationship LOAN with referential INDs into both.
"""

from __future__ import annotations

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema, RelationSchema


def employee_schema() -> DatabaseSchema:
    """MGR[NAME,DEPT] and EMP[NAME,DEPT,SALARY]."""
    return DatabaseSchema.of(
        RelationSchema("MGR", ("NAME", "DEPT")),
        RelationSchema("EMP", ("NAME", "DEPT", "SALARY")),
    )


def employee_dependencies() -> list[Dependency]:
    """The paper's example dependencies over the employee scheme."""
    return [
        # Every manager is an employee of the department they manage.
        IND("MGR", ("NAME", "DEPT"), "EMP", ("NAME", "DEPT")),
        # An employee has one department and one salary.
        FD("EMP", ("NAME",), ("DEPT",)),
        FD("EMP", ("NAME",), ("SALARY",)),
        # A department has one manager.
        FD("MGR", ("DEPT",), ("NAME",)),
    ]


def library_schema() -> DatabaseSchema:
    """BOOK, MEMBER, and the LOAN relationship between them."""
    return DatabaseSchema.of(
        RelationSchema("BOOK", ("ISBN", "TITLE", "AUTHOR")),
        RelationSchema("MEMBER", ("MEMBER_ID", "NAME")),
        RelationSchema("LOAN", ("ISBN", "MEMBER_ID", "DUE")),
    )


def library_dependencies() -> list[Dependency]:
    """Referential INDs from the relationship into the entities, plus
    entity keys — the classical ER-to-relational mapping."""
    return [
        IND("LOAN", ("ISBN",), "BOOK", ("ISBN",)),
        IND("LOAN", ("MEMBER_ID",), "MEMBER", ("MEMBER_ID",)),
        FD("BOOK", ("ISBN",), ("TITLE",)),
        FD("BOOK", ("ISBN",), ("AUTHOR",)),
        FD("MEMBER", ("MEMBER_ID",), ("NAME",)),
        FD("LOAN", ("ISBN", "MEMBER_ID"), ("DUE",)),
    ]
