"""The asyncio multi-tenant reasoning server.

``repro serve`` puts a long-running HTTP/JSON front on the
:class:`~repro.engine.session.ReasoningSession` lifecycle: named
tenants (see :mod:`repro.serve.registry`), coalesced ``implies``
dispatch (see :mod:`repro.serve.coalescer`), fork-based ``whatif``
served off the event loop, and graceful drain on SIGTERM/SIGINT or
``POST /shutdown``.

Routes (all payloads JSON objects)::

    GET    /health                       liveness + tenant count
    GET    /stats                        server/registry/tenant counters
    POST   /shutdown                     begin graceful drain, then exit
    GET    /tenants                      tenant names
    POST   /tenants                      {"name", "bundle": {...}} -> create
    GET    /tenants/N/stats              session stats (premise_hash, version, ...)
    DELETE /tenants/N                    drop the tenant
    POST   /tenants/N/implies            {"target", "semantics"?} -> Answer
    POST   /tenants/N/implies_all        {"targets": [...]} -> Answers
    POST   /tenants/N/add                {"dependencies": [...]} -> delta
    POST   /tenants/N/retract            {"dependencies": [...]} -> delta
    POST   /tenants/N/whatif             {"targets", "add"?, "retract"?} -> flips
    POST   /tenants/N/check              bundled database vs premises
    GET    /replication/heartbeat        term + role + per-tenant seqs
    POST   /replication/register         {"endpoint"} -> follower joins
    GET    /replication/snapshot/N       bootstrap bundle @ seq for tenant N
    POST   /replication/wal/N            {"after": S} -> WAL records past S
    POST   /replication/apply            pushed records (term-fenced)

Replication (see :mod:`repro.serve.replication`): a server started
with ``replica_of`` boots as a read-only *follower* — it bootstraps
every tenant from the primary, applies its pushed WAL records, serves
reads with a reported lag (optionally bounded per request by
``max_lag``), answers mutations with a 421 redirect naming the
primary, and promotes itself after ``failover_after`` missed
heartbeats.  A primary forwards each mutation's record to all
registered followers *before* acknowledging it.

Graceful shutdown contract: once :meth:`ReasoningServer.begin_shutdown`
fires (signal, endpoint, or API call) the listener closes, requests
whose request line has already arrived are served to completion (their
responses carry ``Connection: close``), idle keep-alive connections
are cancelled, and :meth:`run_until_shutdown` returns after the drain
— bounded by the ``grace`` timeout.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from typing import Any, Optional

from repro.engine.answer import Semantics
from repro.engine.deadline import Deadline
from repro.exceptions import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Trace, TraceRing
from repro.serve.faults import (
    DROP_CONNECTION,
    NO_FAULTS,
    PARTITION_REPLICATION,
    REPLICATION_LAG,
    FaultInjector,
)
from repro.serve.protocol import (
    Request,
    ServeError,
    error_payload,
    json_response,
    read_request,
    text_response,
)
from repro.serve.registry import Tenant, TenantRegistry
from repro.serve.replication import (
    DEFAULT_FAILOVER_AFTER,
    DEFAULT_HEARTBEAT,
    FollowerReplicator,
    PrimaryReplicator,
    apply_envelope,
    parse_endpoint,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765
DEFAULT_GRACE = 10.0


class _ConnState:
    """Whether a connection is mid-request (drain must wait) or idle."""

    __slots__ = ("busy",)

    def __init__(self):
        self.busy = False


def _semantics_of(body: dict[str, Any]) -> Semantics:
    raw = body.get("semantics", Semantics.UNRESTRICTED.value)
    try:
        return Semantics(raw)
    except ValueError:
        raise ServeError(
            400,
            f"unknown semantics {raw!r} (expected 'unrestricted' or "
            f"'finite')",
        )


def _string_list(body: dict[str, Any], key: str) -> list[str]:
    value = body.get(key, [])
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ServeError(400, f"{key!r} must be a list of DSL strings")
    return value


def _key_of(body: dict[str, Any]) -> Optional[str]:
    key = body.get("key")
    if key is None:
        return None
    if not isinstance(key, str) or not key:
        raise ServeError(400, "'key' must be a non-empty string")
    return key


class ReasoningServer:
    """One listening socket over one :class:`TenantRegistry`."""

    def __init__(
        self,
        registry: Optional[TenantRegistry] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        grace: float = DEFAULT_GRACE,
        default_deadline: Optional[float] = None,
        faults: FaultInjector = NO_FAULTS,
        replica_of: Optional[str] = None,
        heartbeat: float = DEFAULT_HEARTBEAT,
        failover_after: int = DEFAULT_FAILOVER_AFTER,
        default_max_lag: Optional[int] = None,
        advertise: Optional[str] = None,
    ):
        self.registry = registry if registry is not None else TenantRegistry()
        self.host = host
        self.port = port
        self.grace = grace
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        self.default_deadline = default_deadline
        self.faults = faults
        if default_max_lag is not None and default_max_lag < 0:
            raise ValueError(
                f"default_max_lag must be >= 0, got {default_max_lag}"
            )
        self.default_max_lag = default_max_lag
        if advertise is not None:
            parse_endpoint(advertise)
        self.advertise = advertise
        # Replication role. A node booted with ``replica_of`` follows
        # that primary; everything else leads by default (a lone node
        # is trivially its own primary).  ``fenced`` is a terminal
        # read-only role a deposed primary steps down into.
        self.role = "follower" if replica_of else "primary"
        self.replica_of = replica_of
        self.primary_endpoint: Optional[str] = replica_of
        self.replication = PrimaryReplicator(self)
        self.follower: Optional[FollowerReplicator] = (
            FollowerReplicator(
                self, replica_of,
                heartbeat=heartbeat, failover_after=failover_after,
            )
            if replica_of
            else None
        )
        self._replication_task: Optional[asyncio.Task] = None
        # The server-wide counters live on the metrics registry (their
        # ``/stats`` entries read the instrument values back, so the
        # JSON shape is unchanged — pinned by the stats-shape test).
        metrics = self.metrics = MetricsRegistry()
        self.traces = TraceRing()
        self.promotions = metrics.counter(
            "repro_promotions_total", "Follower-to-primary promotions"
        )
        self.stepped_down = metrics.counter(
            "repro_step_downs_total", "Primary step-downs after fencing"
        )
        self.redirected_mutations = metrics.counter(
            "repro_redirected_mutations_total",
            "Mutations 421-redirected to the primary",
        )
        self.lag_rejections = metrics.counter(
            "repro_lag_rejections_total",
            "Follower reads refused for exceeding max_lag",
        )
        self.requests_served = metrics.counter(
            "repro_requests_total", "HTTP requests answered"
        )
        self.degraded_answers = metrics.counter(
            "repro_degraded_answers_total",
            "Answers degraded by deadline or budget",
        )
        self.dropped_connections = metrics.counter(
            "repro_dropped_connections_total",
            "Connections dropped by fault injection",
        )
        self._op_latency = {
            op: metrics.histogram(
                "repro_request_seconds",
                "Tenant operation latency by op",
                op=op,
            )
            for op in ("implies", "implies_all", "mutate", "whatif", "check")
        }
        self._wire_registry_metrics()
        metrics.register_collector(self._collect_metrics)
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._conn_states: dict[asyncio.Task, _ConnState] = {}

    # -- metrics wiring ----------------------------------------------------

    def _wire_registry_metrics(self) -> None:
        """Adopt the tenant registry's instruments into this server's
        metrics registry.

        A :class:`TenantRegistry` built before the server (the common
        test/CLI shape) created standalone artifact-cache counters and
        per-tenant coalescer/WAL instruments; this re-homes the live
        counter objects (values intact) and rebinds the per-tenant
        hooks so everything lands in one scrapeable registry.
        """
        from repro.serve.coalescer import _BATCH_SIZE_BUCKETS

        registry = self.registry
        if registry.metrics is None:
            registry.metrics = self.metrics
            for counter in (
                registry.artifacts.hits,
                registry.artifacts.misses,
                registry.artifacts.evictions,
                registry.artifacts.drifted,
            ):
                self.metrics.register(counter)
        batch_sizes = self.metrics.histogram(
            "repro_coalescer_batch_size",
            "Requests per coalescer flush",
            buckets=_BATCH_SIZE_BUCKETS,
        )
        fsync = self.metrics.histogram(
            "repro_wal_fsync_seconds", "WAL record write+fsync latency"
        )
        for tenant in registry.tenants.values():
            tenant.coalescer.batch_sizes = batch_sizes
            if tenant.store is not None:
                tenant.store.on_fsync = fsync.observe

    def _collect_metrics(self) -> None:
        """Scrape-time gauges derived from the live ``stats()`` dicts.

        This is the whole trick that keeps instrumentation off the hot
        path: the engine's counters (reach compiles, chase rounds, FD
        memo hits, ...) are ints it already maintains; nothing new is
        paid per query, and the aggregation below runs only when
        ``/metrics`` is actually scraped.
        """
        metrics = self.metrics
        registry = self.registry
        metrics.gauge("repro_tenants", "Live tenants").set(
            len(registry.tenants)
        )
        metrics.gauge("repro_connections", "Open connections").set(
            len(self._conn_states)
        )
        metrics.gauge(
            "repro_traces_recorded", "Traces recorded into the debug ring"
        ).set(self.traces.recorded)
        session_sums = {
            "repro_engine_queries": "queries",
            "repro_engine_reach_cache_hits": "reach_cache_hits",
            "repro_engine_reach_fallbacks": "reach_fallbacks",
            "repro_engine_degraded_answers": "degraded_answers",
            "repro_reach_compiles": "reach_compiles",
            "repro_reach_compile_seconds": "reach_compile_seconds",
            "repro_reach_extensions": "reach_extensions",
            "repro_reach_invalidations": "reach_invalidations",
            "repro_fd_closure_hits": "closure_hits",
            "repro_fd_closure_misses": "closure_misses",
            "repro_fd_kernels_compiled": "fd_kernels_compiled",
            "repro_chase_runs": "chase_runs",
            "repro_chase_rounds": "chase_rounds",
            "repro_chase_rows_scanned": "chase_rows_scanned",
        }
        totals = dict.fromkeys(session_sums, 0)
        coalescer_keys = (
            "requests", "batches", "unique_decides", "deduplicated",
            "degraded",
        )
        coalescer_totals = dict.fromkeys(coalescer_keys, 0)
        wal_totals = {"appends": 0, "snapshots": 0}
        replayed = 0
        for tenant in registry.tenants.values():
            stats = tenant.session.stats()
            for name, key in session_sums.items():
                totals[name] += stats.get(key, 0)
            coalescer_stats = tenant.coalescer.stats()
            for key in coalescer_keys:
                coalescer_totals[key] += coalescer_stats[key]
            replayed += tenant.replayed_mutations
            if tenant.store is not None:
                wal_totals["appends"] += tenant.store.appends
                wal_totals["snapshots"] += tenant.store.snapshots
        for name, value in totals.items():
            metrics.gauge(name).set(value)
        for key, value in coalescer_totals.items():
            metrics.gauge(f"repro_coalescer_{key}").set(value)
        metrics.gauge("repro_wal_appends").set(wal_totals["appends"])
        metrics.gauge("repro_wal_snapshots").set(wal_totals["snapshots"])
        metrics.gauge("repro_replayed_mutations").set(replayed)
        replication = self.replication
        metrics.gauge("repro_replication_forwarded_records").set(
            replication.forwarded_records
        )
        metrics.gauge("repro_replication_forward_failures").set(
            replication.forward_failures
        )
        for handle in replication.followers.values():
            lag = sum(
                max(
                    0,
                    tenant.replicated_seq
                    - handle.acked_seq.get(name, 0),
                )
                for name, tenant in registry.tenants.items()
            )
            metrics.gauge(
                "repro_follower_lag",
                "Record lag of one registered follower",
                follower=handle.endpoint,
            ).set(lag)
        if self.follower is not None:
            follower = self.follower
            metrics.gauge("repro_heartbeats_ok").set(follower.heartbeats_ok)
            metrics.gauge("repro_heartbeats_missed").set(
                follower.heartbeats_missed
            )
            metrics.gauge("repro_promotion_refusals").set(
                follower.promotion_refusals
            )
            for name in follower.primary_seqs:
                metrics.gauge(
                    "repro_replication_lag",
                    "Seq delta behind the primary",
                    tenant=name,
                ).set(follower.lag_of(name))

    def _deadline_of(self, body: dict[str, Any]) -> Optional[Deadline]:
        """The request's deadline: per-request ``deadline_ms`` wins,
        otherwise the server-wide ``--default-deadline`` (if any)."""
        raw = body.get("deadline_ms")
        if raw is None:
            if self.default_deadline is None:
                return None
            return Deadline(self.default_deadline)
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) \
                or raw <= 0:
            raise ServeError(
                400, f"'deadline_ms' must be a positive number, got {raw!r}"
            )
        return Deadline.from_ms(raw)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and listen; ``port=0`` picks a free port (see ``.port``)."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.follower is not None:
            self.registry.set_replicating(True)
            self._replication_task = asyncio.create_task(
                self.follower.run(), name="repro-replication"
            )

    # -- replication role transitions --------------------------------------

    def advertised_endpoint(self) -> str:
        """The address peers and redirected clients should dial."""
        return self.advertise or f"{self.host}:{self.port}"

    def become_primary(self, term: int) -> None:
        """Promote this follower: persist the new term, then lead.

        The term is saved *before* the role flips (see
        :meth:`TenantRegistry.set_term`), so a crash mid-promotion can
        never produce a leader still stamping the old term.
        """
        self.registry.set_term(term)
        self.role = "primary"
        self.primary_endpoint = self.advertised_endpoint()
        self.promotions.inc()

    def step_down(self, term: int, leader: Optional[str] = None) -> None:
        """A higher term fenced us: stop leading, keep serving reads."""
        if term > self.registry.term:
            self.registry.set_term(term)
        if self.role == "primary":
            self.role = "fenced"
            self.stepped_down.inc()
        if leader:
            self.primary_endpoint = leader

    def begin_shutdown(self) -> None:
        """Flip the drain switch (idempotent, signal-handler safe)."""
        if self._shutdown is not None and not self._shutdown.is_set():
            self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (best effort: some platforms
        and non-main threads cannot register loop signal handlers)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.begin_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    async def run_until_shutdown(self) -> None:
        """Serve until :meth:`begin_shutdown`, then drain and return.

        A durable registry is checkpointed after the drain, so a
        *graceful* shutdown leaves empty WALs and the next boot replays
        nothing (only crashes pay tail replay).
        """
        assert self._shutdown is not None, "call start() first"
        await self._shutdown.wait()
        if self._replication_task is not None:
            self._replication_task.cancel()
            try:
                await self._replication_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._replication_task = None
        await self._drain()
        if self.registry.state_dir is not None:
            self.registry.checkpoint_all()
            self.registry.close()

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight requests, close the rest."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle connections (blocked waiting for a next request line)
        # are cancelled; busy ones get up to `grace` seconds to finish
        # writing their response.
        for task, state in list(self._conn_states.items()):
            if not state.busy:
                task.cancel()
        pending = [task for task in self._conn_states if not task.done()]
        if pending:
            _done, still_pending = await asyncio.wait(
                pending, timeout=self.grace
            )
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)

    # -- the connection loop -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        state = _ConnState()
        assert task is not None
        self._conn_states[task] = state
        try:
            while True:
                state.busy = False
                try:
                    request = await read_request(
                        reader, on_started=lambda: setattr(state, "busy", True)
                    )
                except ServeError as exc:
                    writer.write(json_response(
                        exc.status, error_payload(exc.status, str(exc)),
                        close=True,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                closing = (
                    not request.keep_alive
                    or (self._shutdown is not None and self._shutdown.is_set())
                )
                if (
                    request.method == "GET"
                    and request.path == "/metrics"
                    and request.query.get("format") != "json"
                ):
                    # The Prometheus exposition is text, not JSON, so it
                    # bypasses the JSON dispatch pipeline entirely.
                    # Count before writing: once the client has read the
                    # response, the counters must already reflect it.
                    self.requests_served.inc()
                    writer.write(
                        text_response(
                            200, self.metrics.render_prometheus(),
                            close=closing,
                        )
                    )
                    await writer.drain()
                    if closing:
                        break
                    continue
                trace = Trace(request.trace_id)
                trace.add_span(
                    "parse", request.parse_seconds, offset=0.0,
                    method=request.method, path=request.path,
                )
                status, payload = await self._safe_dispatch(request, trace)
                if (
                    request.query.get("trace")
                    and isinstance(payload, dict)
                ):
                    payload["trace"] = trace.finish().to_json()
                if self.faults.trip(DROP_CONNECTION):
                    # What a dying peer looks like from the client side:
                    # headers promise a body, a few bytes arrive, then
                    # the socket slams shut mid-response.
                    self.dropped_connections.inc()
                    writer.write(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: 4096\r\n\r\n{\"tr"
                    )
                    await writer.drain()
                    break
                # Count and record before writing: a client that has
                # read this response must observe it in the counters
                # and the trace ring (tests assert exactly that).
                self.requests_served.inc()
                self.traces.record(trace)
                writer.write(json_response(status, payload, close=closing))
                await writer.drain()
                if closing:
                    break
        except (asyncio.CancelledError, ConnectionResetError):
            pass  # drain cancelled an idle connection, or the peer vanished
        finally:
            self._conn_states.pop(task, None)
            writer.close()

    async def _safe_dispatch(
        self, request: Request, trace: Optional[Trace] = None
    ) -> tuple[int, dict[str, Any]]:
        try:
            delay = self.faults.latency_seconds()
            if delay > 0:
                if self.faults.latency_holds:
                    # ``latency:hold``: occupy the serving loop like a
                    # handler whose compute costs this much would.
                    time.sleep(delay)
                else:
                    await asyncio.sleep(delay)
            return 200, await self._dispatch(request, trace)
        except ServeError as exc:
            return exc.status, error_payload(
                exc.status, str(exc), extra=exc.extra
            )
        except ReproError as exc:
            # Parse errors, schema violations, budget overruns: the
            # caller's payload was at fault, not the server.
            return 400, error_payload(400, str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            return 500, error_payload(500, f"{type(exc).__name__}: {exc}")

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, request: Request, trace: Optional[Trace] = None
    ) -> dict[str, Any]:
        method = request.method
        parts = [part for part in request.path.split("/") if part]

        if parts == ["metrics"]:
            # The text form short-circuits in ``_handle_connection``;
            # only ``?format=json`` reaches this route.
            self._require(method, "GET", request)
            return self.metrics.render_json()
        if parts == ["debug", "traces"]:
            self._require(method, "GET", request)
            raw = request.query.get("limit", "10")
            try:
                limit = int(raw)
            except ValueError:
                raise ServeError(
                    400, f"'limit' must be an integer, got {raw!r}"
                )
            if limit < 1:
                raise ServeError(400, f"'limit' must be >= 1, got {limit}")
            return self.traces.to_json(limit)
        if parts == ["health"]:
            self._require(method, "GET", request)
            return {
                "ok": True,
                "tenants": len(self.registry.tenants),
                "draining": bool(self._shutdown and self._shutdown.is_set()),
                "role": self.role,
                "term": self.registry.term,
                "primary": (
                    self.advertised_endpoint()
                    if self.role == "primary"
                    else self.primary_endpoint
                ),
            }
        if parts == ["stats"]:
            self._require(method, "GET", request)
            return self.stats()
        if parts == ["shutdown"]:
            self._require(method, "POST", request)
            self.begin_shutdown()
            return {"ok": True, "draining": True}
        if parts and parts[0] == "tenants":
            return await self._dispatch_tenants(
                method, parts[1:], request, trace
            )
        if parts and parts[0] == "replication":
            return await self._dispatch_replication(
                method, parts[1:], request
            )
        raise ServeError(404, f"no route for {method} {request.path}")

    @staticmethod
    def _require(method: str, expected: str, request: Request) -> None:
        if method != expected:
            raise ServeError(
                405, f"{request.path} expects {expected}, got {method}"
            )

    def _require_primary(self, what: str) -> None:
        """421 Misdirected Request: mutations belong to the primary."""
        if self.role != "primary":
            self.redirected_mutations.inc()
            raise ServeError(
                421,
                f"{what} must go to the primary; this node is a "
                f"{self.role}",
                extra={"primary": self.primary_endpoint, "role": self.role},
            )

    async def _dispatch_replication(
        self, method: str, parts: list[str], request: Request
    ) -> dict[str, Any]:
        if self.faults.trip(PARTITION_REPLICATION):
            raise ServeError(
                503, "replication partitioned (fault injected)"
            )
        op = parts[0] if parts else None
        if op in ("snapshot", "wal") and self.faults.trip(REPLICATION_LAG):
            raise ServeError(
                503, "replication data plane partitioned (fault injected)"
            )
        if op == "heartbeat" and len(parts) == 1:
            self._require(method, "GET", request)
            return self.replication.heartbeat_payload()
        if op == "register" and len(parts) == 1:
            self._require(method, "POST", request)
            endpoint = request.json().get("endpoint")
            if not isinstance(endpoint, str) or not endpoint:
                raise ServeError(
                    400, "'endpoint' must be a 'host:port' string"
                )
            try:
                parse_endpoint(endpoint)
            except ValueError as exc:
                raise ServeError(400, str(exc))
            self.replication.register(endpoint)
            return {
                "ok": True,
                "term": self.registry.term,
                "role": self.role,
                "tenants": sorted(self.registry.tenants),
            }
        if op == "snapshot" and len(parts) == 2:
            self._require(method, "GET", request)
            return self.registry.replication_snapshot_of(parts[1])
        if op == "wal" and len(parts) == 2:
            self._require(method, "POST", request)
            tenant = self.registry.get(parts[1])
            after = request.json().get("after", 0)
            if isinstance(after, bool) or not isinstance(after, int) \
                    or after < 0:
                raise ServeError(
                    400, f"'after' must be a non-negative integer, got "
                         f"{after!r}"
                )
            if tenant.store is None:
                # A non-durable node keeps no tail to replay; an exactly
                # caught-up follower gets an empty page, anyone behind
                # must re-bootstrap from a snapshot.
                if after >= tenant.replicated_seq:
                    return {"records": [], "seq": tenant.replicated_seq}
                raise ServeError(
                    409,
                    f"tenant {parts[1]!r} keeps no WAL tail here",
                    extra={"resync": True},
                )
            records = tenant.store.read_from(after)
            if records is None:
                raise ServeError(
                    409,
                    f"tenant {parts[1]!r}: records after seq {after} were "
                    f"truncated by a snapshot",
                    extra={"resync": True},
                )
            return {"records": records, "seq": tenant.replicated_seq}
        if op == "apply" and len(parts) == 1:
            self._require(method, "POST", request)
            return apply_envelope(self, request.json())
        raise ServeError(404, f"no route for {method} {request.path}")

    async def _dispatch_tenants(
        self,
        method: str,
        parts: list[str],
        request: Request,
        trace: Optional[Trace] = None,
    ) -> dict[str, Any]:
        if not parts:
            if method == "GET":
                return {"tenants": sorted(self.registry.tenants)}
            self._require(method, "POST", request)
            self._require_primary("tenant creation")
            body = request.json()
            name = body.get("name")
            if not isinstance(name, str) or not name:
                raise ServeError(400, "'name' must be a non-empty string")
            tenant = self.registry.create_from_bundle(
                name, body.get("bundle", {}), options=body.get("options")
            )
            session = tenant.session
            return {
                "name": tenant.name,
                "premise_hash": session.premise_hash,
                "version": session.version,
                "premises": len(session.dependencies),
                "shared_artifacts": tenant.shared_artifacts,
            }

        name, op = parts[0], parts[1] if len(parts) > 1 else None
        if op is None:
            if method == "DELETE":
                self._require_primary("tenant drop")
                self.registry.drop(name)
                return {"ok": True, "dropped": name}
            self._require(method, "GET", request)
            return self.registry.get(name).stats()
        if len(parts) > 2:
            raise ServeError(404, f"no route for {method} {request.path}")
        tenant = self.registry.get(name)
        if op == "stats":
            self._require(method, "GET", request)
            return tenant.stats()
        self._require(method, "POST", request)
        body = request.json()
        return await self._tenant_op(tenant, op, body, trace)

    def _check_lag(self, tenant: Tenant, body: dict[str, Any]) -> None:
        """Bounded-staleness gate for follower reads.

        ``max_lag`` (per request, else the server-wide default) is the
        largest acceptable seq delta behind the primary's last
        advertised position; a read that would exceed it gets a 503
        carrying the observed lag, so the caller can retry elsewhere
        or relax the bound.
        """
        raw = body.get("max_lag", None)
        if raw is None:
            raw = self.default_max_lag
        if raw is None:
            return
        if isinstance(raw, bool) or not isinstance(raw, int) or raw < 0:
            raise ServeError(
                400, f"'max_lag' must be a non-negative integer, got {raw!r}"
            )
        if self.role != "follower" or self.follower is None:
            return  # the primary (or a fenced ex-primary) is never stale
        lag = self.follower.lag_of(tenant.name)
        if lag > raw:
            self.lag_rejections.inc()
            raise ServeError(
                503,
                f"replication lag {lag} exceeds max_lag {raw} for tenant "
                f"{tenant.name!r}",
                extra={"lag": lag, "max_lag": raw},
            )

    async def _tenant_op(
        self,
        tenant: Tenant,
        op: str,
        body: dict[str, Any],
        trace: Optional[Trace] = None,
    ) -> dict[str, Any]:
        started = time.perf_counter()
        try:
            return await self._run_tenant_op(tenant, op, body, trace)
        finally:
            latency = self._op_latency.get(
                "mutate" if op in ("add", "retract") else op
            )
            if latency is not None:
                latency.observe(time.perf_counter() - started)

    async def _run_tenant_op(
        self,
        tenant: Tenant,
        op: str,
        body: dict[str, Any],
        trace: Optional[Trace],
    ) -> dict[str, Any]:
        if op in ("implies", "implies_all", "whatif", "check"):
            self._check_lag(tenant, body)
        if op == "implies":
            target = body.get("target")
            if not isinstance(target, str) or not target:
                raise ServeError(400, "'target' must be a DSL string")
            answer = await tenant.coalescer.submit(
                target, _semantics_of(body),
                deadline=self._deadline_of(body), trace=trace,
            )
            if answer.degraded:
                self.degraded_answers.inc()
            return answer.to_json()
        if op == "implies_all":
            targets = _string_list(body, "targets")
            if not targets:
                raise ServeError(400, "'targets' must be non-empty")
            semantics = _semantics_of(body)
            deadline = self._deadline_of(body)
            futures = [
                tenant.coalescer.submit(
                    target, semantics, deadline=deadline, trace=trace
                )
                for target in targets
            ]
            answers = await asyncio.gather(*futures)
            degraded = sum(answer.degraded for answer in answers)
            self.degraded_answers.inc(degraded)
            return {
                "answers": [answer.to_json() for answer in answers],
                "implied": sum(
                    answer.verdict is True for answer in answers
                ),
                "unknown": sum(
                    answer.verdict is None for answer in answers
                ),
                "degraded": degraded,
                "total": len(answers),
            }
        if op in ("add", "retract"):
            self._require_primary(f"'{op}'")
            mutate_start = time.perf_counter()
            result = tenant.mutate(
                op, _string_list(body, "dependencies"), key=_key_of(body),
                trace=trace,
            )
            if trace is not None:
                trace.add_span(
                    "mutate", time.perf_counter() - mutate_start,
                    offset=mutate_start - trace.t0, op=op,
                )
            # Forward before acknowledging: a keyed replay forwards
            # nothing (its record already shipped the first time).
            if (
                not result.get("idempotent_replay")
                and self.replication.followers
                and tenant.last_record is not None
            ):
                await self.replication.forward(
                    tenant.name, tenant.last_record, trace=trace
                )
            return result
        if op == "whatif":
            if trace is not None:
                with trace.span("whatif"):
                    return await tenant.whatif_async(
                        _string_list(body, "targets"),
                        add=_string_list(body, "add"),
                        retract=_string_list(body, "retract"),
                        semantics=_semantics_of(body),
                    )
            return await tenant.whatif_async(
                _string_list(body, "targets"),
                add=_string_list(body, "add"),
                retract=_string_list(body, "retract"),
                semantics=_semantics_of(body),
            )
        if op == "check":
            tenant.coalescer.barrier()
            if tenant.session.db is None:
                raise ServeError(
                    400, f"tenant {tenant.name!r} has no bundled database"
                )
            return tenant.session.check().to_json()
        raise ServeError(404, f"unknown tenant operation {op!r}")

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        payload = {
            "ok": True,
            "draining": bool(self._shutdown and self._shutdown.is_set()),
            "requests_served": self.requests_served.value,
            "degraded_answers": self.degraded_answers.value,
            "default_deadline": self.default_deadline,
            "connections": len(self._conn_states),
            **self.registry.stats(),
            "tenant_stats": {
                name: tenant.stats()
                for name, tenant in self.registry.tenants.items()
            },
        }
        replication: dict[str, Any] = {
            "role": self.role,
            "term": self.registry.term,
            "primary": (
                self.advertised_endpoint()
                if self.role == "primary"
                else self.primary_endpoint
            ),
        }
        if self.replication.followers or self.replication.fenced_by:
            replication.update(self.replication.stats())
        if self.follower is not None:
            replication["follower"] = self.follower.stats()
        if self.promotions.value:
            replication["promotions"] = self.promotions.value
        if self.stepped_down.value:
            replication["stepped_down"] = self.stepped_down.value
        if self.redirected_mutations.value:
            replication["redirected_mutations"] = (
                self.redirected_mutations.value
            )
        if self.lag_rejections.value:
            replication["lag_rejections"] = self.lag_rejections.value
        if (
            self.role != "primary"
            or len(replication) > 3
            or self.registry.replicating
        ):
            payload["replication"] = replication
        if self.faults:
            payload["faults"] = self.faults.stats()
        if self.dropped_connections.value:
            payload["dropped_connections"] = self.dropped_connections.value
        return payload


async def serve_main(server: ReasoningServer, announce: bool = True) -> int:
    """Start, announce, and run one server to completion (CLI body)."""
    await server.start()
    server.install_signal_handlers()
    if announce:
        print(
            f"repro-serve listening on {server.host}:{server.port}",
            flush=True,
        )
        if server.replica_of:
            print(
                f"repro-serve following {server.replica_of} "
                f"(heartbeat {server.follower.heartbeat}s, "
                f"failover after {server.follower.failover_after} misses)",
                flush=True,
            )
    await server.run_until_shutdown()
    return 0


class BackgroundServer:
    """A server on a daemon thread, for tests, examples, and scripting.

    Context-manager usage::

        with BackgroundServer() as bg:
            client = ServeClient(port=bg.port)
            ...

    The thread runs its own event loop; ``stop()`` (or context exit)
    triggers the same graceful drain as SIGTERM and joins the thread.
    """

    def __init__(
        self,
        registry: Optional[TenantRegistry] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        grace: float = DEFAULT_GRACE,
        default_deadline: Optional[float] = None,
        faults: FaultInjector = NO_FAULTS,
        replica_of: Optional[str] = None,
        heartbeat: float = DEFAULT_HEARTBEAT,
        failover_after: int = DEFAULT_FAILOVER_AFTER,
        default_max_lag: Optional[int] = None,
        advertise: Optional[str] = None,
    ):
        self.server = ReasoningServer(
            registry, host=host, port=port, grace=grace,
            default_deadline=default_deadline, faults=faults,
            replica_of=replica_of, heartbeat=heartbeat,
            failover_after=failover_after, default_max_lag=default_max_lag,
            advertise=advertise,
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("background server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"background server failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self.server.run_until_shutdown()

        asyncio.run(main())

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and join the server thread.

        Raises :class:`RuntimeError` if the thread is still alive after
        ``timeout`` — a silently leaked daemon thread keeps serving the
        port and poisons whatever the caller does next, so a failed
        join must be loud, never swallowed.
        """
        if self._loop is not None and self._thread is not None:
            if self._thread.is_alive():
                self._loop.call_soon_threadsafe(self.server.begin_shutdown)
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"background server thread failed to stop within "
                    f"{timeout}s; it is still serving on port {self.port}"
                )

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc_info: Any) -> None:
        self.stop()
