"""The asyncio multi-tenant reasoning server.

``repro serve`` puts a long-running HTTP/JSON front on the
:class:`~repro.engine.session.ReasoningSession` lifecycle: named
tenants (see :mod:`repro.serve.registry`), coalesced ``implies``
dispatch (see :mod:`repro.serve.coalescer`), fork-based ``whatif``
served off the event loop, and graceful drain on SIGTERM/SIGINT or
``POST /shutdown``.

Routes (all payloads JSON objects)::

    GET    /health                       liveness + tenant count
    GET    /stats                        server/registry/tenant counters
    POST   /shutdown                     begin graceful drain, then exit
    GET    /tenants                      tenant names
    POST   /tenants                      {"name", "bundle": {...}} -> create
    GET    /tenants/N/stats              session stats (premise_hash, version, ...)
    DELETE /tenants/N                    drop the tenant
    POST   /tenants/N/implies            {"target", "semantics"?} -> Answer
    POST   /tenants/N/implies_all        {"targets": [...]} -> Answers
    POST   /tenants/N/add                {"dependencies": [...]} -> delta
    POST   /tenants/N/retract            {"dependencies": [...]} -> delta
    POST   /tenants/N/whatif             {"targets", "add"?, "retract"?} -> flips
    POST   /tenants/N/check              bundled database vs premises

Graceful shutdown contract: once :meth:`ReasoningServer.begin_shutdown`
fires (signal, endpoint, or API call) the listener closes, requests
whose request line has already arrived are served to completion (their
responses carry ``Connection: close``), idle keep-alive connections
are cancelled, and :meth:`run_until_shutdown` returns after the drain
— bounded by the ``grace`` timeout.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from typing import Any, Optional

from repro.engine.answer import Semantics
from repro.engine.deadline import Deadline
from repro.exceptions import ReproError
from repro.serve.faults import DROP_CONNECTION, NO_FAULTS, FaultInjector
from repro.serve.protocol import (
    Request,
    ServeError,
    error_payload,
    json_response,
    read_request,
)
from repro.serve.registry import Tenant, TenantRegistry

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765
DEFAULT_GRACE = 10.0


class _ConnState:
    """Whether a connection is mid-request (drain must wait) or idle."""

    __slots__ = ("busy",)

    def __init__(self):
        self.busy = False


def _semantics_of(body: dict[str, Any]) -> Semantics:
    raw = body.get("semantics", Semantics.UNRESTRICTED.value)
    try:
        return Semantics(raw)
    except ValueError:
        raise ServeError(
            400,
            f"unknown semantics {raw!r} (expected 'unrestricted' or "
            f"'finite')",
        )


def _string_list(body: dict[str, Any], key: str) -> list[str]:
    value = body.get(key, [])
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ServeError(400, f"{key!r} must be a list of DSL strings")
    return value


def _key_of(body: dict[str, Any]) -> Optional[str]:
    key = body.get("key")
    if key is None:
        return None
    if not isinstance(key, str) or not key:
        raise ServeError(400, "'key' must be a non-empty string")
    return key


class ReasoningServer:
    """One listening socket over one :class:`TenantRegistry`."""

    def __init__(
        self,
        registry: Optional[TenantRegistry] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        grace: float = DEFAULT_GRACE,
        default_deadline: Optional[float] = None,
        faults: FaultInjector = NO_FAULTS,
    ):
        self.registry = registry if registry is not None else TenantRegistry()
        self.host = host
        self.port = port
        self.grace = grace
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        self.default_deadline = default_deadline
        self.faults = faults
        self.requests_served = 0
        self.degraded_answers = 0
        self.dropped_connections = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._conn_states: dict[asyncio.Task, _ConnState] = {}

    def _deadline_of(self, body: dict[str, Any]) -> Optional[Deadline]:
        """The request's deadline: per-request ``deadline_ms`` wins,
        otherwise the server-wide ``--default-deadline`` (if any)."""
        raw = body.get("deadline_ms")
        if raw is None:
            if self.default_deadline is None:
                return None
            return Deadline(self.default_deadline)
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) \
                or raw <= 0:
            raise ServeError(
                400, f"'deadline_ms' must be a positive number, got {raw!r}"
            )
        return Deadline.from_ms(raw)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and listen; ``port=0`` picks a free port (see ``.port``)."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def begin_shutdown(self) -> None:
        """Flip the drain switch (idempotent, signal-handler safe)."""
        if self._shutdown is not None and not self._shutdown.is_set():
            self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (best effort: some platforms
        and non-main threads cannot register loop signal handlers)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.begin_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    async def run_until_shutdown(self) -> None:
        """Serve until :meth:`begin_shutdown`, then drain and return.

        A durable registry is checkpointed after the drain, so a
        *graceful* shutdown leaves empty WALs and the next boot replays
        nothing (only crashes pay tail replay).
        """
        assert self._shutdown is not None, "call start() first"
        await self._shutdown.wait()
        await self._drain()
        if self.registry.state_dir is not None:
            self.registry.checkpoint_all()
            self.registry.close()

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight requests, close the rest."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle connections (blocked waiting for a next request line)
        # are cancelled; busy ones get up to `grace` seconds to finish
        # writing their response.
        for task, state in list(self._conn_states.items()):
            if not state.busy:
                task.cancel()
        pending = [task for task in self._conn_states if not task.done()]
        if pending:
            _done, still_pending = await asyncio.wait(
                pending, timeout=self.grace
            )
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)

    # -- the connection loop -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        state = _ConnState()
        assert task is not None
        self._conn_states[task] = state
        try:
            while True:
                state.busy = False
                try:
                    request = await read_request(
                        reader, on_started=lambda: setattr(state, "busy", True)
                    )
                except ServeError as exc:
                    writer.write(json_response(
                        exc.status, error_payload(exc.status, str(exc)),
                        close=True,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self._safe_dispatch(request)
                if self.faults.trip(DROP_CONNECTION):
                    # What a dying peer looks like from the client side:
                    # headers promise a body, a few bytes arrive, then
                    # the socket slams shut mid-response.
                    self.dropped_connections += 1
                    writer.write(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: 4096\r\n\r\n{\"tr"
                    )
                    await writer.drain()
                    break
                closing = (
                    not request.keep_alive
                    or (self._shutdown is not None and self._shutdown.is_set())
                )
                writer.write(json_response(status, payload, close=closing))
                await writer.drain()
                self.requests_served += 1
                if closing:
                    break
        except (asyncio.CancelledError, ConnectionResetError):
            pass  # drain cancelled an idle connection, or the peer vanished
        finally:
            self._conn_states.pop(task, None)
            writer.close()

    async def _safe_dispatch(
        self, request: Request
    ) -> tuple[int, dict[str, Any]]:
        try:
            delay = self.faults.latency_seconds()
            if delay > 0:
                await asyncio.sleep(delay)
            return 200, await self._dispatch(request)
        except ServeError as exc:
            return exc.status, error_payload(exc.status, str(exc))
        except ReproError as exc:
            # Parse errors, schema violations, budget overruns: the
            # caller's payload was at fault, not the server.
            return 400, error_payload(400, str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            return 500, error_payload(500, f"{type(exc).__name__}: {exc}")

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, request: Request) -> dict[str, Any]:
        method = request.method
        parts = [part for part in request.path.split("/") if part]

        if parts == ["health"]:
            self._require(method, "GET", request)
            return {
                "ok": True,
                "tenants": len(self.registry.tenants),
                "draining": bool(self._shutdown and self._shutdown.is_set()),
            }
        if parts == ["stats"]:
            self._require(method, "GET", request)
            return self.stats()
        if parts == ["shutdown"]:
            self._require(method, "POST", request)
            self.begin_shutdown()
            return {"ok": True, "draining": True}
        if parts and parts[0] == "tenants":
            return await self._dispatch_tenants(method, parts[1:], request)
        raise ServeError(404, f"no route for {method} {request.path}")

    @staticmethod
    def _require(method: str, expected: str, request: Request) -> None:
        if method != expected:
            raise ServeError(
                405, f"{request.path} expects {expected}, got {method}"
            )

    async def _dispatch_tenants(
        self, method: str, parts: list[str], request: Request
    ) -> dict[str, Any]:
        if not parts:
            if method == "GET":
                return {"tenants": sorted(self.registry.tenants)}
            self._require(method, "POST", request)
            body = request.json()
            name = body.get("name")
            if not isinstance(name, str) or not name:
                raise ServeError(400, "'name' must be a non-empty string")
            tenant = self.registry.create_from_bundle(
                name, body.get("bundle", {}), options=body.get("options")
            )
            session = tenant.session
            return {
                "name": tenant.name,
                "premise_hash": session.premise_hash,
                "version": session.version,
                "premises": len(session.dependencies),
                "shared_artifacts": tenant.shared_artifacts,
            }

        name, op = parts[0], parts[1] if len(parts) > 1 else None
        if op is None:
            if method == "DELETE":
                self.registry.drop(name)
                return {"ok": True, "dropped": name}
            self._require(method, "GET", request)
            return self.registry.get(name).stats()
        if len(parts) > 2:
            raise ServeError(404, f"no route for {method} {request.path}")
        tenant = self.registry.get(name)
        if op == "stats":
            self._require(method, "GET", request)
            return tenant.stats()
        self._require(method, "POST", request)
        body = request.json()
        return await self._tenant_op(tenant, op, body)

    async def _tenant_op(
        self, tenant: Tenant, op: str, body: dict[str, Any]
    ) -> dict[str, Any]:
        if op == "implies":
            target = body.get("target")
            if not isinstance(target, str) or not target:
                raise ServeError(400, "'target' must be a DSL string")
            answer = await tenant.coalescer.submit(
                target, _semantics_of(body), deadline=self._deadline_of(body)
            )
            if answer.degraded:
                self.degraded_answers += 1
            return answer.to_json()
        if op == "implies_all":
            targets = _string_list(body, "targets")
            if not targets:
                raise ServeError(400, "'targets' must be non-empty")
            semantics = _semantics_of(body)
            deadline = self._deadline_of(body)
            futures = [
                tenant.coalescer.submit(target, semantics, deadline=deadline)
                for target in targets
            ]
            answers = await asyncio.gather(*futures)
            degraded = sum(answer.degraded for answer in answers)
            self.degraded_answers += degraded
            return {
                "answers": [answer.to_json() for answer in answers],
                "implied": sum(
                    answer.verdict is True for answer in answers
                ),
                "unknown": sum(
                    answer.verdict is None for answer in answers
                ),
                "degraded": degraded,
                "total": len(answers),
            }
        if op in ("add", "retract"):
            return tenant.mutate(
                op, _string_list(body, "dependencies"), key=_key_of(body)
            )
        if op == "whatif":
            return await tenant.whatif_async(
                _string_list(body, "targets"),
                add=_string_list(body, "add"),
                retract=_string_list(body, "retract"),
                semantics=_semantics_of(body),
            )
        if op == "check":
            tenant.coalescer.barrier()
            if tenant.session.db is None:
                raise ServeError(
                    400, f"tenant {tenant.name!r} has no bundled database"
                )
            return tenant.session.check().to_json()
        raise ServeError(404, f"unknown tenant operation {op!r}")

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        payload = {
            "ok": True,
            "draining": bool(self._shutdown and self._shutdown.is_set()),
            "requests_served": self.requests_served,
            "degraded_answers": self.degraded_answers,
            "default_deadline": self.default_deadline,
            "connections": len(self._conn_states),
            **self.registry.stats(),
            "tenant_stats": {
                name: tenant.stats()
                for name, tenant in self.registry.tenants.items()
            },
        }
        if self.faults:
            payload["faults"] = self.faults.stats()
        if self.dropped_connections:
            payload["dropped_connections"] = self.dropped_connections
        return payload


async def serve_main(server: ReasoningServer, announce: bool = True) -> int:
    """Start, announce, and run one server to completion (CLI body)."""
    await server.start()
    server.install_signal_handlers()
    if announce:
        print(
            f"repro-serve listening on {server.host}:{server.port}",
            flush=True,
        )
    await server.run_until_shutdown()
    return 0


class BackgroundServer:
    """A server on a daemon thread, for tests, examples, and scripting.

    Context-manager usage::

        with BackgroundServer() as bg:
            client = ServeClient(port=bg.port)
            ...

    The thread runs its own event loop; ``stop()`` (or context exit)
    triggers the same graceful drain as SIGTERM and joins the thread.
    """

    def __init__(
        self,
        registry: Optional[TenantRegistry] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        grace: float = DEFAULT_GRACE,
        default_deadline: Optional[float] = None,
        faults: FaultInjector = NO_FAULTS,
    ):
        self.server = ReasoningServer(
            registry, host=host, port=port, grace=grace,
            default_deadline=default_deadline, faults=faults,
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("background server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"background server failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self.server.run_until_shutdown()

        asyncio.run(main())

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and join the server thread.

        Raises :class:`RuntimeError` if the thread is still alive after
        ``timeout`` — a silently leaked daemon thread keeps serving the
        port and poisons whatever the caller does next, so a failed
        join must be loud, never swallowed.
        """
        if self._loop is not None and self._thread is not None:
            if self._thread.is_alive():
                self._loop.call_soon_threadsafe(self.server.begin_shutdown)
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"background server thread failed to stop within "
                    f"{timeout}s; it is still serving on port {self.port}"
                )

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc_info: Any) -> None:
        self.stop()
