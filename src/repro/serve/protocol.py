"""The HTTP/JSON wire protocol of :mod:`repro.serve`.

The serving layer speaks a deliberately small subset of HTTP/1.1 —
request line, headers, ``Content-Length`` bodies, keep-alive — parsed
and emitted here over :mod:`asyncio` streams, with every payload a
JSON object.  Nothing outside the standard library is involved, and
the same module serves both directions: the asyncio server reads
requests with :func:`read_request` and answers with
:func:`json_response`; the blocking client in
:mod:`repro.serve.client` builds on :mod:`http.client` and shares only
the payload conventions.

Error convention: every non-2xx response carries
``{"error": <message>, "status": <code>}``.  Server-side handlers
raise :class:`ServeError` (or any :class:`~repro.exceptions.ReproError`,
mapped to 400) and the connection loop renders it; the client raises
:class:`ServeError` back out of the same payload, so a scripted caller
sees one exception type end to end.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qsl

import asyncio

from repro.exceptions import ReproError

MAX_BODY_BYTES = 8 * 1024 * 1024
"""Largest accepted request body (bundles with databases included)."""

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    421: "Misdirected Request",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServeError(ReproError):
    """A request the server refuses, with its HTTP status attached.

    ``extra`` rides along in the error payload — machine-readable
    context beyond the message, e.g. the primary endpoint on a 421
    mutation redirect or the fencing term on a refused replication
    stream.  The client reattaches whatever extra fields it decodes,
    so both ends see the same structured refusal.
    """

    def __init__(
        self, status: int, message: str,
        extra: Optional[dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.extra = dict(extra) if extra else {}


class ProtocolError(ServeError):
    """Bytes on the wire that are not a well-formed request."""

    def __init__(self, message: str):
        super().__init__(400, message)


@dataclass
class Request:
    """One parsed HTTP request.

    ``trace_id`` is the client's ``X-Trace-Id`` header when present
    (so callers can stitch a distributed waterfall) and empty
    otherwise — the server's :class:`~repro.obs.tracing.Trace` mints
    an id lazily only when something reads it.  ``parse_seconds``
    is the wall time :func:`read_request` spent turning bytes into this
    object — the server records it as the trace's ``parse`` span.
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    query: dict[str, str] = field(default_factory=dict)
    trace_id: str = ""
    parse_seconds: float = 0.0

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict[str, Any]:
        """The body as a JSON object (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ServeError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ServeError(
                400,
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}",
            )
        return payload


async def read_request(
    reader: asyncio.StreamReader,
    on_started: Optional[Any] = None,
) -> Optional[Request]:
    """Read one request off the stream; ``None`` on a clean EOF.

    ``on_started`` (a zero-argument callable) fires as soon as the
    request *line* has arrived — before headers and body are read —
    which is how the server marks a connection busy early enough that
    graceful shutdown drains a request whose body is still in flight.
    """
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if on_started is not None:
        on_started()
    parse_start = time.perf_counter()
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]
    path, _, query_string = target.partition("?")
    query = dict(parse_qsl(query_string)) if query_string else {}
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise ProtocolError("connection closed mid-headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise ServeError(413, f"request body over {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body")
    return Request(
        method=method,
        path=path,
        headers=headers,
        body=body,
        query=query,
        trace_id=headers.get("x-trace-id", ""),
        parse_seconds=time.perf_counter() - parse_start,
    )


def json_response(
    status: int, payload: dict[str, Any], close: bool = False
) -> bytes:
    """One complete HTTP/1.1 response with a JSON body."""
    body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if close:
        head += "Connection: close\r\n"
    return head.encode("latin-1") + b"\r\n" + body


def text_response(
    status: int, body_text: str, close: bool = False,
    content_type: str = "text/plain; version=0.0.4; charset=utf-8",
) -> bytes:
    """One complete HTTP/1.1 response with a plain-text body.

    The default content type is the Prometheus text exposition type —
    ``GET /metrics`` is the only non-JSON endpoint the server has.
    """
    body = body_text.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if close:
        head += "Connection: close\r\n"
    return head.encode("latin-1") + b"\r\n" + body


def error_payload(
    status: int, message: str, extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """The uniform error body both ends of the wire agree on."""
    payload = {"error": message, "status": status}
    if extra:
        payload.update(extra)
    return payload
