"""``repro.serve`` — the multi-tenant reasoning service.

A stdlib-only asyncio HTTP/JSON server over named
:class:`~repro.engine.session.ReasoningSession` tenants, with two
serving-specific mechanisms: per-tick request coalescing
(:mod:`~repro.serve.coalescer`) and a structural-hash LRU that lets
identical tenants share compiled indexes copy-on-write
(:mod:`~repro.serve.registry`).  Crash safety comes from a per-tenant
write-ahead log plus periodic snapshots (:mod:`~repro.serve.wal`,
enabled with ``repro serve --state-dir``), exercised by the named
fault points of :mod:`~repro.serve.faults`.  Availability comes from
replication (:mod:`~repro.serve.replication`): followers started with
``repro serve --replica-of`` bootstrap from the primary, apply its WAL
stream, serve lag-bounded reads, and can promote themselves behind a
term fence when the primary dies.  Start one from the command line
with ``repro serve``, from tests with :class:`BackgroundServer`, and
talk to it with :class:`ServeClient` (one node), ``repro call``, or
:class:`FailoverClient` (a replicated fleet).
"""

from repro.serve.client import FailoverClient, ServeClient
from repro.serve.coalescer import Coalescer
from repro.serve.faults import FAULT_POINTS, FaultInjector, NO_FAULTS
from repro.serve.protocol import ProtocolError, Request, ServeError
from repro.serve.registry import (
    ArtifactCache,
    Tenant,
    TenantRegistry,
)
from repro.serve.replication import (
    FollowerReplicator,
    PrimaryReplicator,
)
from repro.serve.server import (
    BackgroundServer,
    ReasoningServer,
    serve_main,
)
from repro.serve.wal import StateDir, TenantStore, WalCorruption

__all__ = [
    "ArtifactCache",
    "BackgroundServer",
    "Coalescer",
    "FAULT_POINTS",
    "FailoverClient",
    "FaultInjector",
    "FollowerReplicator",
    "NO_FAULTS",
    "PrimaryReplicator",
    "ProtocolError",
    "ReasoningServer",
    "Request",
    "ServeClient",
    "ServeError",
    "StateDir",
    "Tenant",
    "TenantRegistry",
    "TenantStore",
    "WalCorruption",
    "serve_main",
]
