"""Named-tenant registry with a structural-hash artifact LRU.

A *tenant* is one named, long-lived
:class:`~repro.engine.session.ReasoningSession` plus its
:class:`~repro.serve.coalescer.Coalescer` — the unit the HTTP server
routes requests to.  The registry owns tenant lifecycle
(create-from-bundle, lookup, drop) and one serving-specific
optimization: tenants whose (schema, premise multiset) hash
identically — :attr:`ReasoningSession.premise_hash` — *share one set
of compiled artifacts* copy-on-write.  The first tenant with a given
hash compiles kernels, reach index, and closure memos; every later
structurally identical tenant adopts them via
:meth:`ReasoningSession.adopt_compiled_from` and starts hot.  The
sharing table is a small LRU keyed by the hash; a donor that has since
mutated (its live hash drifted off its key) is detected on lookup and
replaced rather than trusted.

This is the Hyrise-style "constraints as a served verdict source"
scenario: N microservices each registering the same schema's
dependency set cost one compilation, not N.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Iterable, Optional

from repro.deps.base import Dependency
from repro.engine.answer import Semantics
from repro.engine.session import ReasoningSession
from repro.io import (
    bundle_from_payload,
    database_to_dict,
    patch_from_payload,
    schema_to_dict,
)
from repro.model.database import Database
from repro.model.schema import DatabaseSchema
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.tracing import Trace
from repro.serve.coalescer import Coalescer
from repro.serve.protocol import ServeError
from repro.serve.wal import (
    DEFAULT_SNAPSHOT_EVERY,
    StateDir,
    TenantStore,
    WalCorruption,
)

DEFAULT_LRU_CAPACITY = 32

SESSION_OPTION_KEYS = ("max_nodes", "max_rounds", "max_tuples")
"""The engine budgets a tenant-create request may override."""


def session_options_of(payload: Any) -> dict[str, int]:
    """Validate a wire/snapshot ``options`` object (budget whitelist)."""
    if payload is None:
        return {}
    if not isinstance(payload, dict):
        raise ServeError(
            400, f"'options' must be a JSON object, got "
                 f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(SESSION_OPTION_KEYS))
    if unknown:
        raise ServeError(
            400,
            f"unknown session option(s) {', '.join(map(repr, unknown))}; "
            f"expected only {', '.join(map(repr, SESSION_OPTION_KEYS))}",
        )
    options: dict[str, int] = {}
    for key, value in payload.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ServeError(
                400, f"option {key!r} must be a positive integer, got "
                     f"{value!r}"
            )
        options[key] = value
    return options


def bundle_payload_of(session: ReasoningSession) -> dict[str, Any]:
    """The canonical :mod:`repro.io` bundle of a live session — what
    snapshots persist and recovery reloads."""
    payload: dict[str, Any] = {
        "schema": schema_to_dict(session.schema),
        "dependencies": [str(dep) for dep in session.dependencies],
    }
    if session.db is not None:
        payload["database"] = database_to_dict(session.db)
    return payload


class ArtifactCache:
    """LRU of donor sessions keyed by structural premise hash.

    The hit/miss/eviction/drift counters are :class:`repro.obs.metrics.
    Counter` instruments — registered as ``repro_artifact_cache_*``
    when a :class:`~repro.obs.metrics.MetricsRegistry` is supplied (the
    server's), standalone otherwise — and :meth:`stats` reads their
    values back, so the ``/stats`` JSON shape is unchanged.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_LRU_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._donors: "OrderedDict[str, ReasoningSession]" = OrderedDict()

        def counter(event: str) -> Counter:
            name = f"repro_artifact_cache_{event}_total"
            help_text = f"Artifact LRU {event}"
            if metrics is not None:
                return metrics.counter(name, help_text)
            return Counter(name, help_text)

        self.hits = counter("hits")
        self.misses = counter("misses")
        self.evictions = counter("evictions")
        self.drifted = counter("drifted")

    def adopt_into(self, session: ReasoningSession) -> bool:
        """Share a cached donor's compiled artifacts into ``session``.

        Returns ``True`` on an LRU hit (artifacts adopted).  On a miss
        the session itself becomes the donor for its hash.  A donor
        whose live hash no longer matches its key (the tenant mutated
        after registration) is dropped, never adopted.
        """
        key = session.premise_hash
        donor = self._donors.get(key)
        if donor is not None and donor.premise_hash != key:
            del self._donors[key]
            self.drifted.inc()
            donor = None
        if donor is not None:
            self._donors.move_to_end(key)
            session.adopt_compiled_from(donor)
            self.hits.inc()
            return True
        self._donors[key] = session
        self._donors.move_to_end(key)
        if len(self._donors) > self.capacity:
            self._donors.popitem(last=False)
            self.evictions.inc()
        self.misses.inc()
        return False

    def __len__(self) -> int:
        return len(self._donors)

    def stats(self) -> dict[str, int]:
        return {
            "capacity": self.capacity,
            "entries": len(self._donors),
            "hits": self.hits.value,
            "misses": self.misses.value,
            "evictions": self.evictions.value,
            "drifted": self.drifted.value,
        }


class Tenant:
    """One named session behind the server, with its coalescer.

    When the server runs with ``--state-dir`` the tenant also owns a
    :class:`~repro.serve.wal.TenantStore`: every applied mutation is
    WAL-appended before the caller sees its result, and every
    ``snapshot_every`` appends the full premise bundle is checkpointed
    and the WAL truncated.  Idempotency keys dedup retried mutations —
    against the store's persisted key map when durable, an in-memory
    map otherwise.
    """

    def __init__(
        self,
        name: str,
        session: ReasoningSession,
        shared_artifacts: bool = False,
        store: Optional[TenantStore] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        options: Optional[dict[str, int]] = None,
        term: int = 0,
        replicating: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.name = name
        self.session = session
        batch_sizes = None
        if metrics is not None:
            # One server-wide batch-size histogram shared by every
            # tenant's coalescer (a per-tenant family would multiply
            # exposition size without changing the signal).
            from repro.serve.coalescer import _BATCH_SIZE_BUCKETS

            batch_sizes = metrics.histogram(
                "repro_coalescer_batch_size",
                "Requests per coalescer flush",
                buckets=_BATCH_SIZE_BUCKETS,
            )
        self.coalescer = Coalescer(
            session, degrade=True, batch_sizes=batch_sizes
        )
        self.shared_artifacts = shared_artifacts
        self.store = store
        if store is not None and metrics is not None:
            store.on_fsync = metrics.histogram(
                "repro_wal_fsync_seconds",
                "WAL record write+fsync latency",
            ).observe
        self.snapshot_every = snapshot_every
        self.options = dict(options or {})
        self.applied: dict[str, dict[str, Any]] = (
            store.applied if store is not None else {}
        )
        self.replayed_mutations = 0
        # Replication bookkeeping: the log position this tenant has
        # applied through (== store.seq when durable), the node term its
        # records are stamped with, and the last record built by a
        # mutation — what the primary forwards to its followers.
        self.replicated_seq = store.seq if store is not None else 0
        self.term = max(term, store.term if store is not None else 0)
        self.replicating = replicating
        self.last_record: Optional[dict[str, Any]] = None
        self.applied_replicated = 0

    def mutate(
        self,
        kind: str,
        dependencies: Iterable[str],
        key: Optional[str] = None,
        trace: Optional[Trace] = None,
    ) -> dict[str, Any]:
        """Ordered ``add``/``retract`` through the coalescing barrier.

        With an idempotency ``key``, a repeat of an already-applied
        mutation returns the recorded result without touching the
        session — the server half of the exactly-once retry contract.
        Durable tenants WAL-append the patch (fsync'd) before
        returning, so an acknowledged mutation survives a crash.
        """
        deps = list(dependencies)
        if not deps:
            raise ServeError(400, f"{kind} needs at least one dependency")
        if key is not None:
            if not isinstance(key, str) or not key:
                raise ServeError(400, "'key' must be a non-empty string")
            replay = self.applied.get(key)
            if replay is not None:
                self.replayed_mutations += 1
                return {**replay, "idempotent_replay": True}
        coerced = self.session._coerce_many(deps)
        self.coalescer.barrier()
        if kind == "add":
            delta = self.session.add(coerced)
        else:
            delta = self.session.retract(coerced)
        result = {
            "version": self.session.version,
            "added": [str(dep) for dep in delta.added],
            "removed": [str(dep) for dep in delta.removed],
        }
        patch = {kind: [str(dep) for dep in coerced]}
        if self.store is not None:
            record = self.store.append(
                patch, key=key, result=result, trace=trace
            )
            result["seq"] = record["seq"]
            if self.store.appends_since_snapshot >= self.snapshot_every:
                self.checkpoint()
        else:
            # Non-durable tenants still number their mutations when the
            # node replicates: the record is the replication payload.
            seq = self.replicated_seq + 1
            record = {"seq": seq, "term": self.term, "patch": patch}
            if key:
                record["key"] = key
            if trace is not None:
                record["trace"] = trace.trace_id
            if self.replicating:
                result["seq"] = seq
            record["result"] = dict(result)
            if key is not None:
                self.applied[key] = record["result"]
        self.replicated_seq = record["seq"]
        self.last_record = record
        return result

    def apply_replicated(self, record: dict[str, Any]) -> None:
        """Apply one replicated WAL record — the follower apply mode.

        The record flows through the *same* mutation path a local
        client's would (coalescing barrier, then ``session.add`` /
        ``session.retract``), so a follower's session stays
        verdict-equivalent with the primary's: same premises, same
        compiled artifacts lifecycle, same version arithmetic.  The
        record's idempotency key and recorded result are adopted too,
        which is what makes a keyed retry *after failover* replay
        instead of double-applying — the exactly-once contract survives
        the primary's death.  The caller (the follower replicator) is
        responsible for ordering: records must arrive at
        ``replicated_seq + 1``.
        """
        seq = int(record["seq"])
        if seq != self.replicated_seq + 1:
            raise ServeError(
                409,
                f"tenant {self.name!r}: replicated record seq {seq} does "
                f"not follow applied seq {self.replicated_seq}",
            )
        self.coalescer.barrier()
        add, retract = patch_from_payload(
            record.get("patch") or {}, self.session.schema
        )
        if retract:
            self.session.retract(retract)
        if add:
            self.session.add(add)
        if self.store is not None:
            self.store.append_replicated(record)
            if self.store.appends_since_snapshot >= self.snapshot_every:
                self.checkpoint()
        else:
            key = record.get("key")
            if key:
                self.applied[key] = record.get("result") or {}
        self.replicated_seq = seq
        self.term = max(self.term, int(record.get("term", 0)))
        self.applied_replicated += 1

    def checkpoint(self) -> None:
        """Snapshot the live session's premise bundle; truncates the WAL."""
        if self.store is None:
            return
        self.store.write_snapshot(
            self.name,
            bundle_payload_of(self.session),
            self.session.premise_hash,
            options=self.options,
        )

    async def whatif_async(
        self,
        targets: Iterable[str],
        add: Iterable[str] = (),
        retract: Iterable[str] = (),
        semantics: Semantics = Semantics.UNRESTRICTED,
    ) -> dict[str, Any]:
        """``whatif`` with the variant's re-query off the event loop.

        The before-answers come from the live session (cheap — its
        caches are warm), then the fork is mutated and its after-pass —
        the part that may recompile the child's reach index — runs in
        the default executor, so the parent tenant keeps serving
        coalesced reads while the speculation computes.  The fork is
        copy-on-write and thread-confined after creation; the parent's
        compiled containers are never mutated by the child.
        """
        self.coalescer.barrier()
        session = self.session
        coerced = [session._coerce(target) for target in targets]
        if not coerced:
            raise ServeError(400, "whatif needs at least one target")
        additions = session._coerce_many(list(add))
        retractions = session._coerce_many(list(retract))
        if not (additions or retractions):
            raise ServeError(400, "whatif needs 'add' or 'retract' entries")
        before = session.implies_all(coerced, semantics)
        child = session.fork()
        if retractions:
            child.retract(retractions)
        if additions:
            child.add(additions)
        loop = asyncio.get_running_loop()
        after = await loop.run_in_executor(
            None, lambda: child.implies_all(coerced, semantics)
        )
        flips = [
            {
                "target": str(target),
                "before": b.to_json(),
                "after": a.to_json(),
                "flipped": b.verdict != a.verdict,
            }
            for target, b, a in zip(coerced, before, after)
        ]
        return {
            "flips": flips,
            "flipped": sum(flip["flipped"] for flip in flips),
            "total": len(flips),
        }

    def stats(self) -> dict[str, Any]:
        payload = dict(self.session.stats())
        payload["name"] = self.name
        payload["shared_artifacts"] = self.shared_artifacts
        payload["premises"] = len(self.session.dependencies)
        payload["coalescer"] = self.coalescer.stats()
        payload["replayed_mutations"] = self.replayed_mutations
        payload["replicated_seq"] = self.replicated_seq
        if self.applied_replicated:
            payload["applied_replicated"] = self.applied_replicated
        if self.options:
            payload["options"] = dict(self.options)
        if self.store is not None:
            payload["wal"] = self.store.stats()
        return payload


class TenantRegistry:
    """Every named tenant the server knows, plus the artifact LRU.

    With a :class:`~repro.serve.wal.StateDir` the registry is durable:
    tenants persisted in an earlier process are recovered in
    ``__init__`` (snapshot bundle reloaded, ``premise_hash`` verified,
    WAL tail replayed), and create/drop write through to disk.
    """

    def __init__(
        self,
        artifact_capacity: int = DEFAULT_LRU_CAPACITY,
        state_dir: Optional[StateDir] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tenants: dict[str, Tenant] = {}
        self.metrics = metrics
        self.artifacts = ArtifactCache(artifact_capacity, metrics=metrics)
        self.state_dir = state_dir
        self.recovered_tenants = 0
        self.replayed_records = 0
        self.term = state_dir.load_term() if state_dir is not None else 0
        self.replicating = False
        if state_dir is not None:
            self._recover()

    def set_term(self, term: int) -> None:
        """Adopt a (higher) node term, persisting it before it is used.

        Every tenant and store stamps subsequent records with the new
        term; the durable save happens *first*, so a crash between
        promotion and the next append can never resurrect the node at
        its old term.
        """
        if term < self.term:
            raise ValueError(
                f"term must be monotonic: {term} < current {self.term}"
            )
        if self.state_dir is not None and term != self.term:
            self.state_dir.save_term(term)
        self.term = term
        for tenant in self.tenants.values():
            tenant.term = max(tenant.term, term)
            if tenant.store is not None:
                tenant.store.term = max(tenant.store.term, term)

    def set_replicating(self, replicating: bool) -> None:
        """Mark this node as a replication participant: mutations build
        forwardable records (and stamp ``seq`` even without a WAL)."""
        self.replicating = replicating
        for tenant in self.tenants.values():
            tenant.replicating = replicating

    def _recover(self) -> None:
        """Rebuild every persisted tenant from its snapshot + WAL tail.

        The snapshot's ``premise_hash`` is checked against the freshly
        built session *before* the tail replays — a mismatch means the
        snapshot no longer describes the state it claims to, and
        replaying mutations on top would silently compound the damage.
        """
        for name, store, snapshot, tail in self.state_dir.recover():
            try:
                schema, dependencies, db = bundle_from_payload(
                    snapshot.get("bundle") or {}
                )
            except Exception as exc:
                store.close()
                raise WalCorruption(
                    f"tenant {name!r}: snapshot bundle failed to load: {exc}"
                )
            options = session_options_of(snapshot.get("options") or None)
            session = ReasoningSession(
                schema, dependencies, db=db, **options
            )
            expected = snapshot.get("premise_hash")
            if expected and session.premise_hash != expected:
                store.close()
                raise WalCorruption(
                    f"tenant {name!r}: snapshot premise_hash {expected} "
                    f"does not match the rebuilt session "
                    f"({session.premise_hash}); refusing to replay its WAL"
                )
            shared = self.artifacts.adopt_into(session)
            for record in tail:
                try:
                    add, retract = patch_from_payload(
                        record.get("patch"), schema
                    )
                except Exception as exc:
                    store.close()
                    raise WalCorruption(
                        f"tenant {name!r}: WAL record seq "
                        f"{record.get('seq')} failed to replay: {exc}"
                    )
                if retract:
                    session.retract(retract)
                if add:
                    session.add(add)
                self.replayed_records += 1
            tenant = Tenant(
                name,
                session,
                shared_artifacts=shared,
                store=store,
                snapshot_every=self.state_dir.snapshot_every,
                options=options,
                term=self.term,
                replicating=self.replicating,
                metrics=self.metrics,
            )
            self.tenants[name] = tenant
            self.recovered_tenants += 1

    def create(
        self,
        name: str,
        schema: DatabaseSchema,
        dependencies: Iterable[Dependency] = (),
        db: Optional[Database] = None,
        options: Optional[dict[str, int]] = None,
        **session_options: Any,
    ) -> Tenant:
        """Register a new tenant; adopts shared artifacts when possible.

        ``options`` is the whitelisted budget dict (persisted with the
        snapshot when durable); extra ``session_options`` are trusted
        caller overrides that are *not* persisted.
        """
        if not name:
            raise ServeError(400, "tenant name must be non-empty")
        if name in self.tenants:
            raise ServeError(409, f"tenant {name!r} already exists")
        options = dict(options or {})
        merged = {**options, **session_options}
        session = ReasoningSession(schema, dependencies, db=db, **merged)
        shared = self.artifacts.adopt_into(session)
        store = None
        if self.state_dir is not None:
            store = self.state_dir.create_tenant(
                name,
                bundle_payload_of(session),
                session.premise_hash,
                options=options,
                term=self.term,
            )
        tenant = Tenant(
            name,
            session,
            shared_artifacts=shared,
            store=store,
            snapshot_every=(
                self.state_dir.snapshot_every
                if self.state_dir is not None
                else DEFAULT_SNAPSHOT_EVERY
            ),
            options=options,
            term=self.term,
            replicating=self.replicating,
            metrics=self.metrics,
        )
        self.tenants[name] = tenant
        return tenant

    def create_from_bundle(
        self,
        name: str,
        bundle: dict[str, Any],
        options: Any = None,
    ) -> Tenant:
        """Register a tenant from a :mod:`repro.io` bundle payload."""
        if not isinstance(bundle, dict):
            raise ServeError(
                400,
                f"'bundle' must be a JSON object, got "
                f"{type(bundle).__name__}",
            )
        schema, dependencies, db = bundle_from_payload(bundle)
        return self.create(
            name, schema, dependencies, db=db,
            options=session_options_of(options),
        )

    def replication_snapshot_of(self, name: str) -> dict[str, Any]:
        """The bootstrap payload a follower pulls for one tenant.

        Built from the *live* session (not the on-disk snapshot), so a
        non-durable primary can still seed followers, and the payload
        always reflects every applied mutation — including ones a disk
        snapshot hasn't checkpointed yet.
        """
        tenant = self.get(name)
        return {
            "name": tenant.name,
            "seq": tenant.replicated_seq,
            "term": tenant.term,
            "premise_hash": tenant.session.premise_hash,
            "bundle": bundle_payload_of(tenant.session),
            "options": dict(tenant.options),
            "applied_keys": dict(tenant.applied),
        }

    def create_replica(
        self, name: str, payload: dict[str, Any]
    ) -> Tenant:
        """Build (or rebuild) a tenant from a replicated bootstrap payload.

        The rebuilt session's ``premise_hash`` is verified against the
        payload's before the tenant goes live — a follower must refuse
        to serve state it cannot prove it reconstructed — and an
        existing tenant of the same name is *replaced* (a re-bootstrap
        after divergence or a truncated-away tail supersedes whatever
        the follower had).
        """
        try:
            schema, dependencies, db = bundle_from_payload(
                payload.get("bundle") or {}
            )
        except Exception as exc:
            raise WalCorruption(
                f"replica {name!r}: bootstrap bundle failed to load: {exc}"
            )
        options = session_options_of(payload.get("options") or None)
        session = ReasoningSession(schema, dependencies, db=db, **options)
        expected = payload.get("premise_hash")
        if expected and session.premise_hash != expected:
            raise WalCorruption(
                f"replica {name!r}: bootstrap premise_hash {expected} does "
                f"not match the rebuilt session ({session.premise_hash}); "
                f"refusing to serve it"
            )
        seq = int(payload.get("seq", 0))
        term = int(payload.get("term", 0))
        applied = payload.get("applied_keys") or {}
        if name in self.tenants:
            self.drop(name)
        shared = self.artifacts.adopt_into(session)
        store = None
        if self.state_dir is not None:
            store = self.state_dir.create_tenant(
                name,
                bundle_payload_of(session),
                session.premise_hash,
                options=options,
                seq=seq,
                term=term,
                applied=dict(applied),
            )
        tenant = Tenant(
            name,
            session,
            shared_artifacts=shared,
            store=store,
            snapshot_every=(
                self.state_dir.snapshot_every
                if self.state_dir is not None
                else DEFAULT_SNAPSHOT_EVERY
            ),
            options=options,
            term=max(term, self.term),
            replicating=True,
            metrics=self.metrics,
        )
        tenant.replicated_seq = seq
        if store is None and isinstance(applied, dict):
            tenant.applied.update(applied)
        self.tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise ServeError(404, f"no tenant named {name!r}")
        return tenant

    def drop(self, name: str) -> None:
        """Forget a tenant (its artifacts may stay cached as a donor)."""
        tenant = self.tenants.get(name)
        if tenant is None:
            raise ServeError(404, f"no tenant named {name!r}")
        if tenant.store is not None:
            tenant.store.close()
        if self.state_dir is not None:
            self.state_dir.drop_tenant(name)
        del self.tenants[name]

    def checkpoint_all(self) -> int:
        """Snapshot every durable tenant (graceful-shutdown hook)."""
        count = 0
        for tenant in self.tenants.values():
            if tenant.store is not None:
                tenant.checkpoint()
                count += 1
        return count

    def close(self) -> None:
        for tenant in self.tenants.values():
            if tenant.store is not None:
                tenant.store.close()

    def stats(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "tenants": len(self.tenants),
            "artifact_cache": self.artifacts.stats(),
        }
        if self.state_dir is not None:
            payload["state_dir"] = self.state_dir.stats()
            payload["recovered_tenants"] = self.recovered_tenants
            payload["replayed_records"] = self.replayed_records
        return payload
