"""Named-tenant registry with a structural-hash artifact LRU.

A *tenant* is one named, long-lived
:class:`~repro.engine.session.ReasoningSession` plus its
:class:`~repro.serve.coalescer.Coalescer` — the unit the HTTP server
routes requests to.  The registry owns tenant lifecycle
(create-from-bundle, lookup, drop) and one serving-specific
optimization: tenants whose (schema, premise multiset) hash
identically — :attr:`ReasoningSession.premise_hash` — *share one set
of compiled artifacts* copy-on-write.  The first tenant with a given
hash compiles kernels, reach index, and closure memos; every later
structurally identical tenant adopts them via
:meth:`ReasoningSession.adopt_compiled_from` and starts hot.  The
sharing table is a small LRU keyed by the hash; a donor that has since
mutated (its live hash drifted off its key) is detected on lookup and
replaced rather than trusted.

This is the Hyrise-style "constraints as a served verdict source"
scenario: N microservices each registering the same schema's
dependency set cost one compilation, not N.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Iterable, Optional

from repro.deps.base import Dependency
from repro.engine.answer import Semantics
from repro.engine.session import ReasoningSession
from repro.io import bundle_from_payload
from repro.model.database import Database
from repro.model.schema import DatabaseSchema
from repro.serve.coalescer import Coalescer
from repro.serve.protocol import ServeError

DEFAULT_LRU_CAPACITY = 32


class ArtifactCache:
    """LRU of donor sessions keyed by structural premise hash."""

    def __init__(self, capacity: int = DEFAULT_LRU_CAPACITY):
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._donors: "OrderedDict[str, ReasoningSession]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.drifted = 0

    def adopt_into(self, session: ReasoningSession) -> bool:
        """Share a cached donor's compiled artifacts into ``session``.

        Returns ``True`` on an LRU hit (artifacts adopted).  On a miss
        the session itself becomes the donor for its hash.  A donor
        whose live hash no longer matches its key (the tenant mutated
        after registration) is dropped, never adopted.
        """
        key = session.premise_hash
        donor = self._donors.get(key)
        if donor is not None and donor.premise_hash != key:
            del self._donors[key]
            self.drifted += 1
            donor = None
        if donor is not None:
            self._donors.move_to_end(key)
            session.adopt_compiled_from(donor)
            self.hits += 1
            return True
        self._donors[key] = session
        self._donors.move_to_end(key)
        if len(self._donors) > self.capacity:
            self._donors.popitem(last=False)
            self.evictions += 1
        self.misses += 1
        return False

    def __len__(self) -> int:
        return len(self._donors)

    def stats(self) -> dict[str, int]:
        return {
            "capacity": self.capacity,
            "entries": len(self._donors),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "drifted": self.drifted,
        }


class Tenant:
    """One named session behind the server, with its coalescer."""

    def __init__(self, name: str, session: ReasoningSession,
                 shared_artifacts: bool = False):
        self.name = name
        self.session = session
        self.coalescer = Coalescer(session)
        self.shared_artifacts = shared_artifacts

    def mutate(self, kind: str, dependencies: Iterable[str]) -> dict[str, Any]:
        """Ordered ``add``/``retract`` through the coalescing barrier."""
        deps = list(dependencies)
        if not deps:
            raise ServeError(400, f"{kind} needs at least one dependency")
        self.coalescer.barrier()
        if kind == "add":
            delta = self.session.add(deps)
        else:
            delta = self.session.retract(deps)
        return {
            "version": self.session.version,
            "added": [str(dep) for dep in delta.added],
            "removed": [str(dep) for dep in delta.removed],
        }

    async def whatif_async(
        self,
        targets: Iterable[str],
        add: Iterable[str] = (),
        retract: Iterable[str] = (),
        semantics: Semantics = Semantics.UNRESTRICTED,
    ) -> dict[str, Any]:
        """``whatif`` with the variant's re-query off the event loop.

        The before-answers come from the live session (cheap — its
        caches are warm), then the fork is mutated and its after-pass —
        the part that may recompile the child's reach index — runs in
        the default executor, so the parent tenant keeps serving
        coalesced reads while the speculation computes.  The fork is
        copy-on-write and thread-confined after creation; the parent's
        compiled containers are never mutated by the child.
        """
        self.coalescer.barrier()
        session = self.session
        coerced = [session._coerce(target) for target in targets]
        if not coerced:
            raise ServeError(400, "whatif needs at least one target")
        additions = session._coerce_many(list(add))
        retractions = session._coerce_many(list(retract))
        if not (additions or retractions):
            raise ServeError(400, "whatif needs 'add' or 'retract' entries")
        before = session.implies_all(coerced, semantics)
        child = session.fork()
        if retractions:
            child.retract(retractions)
        if additions:
            child.add(additions)
        loop = asyncio.get_running_loop()
        after = await loop.run_in_executor(
            None, lambda: child.implies_all(coerced, semantics)
        )
        flips = [
            {
                "target": str(target),
                "before": b.to_json(),
                "after": a.to_json(),
                "flipped": b.verdict != a.verdict,
            }
            for target, b, a in zip(coerced, before, after)
        ]
        return {
            "flips": flips,
            "flipped": sum(flip["flipped"] for flip in flips),
            "total": len(flips),
        }

    def stats(self) -> dict[str, Any]:
        payload = dict(self.session.stats())
        payload["name"] = self.name
        payload["shared_artifacts"] = self.shared_artifacts
        payload["premises"] = len(self.session.dependencies)
        payload["coalescer"] = self.coalescer.stats()
        return payload


class TenantRegistry:
    """Every named tenant the server knows, plus the artifact LRU."""

    def __init__(self, artifact_capacity: int = DEFAULT_LRU_CAPACITY):
        self.tenants: dict[str, Tenant] = {}
        self.artifacts = ArtifactCache(artifact_capacity)

    def create(
        self,
        name: str,
        schema: DatabaseSchema,
        dependencies: Iterable[Dependency] = (),
        db: Optional[Database] = None,
        **session_options: Any,
    ) -> Tenant:
        """Register a new tenant; adopts shared artifacts when possible."""
        if not name:
            raise ServeError(400, "tenant name must be non-empty")
        if name in self.tenants:
            raise ServeError(409, f"tenant {name!r} already exists")
        session = ReasoningSession(
            schema, dependencies, db=db, **session_options
        )
        shared = self.artifacts.adopt_into(session)
        tenant = Tenant(name, session, shared_artifacts=shared)
        self.tenants[name] = tenant
        return tenant

    def create_from_bundle(self, name: str, bundle: dict[str, Any]) -> Tenant:
        """Register a tenant from a :mod:`repro.io` bundle payload."""
        if not isinstance(bundle, dict):
            raise ServeError(
                400,
                f"'bundle' must be a JSON object, got "
                f"{type(bundle).__name__}",
            )
        schema, dependencies, db = bundle_from_payload(bundle)
        return self.create(name, schema, dependencies, db=db)

    def get(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise ServeError(404, f"no tenant named {name!r}")
        return tenant

    def drop(self, name: str) -> None:
        """Forget a tenant (its artifacts may stay cached as a donor)."""
        if name not in self.tenants:
            raise ServeError(404, f"no tenant named {name!r}")
        del self.tenants[name]

    def stats(self) -> dict[str, Any]:
        return {
            "tenants": len(self.tenants),
            "artifact_cache": self.artifacts.stats(),
        }
