"""Primary/follower replication for the serving layer.

One node is the *primary*: it accepts mutations, appends them to each
tenant's durable log (see :mod:`repro.serve.wal`), and forwards every
record to its registered followers **before acknowledging the client**
— so an acknowledged mutation exists on every in-sync follower the
moment the caller sees its result.  Followers apply the records
through the exact session path a local mutation takes
(:meth:`~repro.serve.registry.Tenant.apply_replicated`), which keeps
them verdict-equivalent: same premises, same version arithmetic, same
compiled-artifact lifecycle.  Followers serve the read surface
(``implies`` / ``implies_all`` / ``whatif`` / ``check``) with a
reported replication lag and 421-redirect mutations to the primary.

The flow, per tenant::

    follower boot        GET  /replication/snapshot/N   (bundle @ seq S)
    catch-up             POST /replication/wal/N        {"after": S}
    steady state         POST /replication/apply        (pushed records)
    liveness             GET  /replication/heartbeat    (term + seqs)

Failover is explicit and safe rather than automatic and clever: a
follower heartbeats the primary, declares it dead after
``failover_after`` consecutive missed beats, and promotes itself only
when its log is fully applied through the last seq the primary
advertised.  Promotion bumps the node *term* (persisted before use —
see the fencing rule in :mod:`repro.serve.wal`), and every replicated
envelope carries its sender's term, so a resurrected old primary's
stream is refused with a 409 naming the fencing term; the stale
primary steps down to a read-only ``fenced`` role.  Leader *election*
among multiple candidate followers is deliberately out of scope: in a
multi-follower topology exactly one follower should run with
``failover_after > 0`` (the rest pass ``--failover-after 0``), and the
term fence makes a wrong promotion safe, not silently divergent.

Durability semantics under partial failure: a follower the primary
cannot reach is marked lagging and *skipped* — the mutation is still
acknowledged on local durability alone (availability over cross-node
redundancy), and the degradation is visible in ``/stats``.  The
skipped follower heals itself by pulling the WAL tail (or
re-bootstrapping from a snapshot when the tail was truncated away) on
its next heartbeat.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Optional

from repro.obs.tracing import Trace
from repro.serve.faults import (
    PARTITION_REPLICATION,
    REPLICATION_LAG,
)
from repro.serve.protocol import ServeError

DEFAULT_HEARTBEAT = 1.0
"""Seconds between a follower's heartbeats to its primary."""

DEFAULT_FAILOVER_AFTER = 3
"""Consecutive missed heartbeats before a follower promotes (0 = never)."""

FORWARD_TIMEOUT = 5.0
"""Per-follower bound on a forwarded record's round trip."""

BOOTSTRAP_TIMEOUT = 30.0
"""Bound on a snapshot pull (bundles with databases can be large)."""


def parse_endpoint(text: str) -> tuple[str, int]:
    """Split ``"host:port"``; raises :class:`ValueError` when malformed."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"endpoint must be 'host:port', got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"endpoint port must be an integer, got {text!r}")
    if not (0 < port < 65536):
        raise ValueError(f"endpoint port out of range: {text!r}")
    return host, port


async def replication_request(
    endpoint: str,
    method: str,
    path: str,
    payload: Optional[dict[str, Any]] = None,
    timeout: float = FORWARD_TIMEOUT,
) -> tuple[int, dict[str, Any]]:
    """One JSON request/response round trip over a fresh connection.

    Deliberately connectionless (``Connection: close``): replication
    traffic is low-rate and a stale keep-alive socket to a dead peer is
    exactly the failure mode heartbeats exist to detect.  Raises
    :class:`OSError` / :class:`asyncio.TimeoutError` on network
    failure; HTTP-level refusals come back as ``(status, payload)``.
    """

    async def round_trip() -> tuple[int, dict[str, Any]]:
        host, port = parse_endpoint(endpoint)
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = b"" if payload is None else json.dumps(payload).encode()
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {endpoint}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split()
            if len(parts) < 2 or not parts[0].startswith("HTTP/"):
                raise ConnectionError(
                    f"malformed status line from {endpoint}: {status_line!r}"
                )
            status = int(parts[1])
            length = 0
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n"):
                    break
                if not raw:
                    raise ConnectionError(
                        f"{endpoint} closed the connection mid-headers"
                    )
                name, _, value = raw.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            data = await reader.readexactly(length) if length else b""
            decoded = json.loads(data) if data else {}
            if not isinstance(decoded, dict):
                decoded = {"payload": decoded}
            return status, decoded
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    return await asyncio.wait_for(round_trip(), timeout)


class FollowerHandle:
    """The primary's view of one registered follower."""

    def __init__(self, endpoint: str):
        self.endpoint = endpoint
        self.state = "healthy"  # healthy | syncing | lagging
        self.acked_seq: dict[str, int] = {}
        self.forwarded = 0
        self.last_error: Optional[str] = None

    def stats(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "endpoint": self.endpoint,
            "state": self.state,
            "forwarded": self.forwarded,
            "acked_seq": dict(self.acked_seq),
        }
        if self.last_error:
            payload["last_error"] = self.last_error
        return payload


class PrimaryReplicator:
    """The primary half: follower registration and record forwarding.

    Forwarding is synchronous with the mutation's acknowledgement: the
    server awaits :meth:`forward` before responding, so a 200 on
    ``add``/``retract`` means every follower in ``healthy`` state has
    applied (and, when durable, fsync'd) the record.  A follower that
    refuses with a seq gap is marked ``syncing`` — it heals by pulling
    — and one that cannot be reached is marked ``lagging``; neither
    blocks the mutation.
    """

    def __init__(self, server: Any):
        self.server = server
        self.followers: dict[str, FollowerHandle] = {}
        self.forwarded_records = 0
        self.forward_failures = 0
        self.fenced_by: Optional[dict[str, Any]] = None

    def register(self, endpoint: str) -> FollowerHandle:
        """Adopt (or refresh) a follower; flips the node to replicating
        so even non-durable tenants number and record their mutations."""
        handle = self.followers.get(endpoint)
        if handle is None:
            handle = FollowerHandle(endpoint)
            self.followers[endpoint] = handle
        handle.state = "healthy"
        handle.last_error = None
        self.server.registry.set_replicating(True)
        return handle

    async def forward(
        self,
        tenant_name: str,
        record: dict[str, Any],
        trace: Optional[Trace] = None,
    ) -> None:
        """Push one record to every follower, concurrently.

        A ``trace`` receives one ``ship`` span per follower (the
        record's trace id already rides *inside* the envelope, so the
        follower's durable copy links back to the originating request).
        """
        if not self.followers:
            return
        faults = self.server.faults
        if faults.trip(PARTITION_REPLICATION) or faults.trip(REPLICATION_LAG):
            for handle in self.followers.values():
                handle.state = "lagging"
                handle.last_error = "partitioned (fault injected)"
            self.forward_failures += len(self.followers)
            return
        await asyncio.gather(
            *(
                self._forward_one(handle, tenant_name, record, trace)
                for handle in list(self.followers.values())
            )
        )

    async def _forward_one(
        self,
        handle: FollowerHandle,
        tenant_name: str,
        record: dict[str, Any],
        trace: Optional[Trace] = None,
    ) -> None:
        envelope = {
            "term": self.server.registry.term,
            "primary": self.server.advertised_endpoint(),
            "tenant": tenant_name,
            "records": [record],
        }
        if "trace" in record:
            envelope["trace"] = record["trace"]
        ship_start = time.perf_counter()
        try:
            status, payload = await replication_request(
                handle.endpoint, "POST", "/replication/apply", envelope
            )
        except (OSError, asyncio.TimeoutError, ValueError) as exc:
            handle.state = "lagging"
            handle.last_error = f"{type(exc).__name__}: {exc}"
            self.forward_failures += 1
            self._record_ship(trace, handle, ship_start, ok=False)
            return
        self._record_ship(trace, handle, ship_start, ok=(status == 200))
        if status == 200:
            handle.state = "healthy"
            handle.last_error = None
            handle.acked_seq[tenant_name] = int(
                payload.get("seq", record.get("seq", 0))
            )
            handle.forwarded += 1
            self.forwarded_records += 1
            return
        if payload.get("fenced"):
            # The follower has seen a higher term: someone promoted past
            # us.  Step down — this node must stop acknowledging
            # mutations it can no longer claim to lead.
            self.fenced_by = payload
            self.server.step_down(
                int(payload.get("term", 0)), payload.get("primary")
            )
            return
        handle.state = "syncing"
        handle.last_error = payload.get("error") or f"status {status}"
        self.forward_failures += 1

    def _record_ship(
        self,
        trace: Optional[Trace],
        handle: FollowerHandle,
        started: float,
        ok: bool,
    ) -> None:
        """One per-follower ``ship`` span plus the latency histogram."""
        elapsed = time.perf_counter() - started
        metrics = getattr(self.server, "metrics", None)
        if metrics is not None:
            metrics.histogram(
                "repro_replication_ship_seconds",
                "Per-follower replication forward round trip",
            ).observe(elapsed)
        if trace is not None:
            trace.add_span(
                "ship",
                elapsed,
                offset=started - trace.t0,
                follower=handle.endpoint,
                ok=ok,
            )

    def heartbeat_payload(self) -> dict[str, Any]:
        registry = self.server.registry
        return {
            "term": registry.term,
            "role": self.server.role,
            "primary": self.server.advertised_endpoint(),
            "tenants": {
                name: tenant.replicated_seq
                for name, tenant in registry.tenants.items()
            },
        }

    def stats(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "followers": [
                handle.stats() for handle in self.followers.values()
            ],
            "forwarded_records": self.forwarded_records,
            "forward_failures": self.forward_failures,
        }
        if self.fenced_by is not None:
            payload["fenced_by"] = dict(self.fenced_by)
        return payload


class FollowerReplicator:
    """The follower half: bootstrap, heartbeat, catch-up, promotion.

    Runs as one asyncio task on the server's loop (:meth:`run`), so
    every registry mutation it performs is serialized with request
    handling — no locks.  Pushed records arrive via the server's
    ``POST /replication/apply`` route and land in
    :meth:`server.apply_replicated_envelope`; this task only handles
    the *pull* side (initial bootstrap and gap repair) plus liveness.
    """

    def __init__(
        self,
        server: Any,
        primary: str,
        heartbeat: float = DEFAULT_HEARTBEAT,
        failover_after: int = DEFAULT_FAILOVER_AFTER,
    ):
        if heartbeat <= 0:
            raise ValueError(f"heartbeat must be positive, got {heartbeat}")
        if failover_after < 0:
            raise ValueError(
                f"failover_after must be >= 0, got {failover_after}"
            )
        parse_endpoint(primary)  # fail fast on a malformed endpoint
        self.server = server
        self.primary = primary
        self.heartbeat = heartbeat
        self.failover_after = failover_after
        self.request_timeout = min(max(heartbeat, 0.25), FORWARD_TIMEOUT)
        self.missed = 0
        self.known_term = 0
        self.primary_seqs: dict[str, int] = {}
        self.registered = False
        self.heartbeats_ok = 0
        self.heartbeats_missed = 0
        self.pulled_records = 0
        self.bootstrapped_tenants = 0
        self.promoted = False
        self.promotion_refusals = 0
        self.last_error: Optional[str] = None

    # -- liveness loop -----------------------------------------------------

    async def run(self) -> None:
        """Heartbeat until promoted, cancelled, or the server drains."""
        self.known_term = max(self.known_term, self.server.registry.term)
        while self.server.role == "follower":
            await self._tick()
            if self.server.role != "follower":
                break
            await asyncio.sleep(self.heartbeat)

    async def _tick(self) -> None:
        try:
            status, payload = await replication_request(
                self.primary,
                "GET",
                "/replication/heartbeat",
                timeout=self.request_timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            self._miss(f"{type(exc).__name__}: {exc}")
            return
        if status != 200:
            self._miss(payload.get("error") or f"heartbeat status {status}")
            return
        self.missed = 0
        self.heartbeats_ok += 1
        self.last_error = None
        term = int(payload.get("term", 0))
        if term > self.server.registry.term:
            self.server.registry.set_term(term)
        self.known_term = max(self.known_term, self.server.registry.term)
        self.primary_seqs = {
            str(name): int(seq)
            for name, seq in (payload.get("tenants") or {}).items()
        }
        if not self.registered:
            await self._register()
        await self._catch_up()

    def _miss(self, error: str) -> None:
        self.missed += 1
        self.heartbeats_missed += 1
        self.last_error = error
        # A re-registration is needed after any outage: the primary may
        # have restarted and forgotten us.
        self.registered = False
        if self.failover_after > 0 and self.missed >= self.failover_after:
            self.maybe_promote()

    # -- promotion ---------------------------------------------------------

    def maybe_promote(self) -> None:
        """Promote — but only from a fully-applied log.

        The last successful heartbeat told us the primary's seq per
        tenant; if any tenant here is behind that (or missing), the
        acknowledged history is not all present and promotion would
        silently drop mutations the primary confirmed.  Refuse and keep
        waiting — a lagging follower is not a candidate.
        """
        registry = self.server.registry
        for name, seq in self.primary_seqs.items():
            tenant = registry.tenants.get(name)
            applied = tenant.replicated_seq if tenant is not None else None
            if applied is None or applied < seq:
                self.promotion_refusals += 1
                self.last_error = (
                    f"refusing to promote: tenant {name!r} applied through "
                    f"{applied}, primary last advertised {seq}"
                )
                return
        self.promoted = True
        self.server.become_primary(self.known_term + 1)

    # -- registration / catch-up ------------------------------------------

    async def _register(self) -> None:
        try:
            status, payload = await replication_request(
                self.primary,
                "POST",
                "/replication/register",
                {"endpoint": self.server.advertised_endpoint()},
                timeout=self.request_timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            self.last_error = f"register: {type(exc).__name__}: {exc}"
            return
        if status == 200:
            self.registered = True
        else:
            self.last_error = payload.get("error") or f"register {status}"

    async def _catch_up(self) -> None:
        """Repair every tenant that trails the primary's advertised seq."""
        registry = self.server.registry
        for name, primary_seq in self.primary_seqs.items():
            tenant = registry.tenants.get(name)
            if tenant is None:
                await self._bootstrap(name)
                continue
            if tenant.replicated_seq >= primary_seq:
                continue
            try:
                status, payload = await replication_request(
                    self.primary,
                    "POST",
                    f"/replication/wal/{name}",
                    {"after": tenant.replicated_seq},
                    timeout=BOOTSTRAP_TIMEOUT,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                self.last_error = f"wal pull: {type(exc).__name__}: {exc}"
                return
            if status != 200 or payload.get("resync"):
                # The tail we need was truncated away by a snapshot (or
                # the primary is non-durable and keeps no tail): start
                # over from a fresh snapshot.
                await self._bootstrap(name)
                continue
            for record in payload.get("records") or []:
                if int(record.get("seq", 0)) <= tenant.replicated_seq:
                    continue
                tenant.apply_replicated(record)
                self.pulled_records += 1

    async def _bootstrap(self, name: str) -> None:
        try:
            status, payload = await replication_request(
                self.primary,
                "GET",
                f"/replication/snapshot/{name}",
                timeout=BOOTSTRAP_TIMEOUT,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            self.last_error = f"bootstrap: {type(exc).__name__}: {exc}"
            return
        if status != 200:
            self.last_error = payload.get("error") or f"bootstrap {status}"
            return
        self.server.registry.create_replica(name, payload)
        self.bootstrapped_tenants += 1

    # -- introspection -----------------------------------------------------

    def lag_of(self, name: str) -> int:
        """Seq delta behind the primary's last advertised position."""
        tenant = self.server.registry.tenants.get(name)
        applied = tenant.replicated_seq if tenant is not None else 0
        return max(0, self.primary_seqs.get(name, 0) - applied)

    def stats(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "primary": self.primary,
            "heartbeat": self.heartbeat,
            "failover_after": self.failover_after,
            "registered": self.registered,
            "missed": self.missed,
            "heartbeats_ok": self.heartbeats_ok,
            "heartbeats_missed": self.heartbeats_missed,
            "pulled_records": self.pulled_records,
            "bootstrapped_tenants": self.bootstrapped_tenants,
            "promoted": self.promoted,
            "lag": {
                name: self.lag_of(name) for name in self.primary_seqs
            },
        }
        if self.promotion_refusals:
            payload["promotion_refusals"] = self.promotion_refusals
        if self.last_error:
            payload["last_error"] = self.last_error
        return payload


def apply_envelope(server: Any, body: dict[str, Any]) -> dict[str, Any]:
    """Apply a pushed replication envelope on the receiving node.

    This is where the term fence lives, and it is evaluated on *every*
    node regardless of role — a promoted follower (now primary) must
    refuse its resurrected predecessor's stream, not re-follow it.

    * envelope term **below** ours: 409 ``{"fenced": true}`` naming our
      term and primary — the sender steps down.
    * envelope term **above** ours while we think we lead: the cluster
      moved past us; adopt the term, step down, and apply as a
      follower would.
    * role not follower at an equal term: also fenced (two nodes
      claiming the same term is exactly what the fence exists to stop).
    """
    registry = server.registry
    term = int(body.get("term", 0))
    sender = body.get("primary")

    def fenced() -> ServeError:
        return ServeError(
            409,
            f"replication stream term {term} is fenced by term "
            f"{registry.term}",
            extra={
                "fenced": True,
                "term": registry.term,
                "primary": server.advertised_endpoint(),
            },
        )

    if term < registry.term:
        raise fenced()
    if server.role != "follower":
        if term > registry.term:
            server.step_down(term, sender if isinstance(sender, str) else None)
        else:
            raise fenced()
    if term > registry.term:
        registry.set_term(term)
    name = body.get("tenant")
    if not isinstance(name, str) or not name:
        raise ServeError(400, "'tenant' must be a non-empty string")
    tenant = registry.tenants.get(name)
    if tenant is None:
        raise ServeError(
            409,
            f"tenant {name!r} is not replicated here yet",
            extra={"resync": True},
        )
    records = body.get("records")
    if not isinstance(records, list):
        raise ServeError(400, "'records' must be a list of WAL records")
    applied = 0
    for record in records:
        if not isinstance(record, dict):
            raise ServeError(400, "each record must be a JSON object")
        if int(record.get("seq", 0)) <= tenant.replicated_seq:
            continue  # duplicate delivery — already applied
        tenant.apply_replicated(record)
        applied += 1
    return {
        "ok": True,
        "tenant": name,
        "seq": tenant.replicated_seq,
        "applied": applied,
    }
