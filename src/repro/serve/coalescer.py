"""Per-tenant request coalescing for concurrent ``implies`` traffic.

The serving cost model: many concurrent clients ask one tenant
implication questions, and at any event-loop tick several of those
questions are *pending at once* — frequently the same hot targets.
Dispatching each request separately pays per request for target
parsing, validation, routing, and answer construction even when the
compiled :class:`~repro.core.reach_index.ReachIndex` makes the
decision itself O(1).

A :class:`Coalescer` batches instead: ``submit`` enqueues the request
and schedules exactly one flush with ``loop.call_soon``, so every
request that arrives in the same event-loop tick lands in one batch.
The flush runs the batch as a single pass over the session — one
parse/decide per *unique* ``(target, semantics)`` pair, with the
resulting :class:`~repro.engine.answer.Answer` fanned back out to
every waiting future (duplicates share the answer object).  Because
the whole batch executes between two loop ticks, no mutation can
interleave: every answer in a batch carries the same session version.

Mutations order through :meth:`barrier` — flush whatever is pending,
*then* mutate — so a submit/mutate/submit program observes exactly the
verdicts, versions, and witness chains sequential per-call execution
would produce (pinned by the hypothesis property suite).

The coalescer is deliberately transport-free: the HTTP server drives
it from request handlers, the benchmark harness from simulated client
tasks, and the property tests from scripted interleavings.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional, Union

from repro.deps.base import Dependency
from repro.engine.answer import Answer, Semantics
from repro.engine.deadline import Deadline, DeadlineLike, coerce_deadline
from repro.engine.session import ReasoningSession
from repro.obs.metrics import Histogram
from repro.obs.tracing import Trace

_BatchKey = tuple[str, Semantics]

_BATCH_SIZE_BUCKETS = tuple(float(2**i) for i in range(12))
"""Batch-size histogram buckets: 1, 2, 4, ... 2048 requests."""


class Coalescer:
    """Batches one tenant's concurrent implication requests per tick.

    With ``degrade=True`` (the serving default) a decision that blows
    its deadline or an engine budget resolves to a *degraded*
    ``verdict=None`` answer instead of raising — overload shows up as
    an honest "unknown", not a 4xx/5xx.
    """

    def __init__(
        self,
        session: ReasoningSession,
        degrade: bool = False,
        batch_sizes: Optional[Histogram] = None,
    ):
        self.session = session
        self.degrade = degrade
        self._pending: dict[_BatchKey, asyncio.Future] = {}
        self._deadlines: dict[_BatchKey, Optional[Deadline]] = {}
        # Traced waiters only: ``(trace, submit_time)`` per key, first
        # entry the payer.  Untraced traffic never touches this dict.
        self._waiters: dict[_BatchKey, list[tuple[Trace, float]]] = {}
        self._pending_count = 0
        self._flush_scheduled = False
        self.requests = 0
        self.batches = 0
        self.unique_decides = 0
        self.barrier_flushes = 0
        self.degraded = 0
        self.batch_sizes = (
            batch_sizes
            if batch_sizes is not None
            else Histogram(
                "repro_coalescer_batch_size", buckets=_BATCH_SIZE_BUCKETS
            )
        )

    # -- the request side --------------------------------------------------

    def submit(
        self,
        target: Union[Dependency, str],
        semantics: Union[Semantics, str] = Semantics.UNRESTRICTED,
        deadline: DeadlineLike = None,
        trace: Optional[Trace] = None,
    ) -> "asyncio.Future[Answer]":
        """Enqueue one ``implies`` question; resolves on the next tick.

        Requests submitted before the flush runs join the same batch;
        textually identical targets under the same semantics share *one
        future* (and therefore one parse, one decision, and one
        :class:`Answer` object).  When coalesced requests carry
        different deadlines the shared decision runs under the most
        generous one — no deadline at all if any request had none,
        otherwise the latest expiry — so no caller gets a degraded
        answer because a stranger's tighter deadline rode along.  Must
        be called on a running event loop.

        A ``trace`` enrolls the request in the batch's span
        accounting: the *first* traced submitter of a key is the payer
        and receives the ``decide`` span; every later traced submitter
        receives a ``coalesce-wait`` span naming the payer's trace id
        (``paid_by``) — the recorded evidence of who actually ran the
        decision a shared future resolved from.
        """
        semantics = Semantics(semantics)
        deadline = coerce_deadline(deadline)
        key = (str(target) if isinstance(target, Dependency) else target,
               semantics)
        future = self._pending.get(key)
        if future is None:
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            self._pending[key] = future
            self._deadlines[key] = deadline
            if not self._flush_scheduled:
                self._flush_scheduled = True
                loop.call_soon(self.flush)
        else:
            merged = self._deadlines.get(key)
            if merged is not None and (
                deadline is None or deadline.expires_at > merged.expires_at
            ):
                self._deadlines[key] = deadline
        if trace is not None:
            self._waiters.setdefault(key, []).append(
                (trace, time.perf_counter())
            )
        self.requests += 1
        self._pending_count += 1
        return future

    # -- the batch side ----------------------------------------------------

    def flush(self) -> None:
        """Decide every pending request in one pass, fan answers out.

        A target that fails to parse or validate resolves only its own
        shared future with the exception — one malformed request never
        poisons the rest of the batch.  Runs synchronously on the loop,
        so the batch is atomic with respect to mutations.
        """
        self._flush_scheduled = False
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        deadlines, self._deadlines = self._deadlines, {}
        waiters, self._waiters = (
            (self._waiters, {}) if self._waiters else (None, self._waiters)
        )
        self.batch_sizes.observe(self._pending_count)
        self._pending_count = 0
        self.batches += 1
        session = self.session
        for (text, semantics), future in pending.items():
            if future.done():
                continue
            traced = waiters.get((text, semantics)) if waiters else None
            decide_start = time.perf_counter() if traced else 0.0
            try:
                target = session._coerce(text)
                answer = session.implies(
                    target, semantics, _coerced=True,
                    deadline=deadlines.get((text, semantics)),
                    degrade=self.degrade,
                )
            except Exception as exc:  # noqa: BLE001 - fanned to callers
                future.set_exception(exc)
                continue
            self.unique_decides += 1
            if answer.degraded:
                self.degraded += 1
            if traced:
                self._record_spans(text, traced, decide_start)
            future.set_result(answer)

    @staticmethod
    def _record_spans(
        text: str, traced: list[tuple[Trace, float]], decide_start: float
    ) -> None:
        """Attribute one shared decide to its payer; spanify waiters."""
        done = time.perf_counter()
        payer = traced[0][0]
        payer.add_span(
            "decide",
            done - decide_start,
            offset=decide_start - payer.t0,
            target=text,
            shared=len(traced),
        )
        for waiter, submitted in traced[1:]:
            waiter.add_span(
                "coalesce-wait",
                done - submitted,
                offset=submitted - waiter.t0,
                target=text,
                paid_by=payer.trace_id,
            )

    def barrier(self) -> None:
        """Flush pending requests before an operation that must order.

        Mutations (and anything else that reads "the premises as of
        now") call this first, so requests submitted *before* the
        mutation are answered against the pre-mutation premises —
        exactly as sequential execution would.
        """
        if self._pending:
            self.barrier_flushes += 1
            self.flush()

    @property
    def deduplicated(self) -> int:
        """Requests answered from another request's decision."""
        return self.requests - self.unique_decides - self._pending_count

    def stats(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "unique_decides": self.unique_decides,
            "deduplicated": self.deduplicated,
            "barrier_flushes": self.barrier_flushes,
            "pending": self._pending_count,
            "degraded": self.degraded,
        }
