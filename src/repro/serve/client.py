"""A tiny blocking client for :mod:`repro.serve` — scripting and tests.

Built on :mod:`http.client` so it needs nothing outside the standard
library and works from synchronous code (shell scripts via ``repro
call``, pytest, examples).  One :class:`ServeClient` holds one
keep-alive connection; methods mirror the server's routes and return
the decoded JSON payload.  Non-2xx responses raise
:class:`~repro.serve.protocol.ServeError` carrying the server's status
and message, so callers see the same exception type the server raised.

Transport failures — a stale keep-alive the server closed between
calls, a connection dropped mid-response, a refused connect while the
server restarts — are retried with capped exponential backoff plus
jitter (``retries`` attempts after the first, sleeping
``backoff_base * 2**attempt`` up to ``backoff_max``, each sleep
multiplied by a random jitter factor so a fleet of recovering clients
does not reconnect in lockstep).  HTTP *error responses* are never
retried: the server spoke, the answer stands.

Retrying a mutation is only safe if it cannot double-apply, so
:meth:`add` and :meth:`retract` attach a generated UUID idempotency
``key`` (or the caller's own) — the server records the key's result in
the tenant WAL, and a retry of an already-applied mutation replays the
recorded result instead of mutating again, even across a server crash
and restart.

:class:`FailoverClient` lifts the same surface over a replicated
deployment (see :mod:`repro.serve.replication`): given a list of
``host:port`` endpoints it discovers who leads by polling ``/health``
(the claimant with the highest ``term`` wins), spreads reads
round-robin across followers (falling back to the primary), sends
mutations to the primary only, and re-resolves on connection failure
or a 421 redirect — pinning one idempotency key per logical mutation
so the retry that lands on a freshly promoted follower replays
exactly-once instead of double-applying.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from typing import Any, Callable, Optional

from repro.serve.protocol import ServeError

DEFAULT_TIMEOUT = 30.0
DEFAULT_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_MAX = 2.0

_RETRYABLE = (http.client.HTTPException, ConnectionError, OSError)


class ServeClient:
    """Blocking JSON-over-HTTP client for a running reasoning server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
        jitter: bool = True,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        # Client-side transport counters — never sent to the server;
        # ``repro call --json`` and tests read them off the object.
        self.requests_sent = 0
        self.retried = 0
        self.backoff_slept = 0.0
        self.last_call_seconds = 0.0
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _backoff(self, attempt: int) -> float:
        """Sleep length before retry ``attempt`` (0-based).

        The first retry is near-immediate — the common case is a stale
        keep-alive socket, where reconnecting at once succeeds — and
        later ones back off exponentially to ``backoff_max`` with a
        0.5-1.0 jitter factor.
        """
        delay = min(self.backoff_base * (2 ** attempt), self.backoff_max)
        if self.jitter:
            delay *= 0.5 + 0.5 * self._rng.random()
        return delay

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """One round trip; raises :class:`ServeError` on error payloads.

        Connection-level failures are retried ``self.retries`` times
        with exponential backoff; the last failure propagates.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        call_start = time.perf_counter()
        self.requests_sent += 1
        try:
            for attempt in range(self.retries + 1):
                conn = self._connection()
                try:
                    conn.request(method, path, body=body, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                    break
                except _RETRYABLE:
                    self.close()
                    if attempt >= self.retries:
                        raise
                    self.retried += 1
                    delay = self._backoff(attempt)
                    if delay > 0:
                        self.backoff_slept += delay
                        self._sleep(delay)
        finally:
            self.last_call_seconds = time.perf_counter() - call_start
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            raise ServeError(
                502, f"server sent non-JSON body ({response.status})"
            )
        if response.status >= 400:
            if isinstance(decoded, dict):
                message = decoded.get("error", raw.decode("utf-8", "replace"))
                extra = {
                    key: value
                    for key, value in decoded.items()
                    if key not in ("error", "status")
                }
            else:
                message, extra = str(decoded), None
            raise ServeError(response.status, message, extra=extra)
        if response.headers.get("Connection", "").lower() == "close":
            self.close()
        return decoded

    def transport_stats(self) -> dict[str, Any]:
        """Client-side transport counters (local, never server state)."""
        return {
            "requests_sent": self.requests_sent,
            "retried": self.retried,
            "backoff_slept": self.backoff_slept,
            "last_call_seconds": self.last_call_seconds,
        }

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    # -- server-level routes -----------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/stats")

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (graceful, like SIGTERM)."""
        return self.request("POST", "/shutdown")

    # -- tenant lifecycle ----------------------------------------------------

    def tenants(self) -> list[str]:
        return self.request("GET", "/tenants")["tenants"]

    def create_tenant(
        self,
        name: str,
        bundle: dict[str, Any],
        options: Optional[dict[str, int]] = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"name": name, "bundle": bundle}
        if options is not None:
            payload["options"] = options
        return self.request("POST", "/tenants", payload)

    def tenant_stats(self, name: str) -> dict[str, Any]:
        return self.request("GET", f"/tenants/{name}/stats")

    def drop_tenant(self, name: str) -> dict[str, Any]:
        return self.request("DELETE", f"/tenants/{name}")

    # -- tenant operations ---------------------------------------------------

    def implies(
        self,
        tenant: str,
        target: str,
        semantics: str = "unrestricted",
        deadline_ms: Optional[float] = None,
        max_lag: Optional[int] = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"target": target, "semantics": semantics}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if max_lag is not None:
            payload["max_lag"] = max_lag
        return self.request(
            "POST", f"/tenants/{tenant}/implies", payload
        )

    def implies_all(
        self,
        tenant: str,
        targets: list[str],
        semantics: str = "unrestricted",
        deadline_ms: Optional[float] = None,
        max_lag: Optional[int] = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"targets": targets, "semantics": semantics}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if max_lag is not None:
            payload["max_lag"] = max_lag
        return self.request(
            "POST", f"/tenants/{tenant}/implies_all", payload
        )

    def add(
        self,
        tenant: str,
        dependencies: list[str],
        key: Optional[str] = None,
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/add",
            {
                "dependencies": dependencies,
                "key": key if key is not None else str(uuid.uuid4()),
            },
        )

    def retract(
        self,
        tenant: str,
        dependencies: list[str],
        key: Optional[str] = None,
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/retract",
            {
                "dependencies": dependencies,
                "key": key if key is not None else str(uuid.uuid4()),
            },
        )

    def whatif(
        self,
        tenant: str,
        targets: list[str],
        add: Optional[list[str]] = None,
        retract: Optional[list[str]] = None,
        semantics: str = "unrestricted",
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/whatif",
            {
                "targets": targets,
                "add": add or [],
                "retract": retract or [],
                "semantics": semantics,
            },
        )

    def check(self, tenant: str) -> dict[str, Any]:
        return self.request("POST", f"/tenants/{tenant}/check", {})


class FailoverClient:
    """:class:`ServeClient` over a replicated deployment.

    Holds one :class:`ServeClient` per known endpoint.  ``resolve``
    polls ``/health`` across the fleet and crowns the reachable node
    claiming ``role == "primary"`` with the highest ``term`` — the
    fencing rule guarantees at most one *legitimate* claimant per term,
    so the highest term is the current leader.  Reads rotate across
    followers and fall back to the primary; mutations go to the
    primary, re-resolving (bounded by ``failover_timeout``) on a
    connection failure, a 421 redirect, or a 503 — which is exactly the
    window a failover opens.  Endpoints named by redirects or health
    payloads but absent from the constructor list are learned on the
    fly.
    """

    def __init__(
        self,
        endpoints: list[str],
        timeout: float = DEFAULT_TIMEOUT,
        failover_timeout: float = 30.0,
        poll_interval: float = 0.1,
        max_lag: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not endpoints:
            raise ValueError("FailoverClient needs at least one endpoint")
        self.endpoints = list(dict.fromkeys(str(e) for e in endpoints))
        self.timeout = timeout
        self.failover_timeout = failover_timeout
        self.poll_interval = poll_interval
        self.max_lag = max_lag
        self._sleep = sleep
        self._clients: dict[str, ServeClient] = {}
        self._primary: Optional[str] = None
        self._followers: list[str] = []
        self._read_rr = 0
        self.resolves = 0
        self.redirects = 0
        self.failed_reads = 0
        self.failover_slept = 0.0

    # -- plumbing ----------------------------------------------------------

    def _client(self, endpoint: str) -> ServeClient:
        client = self._clients.get(endpoint)
        if client is None:
            host, _, port_text = endpoint.rpartition(":")
            if not host:
                raise ValueError(
                    f"endpoint must be 'host:port', got {endpoint!r}"
                )
            client = ServeClient(
                host, int(port_text), timeout=self.timeout, retries=1
            )
            self._clients[endpoint] = client
        return client

    def _learn(self, endpoint: str) -> None:
        if endpoint not in self.endpoints:
            self.endpoints.append(endpoint)

    def resolve(self, force: bool = False) -> Optional[str]:
        """The current primary endpoint, or ``None`` if nobody leads."""
        if self._primary is not None and not force:
            return self._primary
        self.resolves += 1
        best: Optional[str] = None
        best_term = -1
        followers: list[str] = []
        for endpoint in list(self.endpoints):
            try:
                health = self._client(endpoint).health()
            except (ServeError, ValueError):
                continue
            except _RETRYABLE:
                self._client(endpoint).close()
                continue
            role = health.get("role", "primary")
            term = int(health.get("term", 0) or 0)
            claimed = health.get("primary")
            if isinstance(claimed, str) and claimed:
                self._learn(claimed)
            if role == "primary" and term > best_term:
                best, best_term = endpoint, term
            elif role == "follower":
                followers.append(endpoint)
        self._primary = best
        self._followers = followers
        return best

    def topology(self) -> dict[str, Any]:
        """The resolved cluster view (forces a fresh ``/health`` sweep)."""
        primary = self.resolve(force=True)
        return {
            "primary": primary,
            "followers": list(self._followers),
            "endpoints": list(self.endpoints),
        }

    def transport_stats(self) -> dict[str, Any]:
        """Fleet-wide transport counters: this client's routing state
        plus the per-endpoint clients' retry/backoff totals."""
        return {
            "resolves": self.resolves,
            "redirects": self.redirects,
            "failed_reads": self.failed_reads,
            "failover_slept": self.failover_slept,
            "requests_sent": sum(
                client.requests_sent for client in self._clients.values()
            ),
            "retried": sum(
                client.retried for client in self._clients.values()
            ),
            "backoff_slept": sum(
                client.backoff_slept for client in self._clients.values()
            ),
        }

    def close(self) -> None:
        for client in self._clients.values():
            client.close()

    def __enter__(self) -> "FailoverClient":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    # -- routing -----------------------------------------------------------

    def _on_primary(self, call: Callable[[ServeClient], dict[str, Any]]):
        """Run ``call`` against the primary, chasing it through failover."""
        deadline = time.monotonic() + self.failover_timeout
        last: Optional[BaseException] = None
        while True:
            primary = self.resolve(force=self._primary is None)
            if primary is not None:
                client = self._client(primary)
                try:
                    return call(client)
                except ServeError as exc:
                    if exc.status == 421:
                        self.redirects += 1
                        hint = exc.extra.get("primary")
                        if isinstance(hint, str) and hint:
                            self._learn(hint)
                        self._primary = None
                        last = exc
                    elif exc.status == 503:
                        self._primary = None
                        last = exc
                    else:
                        raise
                except _RETRYABLE as exc:
                    client.close()
                    self._primary = None
                    last = exc
            if time.monotonic() >= deadline:
                if isinstance(last, ServeError):
                    raise last
                raise ServeError(
                    503,
                    f"no primary accepted the request within "
                    f"{self.failover_timeout}s"
                    + (f" (last: {last})" if last is not None else ""),
                )
            self.failover_slept += self.poll_interval
            self._sleep(self.poll_interval)

    def _read_order(self) -> list[str]:
        self.resolve()
        order: list[str] = []
        if self._followers:
            start = self._read_rr % len(self._followers)
            order.extend(self._followers[start:] + self._followers[:start])
            self._read_rr += 1
        if self._primary is not None:
            order.append(self._primary)
        return order or list(self.endpoints)

    def _read(self, call: Callable[[ServeClient], dict[str, Any]]):
        """Run ``call`` against followers first, primary as a last resort.

        A 503 (lag bound exceeded, draining) or 404 (tenant not
        bootstrapped on that follower yet) falls through to the next
        candidate; any other HTTP error is the real answer and raises.
        """
        last: Optional[BaseException] = None
        for endpoint in self._read_order():
            client = self._client(endpoint)
            try:
                return call(client)
            except ServeError as exc:
                if exc.status in (404, 421, 503):
                    last = exc
                    continue
                raise
            except _RETRYABLE as exc:
                client.close()
                self._primary = None  # the topology may have shifted
                last = exc
        self.failed_reads += 1
        if isinstance(last, ServeError):
            raise last
        raise ServeError(
            503,
            "no replica answered the read"
            + (f" (last: {last})" if last is not None else ""),
        )

    # -- the ServeClient surface -------------------------------------------

    def implies(
        self,
        tenant: str,
        target: str,
        semantics: str = "unrestricted",
        deadline_ms: Optional[float] = None,
        max_lag: Optional[int] = None,
    ) -> dict[str, Any]:
        bound = max_lag if max_lag is not None else self.max_lag
        return self._read(lambda c: c.implies(
            tenant, target, semantics=semantics,
            deadline_ms=deadline_ms, max_lag=bound,
        ))

    def implies_all(
        self,
        tenant: str,
        targets: list[str],
        semantics: str = "unrestricted",
        deadline_ms: Optional[float] = None,
        max_lag: Optional[int] = None,
    ) -> dict[str, Any]:
        bound = max_lag if max_lag is not None else self.max_lag
        return self._read(lambda c: c.implies_all(
            tenant, targets, semantics=semantics,
            deadline_ms=deadline_ms, max_lag=bound,
        ))

    def whatif(
        self,
        tenant: str,
        targets: list[str],
        add: Optional[list[str]] = None,
        retract: Optional[list[str]] = None,
        semantics: str = "unrestricted",
    ) -> dict[str, Any]:
        return self._read(lambda c: c.whatif(
            tenant, targets, add=add, retract=retract, semantics=semantics,
        ))

    def check(self, tenant: str) -> dict[str, Any]:
        return self._read(lambda c: c.check(tenant))

    def add(
        self,
        tenant: str,
        dependencies: list[str],
        key: Optional[str] = None,
    ) -> dict[str, Any]:
        # Pin the idempotency key before the retry loop: the attempt
        # that lands on a freshly promoted follower must replay, not
        # re-apply.
        pinned = key if key is not None else str(uuid.uuid4())
        return self._on_primary(
            lambda c: c.add(tenant, dependencies, key=pinned)
        )

    def retract(
        self,
        tenant: str,
        dependencies: list[str],
        key: Optional[str] = None,
    ) -> dict[str, Any]:
        pinned = key if key is not None else str(uuid.uuid4())
        return self._on_primary(
            lambda c: c.retract(tenant, dependencies, key=pinned)
        )

    def create_tenant(
        self,
        name: str,
        bundle: dict[str, Any],
        options: Optional[dict[str, int]] = None,
    ) -> dict[str, Any]:
        return self._on_primary(
            lambda c: c.create_tenant(name, bundle, options=options)
        )

    def drop_tenant(self, name: str) -> dict[str, Any]:
        return self._on_primary(lambda c: c.drop_tenant(name))

    def tenants(self) -> list[str]:
        return self._read(lambda c: {"tenants": c.tenants()})["tenants"]
