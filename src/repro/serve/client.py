"""A tiny blocking client for :mod:`repro.serve` — scripting and tests.

Built on :mod:`http.client` so it needs nothing outside the standard
library and works from synchronous code (shell scripts via ``repro
call``, pytest, examples).  One :class:`ServeClient` holds one
keep-alive connection; methods mirror the server's routes and return
the decoded JSON payload.  Non-2xx responses raise
:class:`~repro.serve.protocol.ServeError` carrying the server's status
and message, so callers see the same exception type the server raised.

Transport failures — a stale keep-alive the server closed between
calls, a connection dropped mid-response, a refused connect while the
server restarts — are retried with capped exponential backoff plus
jitter (``retries`` attempts after the first, sleeping
``backoff_base * 2**attempt`` up to ``backoff_max``, each sleep
multiplied by a random jitter factor so a fleet of recovering clients
does not reconnect in lockstep).  HTTP *error responses* are never
retried: the server spoke, the answer stands.

Retrying a mutation is only safe if it cannot double-apply, so
:meth:`add` and :meth:`retract` attach a generated UUID idempotency
``key`` (or the caller's own) — the server records the key's result in
the tenant WAL, and a retry of an already-applied mutation replays the
recorded result instead of mutating again, even across a server crash
and restart.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from typing import Any, Callable, Optional

from repro.serve.protocol import ServeError

DEFAULT_TIMEOUT = 30.0
DEFAULT_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_MAX = 2.0

_RETRYABLE = (http.client.HTTPException, ConnectionError, OSError)


class ServeClient:
    """Blocking JSON-over-HTTP client for a running reasoning server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
        jitter: bool = True,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self.retried = 0
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _backoff(self, attempt: int) -> float:
        """Sleep length before retry ``attempt`` (0-based).

        The first retry is near-immediate — the common case is a stale
        keep-alive socket, where reconnecting at once succeeds — and
        later ones back off exponentially to ``backoff_max`` with a
        0.5-1.0 jitter factor.
        """
        delay = min(self.backoff_base * (2 ** attempt), self.backoff_max)
        if self.jitter:
            delay *= 0.5 + 0.5 * self._rng.random()
        return delay

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """One round trip; raises :class:`ServeError` on error payloads.

        Connection-level failures are retried ``self.retries`` times
        with exponential backoff; the last failure propagates.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.retries + 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except _RETRYABLE:
                self.close()
                if attempt >= self.retries:
                    raise
                self.retried += 1
                delay = self._backoff(attempt)
                if delay > 0:
                    self._sleep(delay)
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            raise ServeError(
                502, f"server sent non-JSON body ({response.status})"
            )
        if response.status >= 400:
            message = (
                decoded.get("error", raw.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else str(decoded)
            )
            raise ServeError(response.status, message)
        if response.headers.get("Connection", "").lower() == "close":
            self.close()
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    # -- server-level routes -----------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/stats")

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (graceful, like SIGTERM)."""
        return self.request("POST", "/shutdown")

    # -- tenant lifecycle ----------------------------------------------------

    def tenants(self) -> list[str]:
        return self.request("GET", "/tenants")["tenants"]

    def create_tenant(
        self,
        name: str,
        bundle: dict[str, Any],
        options: Optional[dict[str, int]] = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"name": name, "bundle": bundle}
        if options is not None:
            payload["options"] = options
        return self.request("POST", "/tenants", payload)

    def tenant_stats(self, name: str) -> dict[str, Any]:
        return self.request("GET", f"/tenants/{name}/stats")

    def drop_tenant(self, name: str) -> dict[str, Any]:
        return self.request("DELETE", f"/tenants/{name}")

    # -- tenant operations ---------------------------------------------------

    def implies(
        self,
        tenant: str,
        target: str,
        semantics: str = "unrestricted",
        deadline_ms: Optional[float] = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"target": target, "semantics": semantics}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.request(
            "POST", f"/tenants/{tenant}/implies", payload
        )

    def implies_all(
        self,
        tenant: str,
        targets: list[str],
        semantics: str = "unrestricted",
        deadline_ms: Optional[float] = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"targets": targets, "semantics": semantics}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.request(
            "POST", f"/tenants/{tenant}/implies_all", payload
        )

    def add(
        self,
        tenant: str,
        dependencies: list[str],
        key: Optional[str] = None,
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/add",
            {
                "dependencies": dependencies,
                "key": key if key is not None else str(uuid.uuid4()),
            },
        )

    def retract(
        self,
        tenant: str,
        dependencies: list[str],
        key: Optional[str] = None,
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/retract",
            {
                "dependencies": dependencies,
                "key": key if key is not None else str(uuid.uuid4()),
            },
        )

    def whatif(
        self,
        tenant: str,
        targets: list[str],
        add: Optional[list[str]] = None,
        retract: Optional[list[str]] = None,
        semantics: str = "unrestricted",
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/whatif",
            {
                "targets": targets,
                "add": add or [],
                "retract": retract or [],
                "semantics": semantics,
            },
        )

    def check(self, tenant: str) -> dict[str, Any]:
        return self.request("POST", f"/tenants/{tenant}/check", {})
