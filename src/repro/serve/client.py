"""A tiny blocking client for :mod:`repro.serve` — scripting and tests.

Built on :mod:`http.client` so it needs nothing outside the standard
library and works from synchronous code (shell scripts via ``repro
call``, pytest, examples).  One :class:`ServeClient` holds one
keep-alive connection; methods mirror the server's routes and return
the decoded JSON payload.  Non-2xx responses raise
:class:`~repro.serve.protocol.ServeError` carrying the server's status
and message, so callers see the same exception type the server raised.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Optional

from repro.serve.protocol import ServeError

DEFAULT_TIMEOUT = 30.0


class ServeClient:
    """Blocking JSON-over-HTTP client for a running reasoning server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """One round trip; raises :class:`ServeError` on error payloads.

        Retries once on a stale keep-alive connection (the server may
        have closed it between calls), never on fresh ones.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            raise ServeError(
                502, f"server sent non-JSON body ({response.status})"
            )
        if response.status >= 400:
            message = (
                decoded.get("error", raw.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else str(decoded)
            )
            raise ServeError(response.status, message)
        if response.headers.get("Connection", "").lower() == "close":
            self.close()
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    # -- server-level routes -----------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/stats")

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit (graceful, like SIGTERM)."""
        return self.request("POST", "/shutdown")

    # -- tenant lifecycle ----------------------------------------------------

    def tenants(self) -> list[str]:
        return self.request("GET", "/tenants")["tenants"]

    def create_tenant(
        self, name: str, bundle: dict[str, Any]
    ) -> dict[str, Any]:
        return self.request(
            "POST", "/tenants", {"name": name, "bundle": bundle}
        )

    def tenant_stats(self, name: str) -> dict[str, Any]:
        return self.request("GET", f"/tenants/{name}/stats")

    def drop_tenant(self, name: str) -> dict[str, Any]:
        return self.request("DELETE", f"/tenants/{name}")

    # -- tenant operations ---------------------------------------------------

    def implies(
        self,
        tenant: str,
        target: str,
        semantics: str = "unrestricted",
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/implies",
            {"target": target, "semantics": semantics},
        )

    def implies_all(
        self,
        tenant: str,
        targets: list[str],
        semantics: str = "unrestricted",
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/implies_all",
            {"targets": targets, "semantics": semantics},
        )

    def add(self, tenant: str, dependencies: list[str]) -> dict[str, Any]:
        return self.request(
            "POST", f"/tenants/{tenant}/add", {"dependencies": dependencies}
        )

    def retract(self, tenant: str, dependencies: list[str]) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/retract",
            {"dependencies": dependencies},
        )

    def whatif(
        self,
        tenant: str,
        targets: list[str],
        add: Optional[list[str]] = None,
        retract: Optional[list[str]] = None,
        semantics: str = "unrestricted",
    ) -> dict[str, Any]:
        return self.request(
            "POST",
            f"/tenants/{tenant}/whatif",
            {
                "targets": targets,
                "add": add or [],
                "retract": retract or [],
                "semantics": semantics,
            },
        )

    def check(self, tenant: str) -> dict[str, Any]:
        return self.request("POST", f"/tenants/{tenant}/check", {})
