"""Named fault points for chaos-testing the serving stack.

Crash-safety claims are worthless untested, and the interesting
failures happen *between* two steps the happy path treats as atomic —
after the WAL append but before the response, say.  A
:class:`FaultInjector` places named trip-wires at exactly those seams:

* ``crash-before-wal-append`` — the process dies (``os._exit``, no
  cleanup, the ``kill -9`` equivalent) after a mutation was validated
  and applied in memory but before its WAL record exists.  The
  mutation must be *lost* on restart; a keyed client retry re-applies
  it.
* ``crash-after-wal-append`` — the process dies after the record is
  fsync'd but before the client sees a response.  The mutation must
  *survive* restart; a keyed client retry must dedup, not double-apply.
* ``drop-connection`` — the server writes a few response bytes, then
  slams the socket shut mid-response (what a dying load balancer looks
  like to the client).
* ``latency`` — every dispatch sleeps ``latency_ms`` first, making
  deadline expiry reproducible without a pathological premise set.
  The ``latency:hold`` variant *blocks the serving loop* for the
  delay instead of yielding, emulating a request whose handler
  compute occupies the node — the per-request service time that
  makes one node a throughput ceiling.  The replication benchmark
  uses it to measure read scale-out machine-independently.
* ``partition-replication`` — the node drops off the replication
  network entirely: a primary stops forwarding records, and every
  ``/replication/*`` request it receives answers 503.  Followers see
  missed heartbeats and (if configured) promote — this is the fault
  that drives the failover tests without killing the process.
* ``replication-lag`` — data-plane-only partition: record forwarding
  and WAL/snapshot pulls fail but heartbeats still flow, so a
  follower *knows* how far behind it is.  Drives deterministic
  ``max_lag`` bounded-staleness tests.

Faults are armed from the environment (``REPRO_FAULTS`` — comma list
of point names, each optionally suffixed ``:once`` — plus
``REPRO_FAULT_LATENCY_MS``) or the ``repro serve --faults`` flag, so a
chaos test arms a subprocess without code changes.  A production
deployment simply never sets them; an unarmed injector's checks are
dictionary misses.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

CRASH_BEFORE_WAL_APPEND = "crash-before-wal-append"
CRASH_AFTER_WAL_APPEND = "crash-after-wal-append"
DROP_CONNECTION = "drop-connection"
LATENCY = "latency"
PARTITION_REPLICATION = "partition-replication"
REPLICATION_LAG = "replication-lag"

FAULT_POINTS = (
    CRASH_BEFORE_WAL_APPEND,
    CRASH_AFTER_WAL_APPEND,
    DROP_CONNECTION,
    LATENCY,
    PARTITION_REPLICATION,
    REPLICATION_LAG,
)

FAULTS_ENV = "REPRO_FAULTS"
LATENCY_ENV = "REPRO_FAULT_LATENCY_MS"

_ALWAYS = -1
CRASH_EXIT_CODE = 137  # what 128+SIGKILL reads as: died without cleanup


class FaultInjector:
    """Armed fault points, consulted by the server and the WAL.

    ``spec`` is a comma-separated list of fault-point names; a name
    suffixed ``:once`` disarms itself after its first firing (so a
    restarted process — same environment — does not crash again at the
    same point, which is exactly what the recovery chaos tests need).
    """

    def __init__(self, spec: str = "", latency_ms: float = 0.0):
        self._armed: dict[str, int] = {}
        self.latency_ms = latency_ms
        self.latency_holds = False
        self.fired: dict[str, int] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            name, _, modifier = item.partition(":")
            if name not in FAULT_POINTS:
                raise ValueError(
                    f"unknown fault point {name!r}; expected one of "
                    f"{', '.join(FAULT_POINTS)}"
                )
            if modifier == "once":
                self._armed[name] = 1
            elif modifier == "hold":
                if name != LATENCY:
                    raise ValueError(
                        f"fault modifier ':hold' only applies to "
                        f"{LATENCY!r}, got {name!r}"
                    )
                self._armed[name] = _ALWAYS
                self.latency_holds = True
            elif modifier == "":
                self._armed[name] = _ALWAYS
            else:
                raise ValueError(
                    f"unknown fault modifier {modifier!r} on {name!r}; "
                    f"only ':once' and ':hold' are supported"
                )

    @classmethod
    def from_env(cls, environ=os.environ) -> "FaultInjector":
        spec = environ.get(FAULTS_ENV, "")
        latency = float(environ.get(LATENCY_ENV, "0") or "0")
        return cls(spec, latency_ms=latency)

    def __bool__(self) -> bool:
        return bool(self._armed)

    def trip(self, name: str) -> bool:
        """Whether ``name`` fires now; consumes a ``:once`` arming."""
        remaining = self._armed.get(name)
        if remaining is None:
            return False
        if remaining != _ALWAYS:
            if remaining <= 0:
                return False
            self._armed[name] = remaining - 1
        self.fired[name] = self.fired.get(name, 0) + 1
        return True

    def crash_point(self, name: str) -> None:
        """Die here — no flushes, no atexit — when ``name`` is armed."""
        if self.trip(name):
            sys.stderr.write(f"fault injected: {name} (os._exit)\n")
            sys.stderr.flush()
            os._exit(CRASH_EXIT_CODE)

    def latency_seconds(self) -> float:
        """Injected dispatch delay, or 0.0 when the point is unarmed."""
        if self.latency_ms > 0 and self.trip(LATENCY):
            return self.latency_ms / 1000.0
        return 0.0

    def stats(self) -> dict[str, object]:
        return {
            "armed": sorted(self._armed),
            "fired": dict(self.fired),
            "latency_ms": self.latency_ms,
            "latency_holds": self.latency_holds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector(armed={sorted(self._armed)})"


NO_FAULTS = FaultInjector()
"""The shared unarmed injector — every check is a dict miss."""
