"""Per-tenant durability: a write-ahead log plus periodic snapshots.

The serving layer's tenants are long-lived in-memory
:class:`~repro.engine.session.ReasoningSession` objects; this module
makes their premise *mutations* survive a crash.  The design is the
textbook WAL/checkpoint pair, scaled to the workload (premise sets are
small, mutations are rare relative to reads):

* every applied ``add``/``retract`` appends one JSONL record to the
  tenant's ``wal.jsonl`` — the mutation itself in :mod:`repro.io`'s
  patch format, a monotonically increasing ``seq``, the optional client
  idempotency ``key``, and the result payload the client was (or will
  be) told — and the line is flushed and fsync'd before the server
  responds, so an acknowledged mutation is on disk;
* every ``snapshot_every`` appends (and at tenant creation) the full
  premise bundle is checkpointed to ``snapshot.json`` — written to a
  temp file, fsync'd, and atomically renamed — together with the
  session's ``premise_hash``, the WAL ``seq`` the snapshot covers, and
  the recent idempotency-key results; the WAL is then truncated.

Recovery (:meth:`StateDir.recover` + the registry's replay) rebuilds
each tenant by loading the snapshot bundle and re-applying the WAL
tail — only records with ``seq`` greater than the snapshot's, so a
crash *between* the snapshot rename and the WAL truncation replays
nothing twice.  The recovered session's ``premise_hash`` is compared
against the snapshot's as a corruption check.

Idempotency keys make retried mutations exactly-once across crashes: a
key seen in the snapshot map or the replayed tail short-circuits to
the recorded result instead of re-applying the patch.

Replication and the ``term`` fencing rule
-----------------------------------------

The same log doubles as the replication stream (:mod:`repro.serve.
replication`): a primary ships snapshot bootstraps plus WAL records by
``seq`` to its followers, and :meth:`TenantStore.read_from` is the
tailing API a catch-up pull reads.  Every record is stamped with the
node's **term** — a monotonically increasing epoch number, bumped by
exactly one each time a follower promotes itself to primary — and a
snapshot records the highest term it covers.  The fencing rule:

* a node **refuses any replication stream whose envelope term is lower
  than the highest term it has ever observed** (HTTP 409, the stream
  is *fenced*);
* a primary whose forwarded stream is fenced by a follower has been
  superseded — it **steps down** to a read-only role on the spot and
  names the fencing node as the leader it redirects mutations to.

Terms are persisted in the state dir's ``meta.json`` (atomic
tmp+fsync+rename, like snapshots), so a rebooted node resumes at its
old term and a *resurrected stale primary* — restarted from a state
dir recorded under term *t* after some follower promoted to *t+1* —
is fenced on its first forward instead of silently forking history.

The on-disk layout under ``--state-dir``::

    STATE_DIR/
      meta.json           # {"term": highest term this node served at}
      tenants/
        <url-quoted tenant name>/
          snapshot.json   # bundle + premise_hash + seq + term + applied keys
          wal.jsonl       # patch records with seq > snapshot seq
"""

from __future__ import annotations

import json
import os
import shutil
import time
import urllib.parse
from typing import Any, Callable, Iterator, Optional

from repro.obs.tracing import Trace
from repro.serve.faults import CRASH_AFTER_WAL_APPEND, CRASH_BEFORE_WAL_APPEND
from repro.serve.faults import NO_FAULTS, FaultInjector
from repro.serve.protocol import ServeError

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.jsonl"
META_FILE = "meta.json"
DEFAULT_SNAPSHOT_EVERY = 64
MAX_APPLIED_KEYS = 1024


def _fsync_dir(path: str) -> None:
    """Make a rename/creation in ``path`` durable (POSIX dirs are files)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WalCorruption(ServeError):
    """A snapshot or WAL file failed to load during recovery."""

    def __init__(self, message: str):
        super().__init__(500, message)


class TenantStore:
    """The durable state of one tenant: a snapshot and a WAL tail.

    ``applied`` maps recent idempotency keys to the result payload
    their mutation produced; it is rebuilt on open (snapshot map plus
    replayed tail) and trimmed to the most recent
    :data:`MAX_APPLIED_KEYS` entries at snapshot time.
    """

    def __init__(self, path: str, faults: FaultInjector = NO_FAULTS):
        self.path = path
        self.faults = faults
        self.seq = 0
        self.term = 0
        self.base_seq = 0
        self.appends = 0
        self.snapshots = 0
        self.appends_since_snapshot = 0
        self.applied: dict[str, dict[str, Any]] = {}
        self._wal = None
        # Set by the server's metrics wiring: called with each record
        # write's fsync wall time (seconds).  Replicated appends report
        # through the same hook, so follower fsyncs are observed too.
        self.on_fsync: Optional[Callable[[float], None]] = None

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        name: str,
        bundle: dict[str, Any],
        premise_hash: str,
        options: Optional[dict[str, Any]] = None,
        faults: FaultInjector = NO_FAULTS,
        seq: int = 0,
        term: int = 0,
        applied: Optional[dict[str, dict[str, Any]]] = None,
    ) -> "TenantStore":
        """Initialize a fresh tenant directory (snapshot at ``seq``).

        A primary starts at ``seq=0``; a follower bootstrapping from a
        replicated snapshot passes the primary's ``seq``/``term``/
        ``applied`` map so its own log resumes exactly where the
        shipped snapshot left off.
        """
        os.makedirs(path, exist_ok=True)
        store = cls(path, faults)
        store.seq = seq
        store.term = term
        store.base_seq = seq
        if applied:
            store.applied.update(applied)
        store._write_snapshot(name, bundle, premise_hash, options or {})
        store._open_wal(truncate=True)
        return store

    @classmethod
    def open(
        cls, path: str, faults: FaultInjector = NO_FAULTS
    ) -> tuple["TenantStore", dict[str, Any], list[dict[str, Any]]]:
        """Load a tenant directory: ``(store, snapshot, wal tail)``.

        The tail contains only records newer than the snapshot, in seq
        order; ``store.seq`` resumes from the last durable record so
        appended sequence numbers never repeat.
        """
        store = cls(path, faults)
        snapshot_path = os.path.join(path, SNAPSHOT_FILE)
        try:
            with open(snapshot_path, "r", encoding="utf-8") as fp:
                snapshot = json.load(fp)
        except FileNotFoundError:
            raise WalCorruption(f"tenant state at {path} has no snapshot")
        except (OSError, json.JSONDecodeError) as exc:
            raise WalCorruption(f"unreadable snapshot at {snapshot_path}: {exc}")
        if not isinstance(snapshot, dict) or "seq" not in snapshot:
            raise WalCorruption(f"malformed snapshot at {snapshot_path}")
        base_seq = int(snapshot["seq"])
        store.seq = base_seq
        store.base_seq = base_seq
        store.term = int(snapshot.get("term", 0))
        applied = snapshot.get("applied_keys", {})
        if isinstance(applied, dict):
            store.applied.update(applied)
        tail = [
            record for record in store._read_wal()
            if record["seq"] > base_seq
        ]
        if tail:
            store.seq = tail[-1]["seq"]
            store.term = max(
                store.term,
                max(int(record.get("term", 0)) for record in tail),
            )
        for record in tail:
            key = record.get("key")
            if key:
                store.applied[key] = record.get("result") or {}
        store._open_wal(truncate=False)
        return store, snapshot, tail

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def _open_wal(self, truncate: bool) -> None:
        wal_path = os.path.join(self.path, WAL_FILE)
        self._wal = open(wal_path, "w" if truncate else "a", encoding="utf-8")
        if truncate:
            self._wal.flush()
            os.fsync(self._wal.fileno())
            _fsync_dir(self.path)

    def _read_wal(self) -> Iterator[dict[str, Any]]:
        """Yield valid WAL records in file order, streaming line by line.

        A torn final record — the crash arrived mid-append, before the
        fsync that would have acknowledged it — is discarded, matching
        the contract that an unacknowledged mutation may be lost; any
        blank lines trailing it are padding, not records, so they do
        not promote the tear to corruption.  A torn or unparsable line
        followed by *more records* is real corruption and raises.  The
        file is never slurped whole: a multi-thousand-record tail
        recovers in constant memory.
        """
        wal_path = os.path.join(self.path, WAL_FILE)
        try:
            fp = open(wal_path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with fp:
            torn: Optional[tuple[int, str]] = None
            for number, line in enumerate(fp, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                if torn is not None:
                    raise WalCorruption(
                        f"corrupt WAL record at {wal_path}:{torn[0]}: "
                        f"{torn[1]}"
                    )
                try:
                    record = json.loads(stripped)
                    if not isinstance(record, dict) or "seq" not in record:
                        raise ValueError("record is not an object with 'seq'")
                except ValueError as exc:
                    torn = (number, str(exc))
                    continue
                yield record

    def read_from(self, after: int) -> Optional[list[dict[str, Any]]]:
        """WAL records with ``seq > after`` — the replication tailing API.

        Returns ``None`` when ``after`` predates the current snapshot
        (the requested records were truncated away by a checkpoint), in
        which case the follower must re-bootstrap from the snapshot
        instead of tailing.
        """
        if after < self.base_seq:
            return None
        return [
            record for record in self._read_wal() if record["seq"] > after
        ]

    # -- the write path ----------------------------------------------------

    def append(
        self,
        patch: dict[str, Any],
        key: Optional[str] = None,
        result: Optional[dict[str, Any]] = None,
        trace: Optional[Trace] = None,
    ) -> dict[str, Any]:
        """Durably log one applied mutation; returns the full record.

        The record is flushed and fsync'd before this returns — the
        WAL's acknowledgment contract — with the two crash fault points
        on either side of the append for the chaos tests.  The caller's
        ``result`` dict is *not* mutated: the ``seq`` is stamped into a
        copy, so the durability layer never aliases the server-side
        response payload.  The returned record (seq, term, patch, key,
        recorded result) is exactly what replication forwards.

        A ``trace`` stamps its id into the record — the durable half of
        the request↔mutation link, and what rides the replication
        stream to the follower's log — and receives a ``wal-fsync``
        span covering this append's write+fsync.
        """
        self.faults.crash_point(CRASH_BEFORE_WAL_APPEND)
        seq = self.seq + 1
        record: dict[str, Any] = {"seq": seq, "term": self.term,
                                  "patch": patch}
        if key:
            record["key"] = key
        if trace is not None:
            record["trace"] = trace.trace_id
        if result is not None:
            # Stamp the seq into a copy before serializing so a replay
            # after a reboot returns the same acknowledgment as the
            # original, without mutating the caller's payload in place.
            record["result"] = {**result, "seq": seq}
        fsync_seconds = self._write_record(record)
        if trace is not None:
            trace.add_span("wal-fsync", fsync_seconds, seq=seq)
        if key:
            self.applied[key] = record.get("result") or {}
        self.faults.crash_point(CRASH_AFTER_WAL_APPEND)
        return record

    def append_replicated(self, record: dict[str, Any]) -> None:
        """Durably log a record received from the replication stream.

        The record is written verbatim — same ``seq``, same ``term``,
        same recorded result — so a promoted follower's log is
        byte-for-byte continuable from the primary's history.  Records
        must arrive in order; a gap is the caller's (the follower
        replicator's) job to detect and resolve by resync *before*
        appending.
        """
        seq = int(record["seq"])
        if seq <= self.seq:
            raise WalCorruption(
                f"replicated record seq {seq} does not advance the log "
                f"(at seq {self.seq})"
            )
        self._write_record(dict(record))
        key = record.get("key")
        if key:
            self.applied[key] = record.get("result") or {}

    def _write_record(self, record: dict[str, Any]) -> float:
        """Write + flush + fsync one record; returns the wall time."""
        start = time.perf_counter()
        self._wal.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._wal.flush()
        os.fsync(self._wal.fileno())
        elapsed = time.perf_counter() - start
        self.seq = int(record["seq"])
        self.term = max(self.term, int(record.get("term", 0)))
        self.appends += 1
        self.appends_since_snapshot += 1
        if self.on_fsync is not None:
            self.on_fsync(elapsed)
        return elapsed

    # -- checkpoints -------------------------------------------------------

    def write_snapshot(
        self, name: str, bundle: dict[str, Any], premise_hash: str,
        options: Optional[dict[str, Any]] = None,
    ) -> None:
        """Checkpoint the full tenant state and truncate the WAL.

        The snapshot covers everything up to the current ``seq``; the
        rename is atomic, and a crash before the truncation is handled
        by recovery's ``seq`` filter.
        """
        if len(self.applied) > MAX_APPLIED_KEYS:
            keep = list(self.applied.items())[-MAX_APPLIED_KEYS:]
            self.applied = dict(keep)
        self._write_snapshot(name, bundle, premise_hash, options or {})
        self._open_wal(truncate=True)
        self.base_seq = self.seq
        self.snapshots += 1
        self.appends_since_snapshot = 0

    def _write_snapshot(
        self, name: str, bundle: dict[str, Any], premise_hash: str,
        options: dict[str, Any],
    ) -> None:
        payload = {
            "name": name,
            "seq": self.seq,
            "term": self.term,
            "premise_hash": premise_hash,
            "bundle": bundle,
            "options": options,
            "applied_keys": dict(self.applied),
        }
        snapshot_path = os.path.join(self.path, SNAPSHOT_FILE)
        tmp_path = snapshot_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, separators=(",", ":"))
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp_path, snapshot_path)
        _fsync_dir(self.path)

    def stats(self) -> dict[str, int]:
        return {
            "seq": self.seq,
            "term": self.term,
            "appends": self.appends,
            "snapshots": self.snapshots,
            "appends_since_snapshot": self.appends_since_snapshot,
            "applied_keys": len(self.applied),
        }


class StateDir:
    """The server's ``--state-dir``: one :class:`TenantStore` per tenant."""

    def __init__(
        self,
        root: str,
        faults: FaultInjector = NO_FAULTS,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    ):
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.root = root
        self.faults = faults
        self.snapshot_every = snapshot_every
        os.makedirs(self.tenants_root, exist_ok=True)

    @property
    def tenants_root(self) -> str:
        return os.path.join(self.root, "tenants")

    @property
    def meta_path(self) -> str:
        return os.path.join(self.root, META_FILE)

    def load_term(self) -> int:
        """The highest term this node has served at (0 if never saved)."""
        try:
            with open(self.meta_path, "r", encoding="utf-8") as fp:
                meta = json.load(fp)
        except FileNotFoundError:
            return 0
        except (OSError, json.JSONDecodeError) as exc:
            raise WalCorruption(
                f"unreadable state-dir meta at {self.meta_path}: {exc}"
            )
        return int(meta.get("term", 0))

    def save_term(self, term: int) -> None:
        """Durably record the node's term (atomic, like snapshots).

        Saved *before* a promotion or adoption takes effect, so a
        rebooted node can never come back believing an older term than
        one it already fenced or served under.
        """
        tmp_path = self.meta_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fp:
            json.dump({"term": int(term)}, fp)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp_path, self.meta_path)
        _fsync_dir(self.root)

    def _tenant_path(self, name: str) -> str:
        return os.path.join(
            self.tenants_root, urllib.parse.quote(name, safe="")
        )

    def create_tenant(
        self,
        name: str,
        bundle: dict[str, Any],
        premise_hash: str,
        options: Optional[dict[str, Any]] = None,
        seq: int = 0,
        term: int = 0,
        applied: Optional[dict[str, dict[str, Any]]] = None,
    ) -> TenantStore:
        return TenantStore.create(
            self._tenant_path(name), name, bundle, premise_hash,
            options=options, faults=self.faults,
            seq=seq, term=term, applied=applied,
        )

    def drop_tenant(self, name: str) -> None:
        path = self._tenant_path(name)
        if os.path.isdir(path):
            shutil.rmtree(path)
            _fsync_dir(self.tenants_root)

    def recover(
        self,
    ) -> list[tuple[str, TenantStore, dict[str, Any], list[dict[str, Any]]]]:
        """Open every persisted tenant: ``(name, store, snapshot, tail)``.

        Deterministic (sorted) order, so recovery is reproducible; the
        caller replays each tail into a freshly built session.
        """
        recovered = []
        for entry in sorted(os.listdir(self.tenants_root)):
            path = os.path.join(self.tenants_root, entry)
            if not os.path.isdir(path):
                continue
            store, snapshot, tail = TenantStore.open(path, self.faults)
            name = snapshot.get("name") or urllib.parse.unquote(entry)
            recovered.append((name, store, snapshot, tail))
        return recovered

    def stats(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "snapshot_every": self.snapshot_every,
            "tenants": len(os.listdir(self.tenants_root)),
        }
