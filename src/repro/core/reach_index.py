"""Amortized IND implication: an SCC-condensed bitset closure index.

The Corollary 3.2 procedure answers ``Sigma |= R[X] c S[Y]`` by
reachability in the implicit expression graph, and PR 3's kernels made
one such BFS fast.  But the serving cost model is different: millions
of queries against one slowly-mutating premise set, where walking the
graph per question — even with memoized successor edges — is the wrong
asymptotic.  :class:`ReachIndex` applies the classic amortization from
datalog/IVM engines:

1. **Materialize** the expression subgraph reachable from every source
   expression ever queried.  Each node is expanded exactly once (its
   successor edges, in premise-bucket order, are recorded), so the
   materialized graph is *successor-closed*: reachability inside it
   equals reachability in the full implicit graph for any materialized
   start.
2. **Condense** the materialized graph with Tarjan's algorithm
   (iterative, DFS-numbered).  Tarjan emits strongly connected
   components in reverse topological order, so one linear pass
   computes, per component, the *bitset of reachable components* as a
   Python int: ``label[c] = bit(c) | union(label[successor sccs])``.
3. **Answer** ``decide_ind`` for a compiled source as a bitset
   membership test — two dict lookups and one shift — plus on-demand
   witness-chain reconstruction from recorded parent edges.  Chains
   are identical to the kernel BFS's (same edge enumeration order,
   same BFS discipline; pinned by the differential property tests).

Premise mutations follow an **epoch/dirty policy** instead of PR 2's
per-exploration footprint scan:

* adding or retracting an IND whose *left* relation has never been
  materialized is free — no materialized node is an expression over
  that relation, so no recorded edge appears or disappears (for adds
  this is the cheap monotone extension: future expansions consult the
  live :class:`~repro.core.ind_kernel.KernelIndex` and see the new
  premise naturally);
* any other IND mutation marks the index dirty; the next query bumps
  the epoch and recompiles lazily, so a burst of mutations costs one
  recompile, not one per mutation.

The index also records the kernel index's mutation counter at compile
time and self-invalidates when it drifts, so a
:class:`~repro.core.ind_kernel.KernelIndex` mutated behind the index's
back can never produce a stale verdict.

:class:`~repro.engine.index.PremiseIndex` owns one ReachIndex next to
its FD closure kernels; ``fork``/``whatif`` share the compiled arrays
copy-on-write (:meth:`ReachIndex.copy` copies container skeletons,
never recompiles).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable, Optional

from repro.exceptions import DeadlineExceeded, SearchBudgetExceeded
from repro.deps.ind import IND
from repro.core.ind_decision import (
    ChainLink,
    DecisionResult,
    Expression,
    expression_of_lhs,
    expression_of_rhs,
)
from repro.core.ind_kernel import INDKernel, KernelIndex, intern_expression

Edge = tuple[int, INDKernel, tuple[int, ...]]
"""One recorded successor edge: (target node id, kernel, lhs positions)."""


class _SourceView:
    """Per-source witness support: the BFS parent map from one source.

    Built lazily, once per source per epoch, by a BFS over the
    materialized adjacency in the exact order the kernel BFS would
    expand — so extracted chains match
    :func:`~repro.core.ind_decision.decide_ind` edge for edge.
    ``count``/``frontier_peak`` reproduce the exhaustive exploration's
    ``explored``/``frontier_peak`` statistics.
    """

    __slots__ = ("parents", "count", "frontier_peak")

    def __init__(self, parents: dict[int, Edge], count: int, frontier_peak: int):
        self.parents = parents
        self.count = count
        self.frontier_peak = frontier_peak


class ReachIndex:
    """Compiled reachability over the interned expression graph."""

    def __init__(self, kernels: KernelIndex):
        self.kernels = kernels
        self.epoch = 0
        self.dirty = False
        self.compiles = 0
        self.compile_seconds = 0.0
        self.extensions = 0
        self.invalidations = 0
        self.queries = 0
        self._synced_mutations = kernels.mutations
        self._clear()

    def _clear(self) -> None:
        self._ids: dict[Expression, int] = {}
        self._exprs: list[Expression] = []
        self._edges: list[tuple[Edge, ...]] = []
        self._footprint: set[str] = set()
        self._scc_of: list[int] = []
        self._labels: list[int] = []
        self._scc_sizes: list[int] = []
        self._counts: dict[int, int] = {}
        self._views: dict[int, _SourceView] = {}

    # -- the mutation protocol --------------------------------------------

    def note_mutation(
        self,
        added_lhs: Iterable[str] = (),
        removed_lhs: Iterable[str] = (),
    ) -> None:
        """Record one premise mutation (left relations of mutated INDs).

        A mutated IND can only add or remove a materialized edge if some
        materialized expression is over its left relation — expressions
        over other relations never consult its kernel.  So mutations
        outside the footprint are free (monotone extension for adds);
        anything else marks the index dirty for a lazy epoch recompile.
        """
        self._synced_mutations = self.kernels.mutations
        footprint = self._footprint
        touched = any(rel in footprint for rel in added_lhs) or any(
            rel in footprint for rel in removed_lhs
        )
        if touched:
            if not self.dirty:
                self.dirty = True
                self.invalidations += 1
        elif added_lhs or removed_lhs:
            self.extensions += 1

    def _reset(self) -> None:
        """Drop the compiled state; the next query recompiles on demand."""
        self._clear()
        self.epoch += 1
        self.dirty = False
        self._synced_mutations = self.kernels.mutations

    def _stale(self) -> bool:
        return self.dirty or self._synced_mutations != self.kernels.mutations

    # -- compilation -------------------------------------------------------

    def _add_node(self, expression: Expression) -> int:
        expression = intern_expression(expression)
        node = len(self._exprs)
        self._ids[expression] = node
        self._exprs.append(expression)
        self._edges.append(())
        self._footprint.add(expression[0])
        return node

    def ensure_source(
        self, start: Expression, max_nodes: int = 2_000_000, tick=None
    ) -> int:
        """Materialize (if needed) everything reachable from ``start``.

        Newly discovered expressions are expanded exhaustively — the
        materialized graph stays successor-closed — and the new
        subgraph is condensed *incrementally* at the end: because no
        old node can reach a new one, the existing components, labels,
        and source views are all still exact and are left untouched.
        Reaching an already materialized node stops the expansion
        there: its edges (and everything beyond them) are already
        recorded.

        Raises :class:`~repro.exceptions.SearchBudgetExceeded` when
        *this call* would materialize more than ``max_nodes`` new
        expressions (the per-question budget contract of
        :func:`~repro.core.ind_decision.decide_ind`).  ``tick`` is an
        optional cooperative check polled every 256 expansions; a
        budget overrun or an expired deadline both roll the partial
        expansion back — previously compiled components survive, and
        no half-expanded node can ever serve an answer.
        """
        if self._stale():
            self._reset()
        node = self._ids.get(start)
        if node is not None:
            return node
        first_new = len(self._exprs)
        compile_start = time.perf_counter()
        try:
            return self._materialize(start, max_nodes, tick)
        except (SearchBudgetExceeded, DeadlineExceeded):
            self._rollback(first_new)
            raise
        finally:
            # Only cold starts reach this point (hot queries returned
            # above), so the timer never runs on the index-hit path.
            self.compile_seconds += time.perf_counter() - compile_start

    def _rollback(self, first_new: int) -> None:
        """Discard nodes appended after ``first_new`` (failed expansion).

        Labels were not recomputed yet (``_condense`` runs only after a
        complete expansion) and old nodes' edge tuples are immutable,
        so truncating the node arrays restores exactly the previous
        compiled state.
        """
        for expression in self._exprs[first_new:]:
            del self._ids[expression]
        del self._exprs[first_new:]
        del self._edges[first_new:]
        self._footprint = {expression[0] for expression in self._exprs}

    def _materialize(self, start: Expression, max_nodes: int, tick=None) -> int:
        first_new = len(self._exprs)
        source = self._add_node(start)
        fresh: deque[int] = deque([source])
        bucket = self.kernels.bucket
        expanded = 0
        while fresh:
            node = fresh.popleft()
            expanded += 1
            if tick is not None and not expanded & 0xFF:
                tick()
            relation, attrs = self._exprs[node]
            edges: list[Edge] = []
            for kernel in bucket(relation):
                entry = kernel.successor_of(attrs)
                if entry is None:
                    continue
                successor, positions = entry
                succ_id = self._ids.get(successor)
                if succ_id is None:
                    if len(self._exprs) - first_new >= max_nodes:
                        raise SearchBudgetExceeded(
                            f"reach index exceeded {max_nodes} expressions",
                            explored=len(self._exprs) - first_new,
                        )
                    succ_id = self._add_node(successor)
                    fresh.append(succ_id)
                edges.append((succ_id, kernel, positions))
            self._edges[node] = tuple(edges)
        self._condense(first_new)
        return source

    def _condense(self, first_new: int) -> None:
        """Incremental Tarjan condensation of the nodes ``>= first_new``.

        The materialized graph is successor-closed, so an *old* node's
        edges were all recorded when it was expanded — none of them can
        point at a node added later.  New nodes therefore can't join an
        existing component, and the old components, their labels, the
        per-component reach counts, and the per-source parent views are
        all still exact: only the new subgraph needs condensing, with
        edges into old nodes treated as cross-edges to already-final
        components.

        Tarjan runs iteratively (explicit work stack — materialized
        chains are longer than the recursion limit allows), emitting
        components in reverse topological order, which is exactly the
        order in which ``label[c] |= label[successor]`` is well-defined.
        """
        n = len(self._exprs)
        edges = self._edges
        scc_of = self._scc_of
        scc_of.extend([-1] * (n - first_new))
        labels = self._labels
        sizes = self._scc_sizes
        # Local DFS state for the new nodes only, indexed by node-first_new.
        order = [-1] * (n - first_new)
        low = [0] * (n - first_new)
        on_stack = [False] * (n - first_new)
        stack: list[int] = []
        counter = 0
        for root in range(first_new, n):
            if order[root - first_new] != -1:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                local = node - first_new
                if edge_index == 0:
                    order[local] = low[local] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[local] = True
                descended = False
                node_edges = edges[node]
                for i in range(edge_index, len(node_edges)):
                    succ = node_edges[i][0]
                    if succ < first_new:
                        continue  # cross-edge into a finalized component
                    succ_local = succ - first_new
                    if order[succ_local] == -1:
                        work[-1] = (node, i + 1)
                        work.append((succ, 0))
                        descended = True
                        break
                    if on_stack[succ_local] and order[succ_local] < low[local]:
                        low[local] = order[succ_local]
                if descended:
                    continue
                work.pop()
                if work:
                    parent_local = work[-1][0] - first_new
                    if low[local] < low[parent_local]:
                        low[parent_local] = low[local]
                if low[local] == order[local]:
                    cid = len(labels)
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member - first_new] = False
                        scc_of[member] = cid
                        component.append(member)
                        if member == node:
                            break
                    # Emission order is reverse-topological within the
                    # new subgraph, and cross-edges point at old
                    # components whose labels are final — so every
                    # successor label below is already complete.
                    label = 1 << cid
                    for member in component:
                        for succ, _kernel, _positions in edges[member]:
                            succ_cid = scc_of[succ]
                            if succ_cid != cid:
                                label |= labels[succ_cid]
                    labels.append(label)
                    sizes.append(len(component))
        self.compiles += 1

    # -- queries -----------------------------------------------------------

    def is_hot(self, start: Expression) -> bool:
        """Whether a decision from ``start`` is a pure index hit (no
        materialization, no recompile)."""
        return not self._stale() and start in self._ids

    def reachable(
        self, start: Expression, goal: Expression, max_nodes: int = 2_000_000,
        tick=None,
    ) -> bool:
        """O(1) reachability after compiling ``start``'s component."""
        source = self.ensure_source(start, max_nodes, tick)
        goal_id = self._ids.get(goal)
        if goal_id is None:
            return False
        return bool(
            (self._labels[self._scc_of[source]] >> self._scc_of[goal_id]) & 1
        )

    def decide(
        self, target: IND, max_nodes: int = 2_000_000, tick=None
    ) -> DecisionResult:
        """The Corollary 3.2 decision, served from the compiled index.

        Same contract as :func:`~repro.core.ind_decision.decide_ind`;
        ``explored`` reports the size of the source's reachable set
        (what the exhaustive exploration would have visited), and
        implied targets carry the identical witness chain the kernel
        BFS would extract.  ``frontier_peak`` is 0 for negative answers
        — the index runs no frontier — and the source BFS's real peak
        on positive ones.
        """
        if self._stale():
            self._reset()
        self.queries += 1
        start = intern_expression(expression_of_lhs(target))
        goal = intern_expression(expression_of_rhs(target))
        if start == goal:
            return DecisionResult(
                implied=True, target=target, chain=[start], links=[],
                explored=1, frontier_peak=1,
            )
        source = self.ensure_source(start, max_nodes, tick)
        goal_id = self._ids.get(goal)
        if goal_id is None or not (
            (self._labels[self._scc_of[source]] >> self._scc_of[goal_id]) & 1
        ):
            return DecisionResult(
                implied=False, target=target,
                explored=self._reach_count(source), frontier_peak=0,
            )
        view = self._view(source)
        chain, links = self._chain(view, source, goal_id)
        return DecisionResult(
            implied=True, target=target, chain=chain, links=links,
            explored=view.count, frontier_peak=view.frontier_peak,
        )

    def _reach_count(self, source: int) -> int:
        """Number of expressions reachable from ``source`` (memoized per
        component: popcount-weighted sum of reachable component sizes)."""
        cid = self._scc_of[source]
        count = self._counts.get(cid)
        if count is None:
            label = self._labels[cid]
            sizes = self._scc_sizes
            count = 0
            while label:
                lowest = label & -label
                count += sizes[lowest.bit_length() - 1]
                label ^= lowest
            self._counts[cid] = count
        return count

    def _view(self, source: int) -> _SourceView:
        view = self._views.get(source)
        if view is None:
            parents: dict[int, Edge] = {}
            visited = {source}
            queue: deque[int] = deque([source])
            frontier_peak = 1
            edges = self._edges
            while queue:
                if len(queue) > frontier_peak:
                    frontier_peak = len(queue)
                node = queue.popleft()
                for edge in edges[node]:
                    succ = edge[0]
                    if succ in visited:
                        continue
                    visited.add(succ)
                    parents[succ] = (node, edge[1], edge[2])
                    queue.append(succ)
            view = _SourceView(parents, len(visited), frontier_peak)
            self._views[source] = view
        return view

    def _chain(
        self, view: _SourceView, source: int, goal: int
    ) -> tuple[list[Expression], list[ChainLink]]:
        """Walk the source's parent map back from ``goal`` — the same
        extraction :func:`~repro.core.ind_decision._extract_chain`
        performs on a live BFS, materializing one
        :class:`~repro.core.ind_decision.ChainLink` per witness edge."""
        exprs = self._exprs
        chain = [exprs[goal]]
        links: list[ChainLink] = []
        node = goal
        while node != source:
            previous, kernel, positions = view.parents[node]
            chain.append(exprs[previous])
            links.append(ChainLink(kernel.ind, positions))
            node = previous
        chain.reverse()
        links.reverse()
        return chain, links

    # -- sharing and introspection ----------------------------------------

    def copy(self, kernels: Optional[KernelIndex] = None) -> "ReachIndex":
        """A copy-on-write twin over ``kernels`` (for session forking).

        Container skeletons are copied; node tuples, edge tuples,
        labels (ints) and source views are shared — compilation only
        ever appends new nodes or replaces whole containers, so shared
        values are never mutated in place.  Nothing is recompiled.
        """
        twin = ReachIndex.__new__(ReachIndex)
        twin.kernels = kernels if kernels is not None else self.kernels
        twin.epoch = self.epoch
        twin.dirty = self.dirty
        twin.compiles = self.compiles
        twin.compile_seconds = self.compile_seconds
        twin.extensions = self.extensions
        twin.invalidations = self.invalidations
        twin.queries = self.queries
        # Inherit the compile-time counter, not the live one: if the
        # parent's kernels drifted unreported, the twin (whose cloned
        # kernels copy the drifted count) must also see the mismatch
        # and self-invalidate rather than serve the stale closure.
        twin._synced_mutations = self._synced_mutations
        twin._ids = dict(self._ids)
        twin._exprs = list(self._exprs)
        twin._edges = list(self._edges)
        twin._footprint = set(self._footprint)
        twin._scc_of = list(self._scc_of)
        twin._labels = list(self._labels)
        twin._scc_sizes = list(self._scc_sizes)
        twin._counts = dict(self._counts)
        twin._views = dict(self._views)
        return twin

    @property
    def label_bits(self) -> int:
        """Total set bits across all component labels (index density)."""
        return sum(label.bit_count() for label in self._labels)

    def stats(self) -> dict[str, int | float]:
        return {
            "nodes": len(self._exprs),
            "sccs": len(self._labels),
            "label_bits": self.label_bits,
            "epoch": self.epoch,
            "compiles": self.compiles,
            "compile_seconds": self.compile_seconds,
            "extensions": self.extensions,
            "invalidations": self.invalidations,
            "dirty": int(self._stale()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReachIndex({len(self._exprs)} nodes, {len(self._labels)} sccs, "
            f"epoch {self.epoch}{', dirty' if self._stale() else ''})"
        )
