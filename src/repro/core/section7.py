"""Section 7: no k-ary complete axiomatization for *unrestricted*
implication of FDs and INDs (and RDs).

For fixed ``k < n`` the paper builds the scheme

    ``F[A,B,C]``, ``G0[A,B,C]``, ``Gi[B,C]`` (1 <= i <= n),
    ``Hi[B,C]`` (0 <= i < n), ``Hn[B,C,D]``

and the dependency set Sigma:

    * ``alpha_0 = F[A,B] c G0[A,B]``
    * ``alpha_i = F[B] c Gi[B]``            (1 <= i <= n)
    * ``beta_i  = F[B] c Hi[B]``            (0 <= i < n)
    * ``beta_n  = F[B,C] c Hn[B,D]``
    * ``gamma_i  = Hi[B,C] c Gi[B,C]``      (0 <= i <= n)
    * ``gamma'_i = Hi[B,C] c G(i+1)[B,C]``  (0 <= i < n)
    * ``delta_0 = G0: A -> C``
    * ``eps_i   = Gi: B -> C``              (0 <= i <= n)
    * ``theta_n = Hn: C -> D``

with target ``sigma = F: A -> C``.  Lemma 7.2 derives sigma from Sigma
through a chain of equalities that threads every ``Hi``; removing any
``beta_j`` breaks the chain.  The set

    ``Gamma = phi+ u lambda+ u omega - {sigma}``

(``phi`` the per-relation FD families, ``lambda`` the INDs of Sigma,
``omega`` the trivial RDs) is then closed under k-ary implication but
not under implication, and Theorem 5.1 applies.

Every figure of the section is regenerated and machine-checked here:

* **Figure 7.1** — satisfies Sigma, violates all nontrivial RDs
  (Lemma 7.4);
* **Figure 7.2** — satisfies Sigma; its FDs are exactly ``phi+``
  (Lemma 7.5);
* **Figure 7.3** — satisfies Sigma; its INDs are exactly ``lambda+``
  (Lemma 7.6) — built by chasing seeded private tuples;
* **Figure 7.4** — satisfies ``lambda - {beta_j}`` but not ``beta_j``
  (Lemma 7.8);
* **Figure 7.5** — satisfies ``(phi - sigma)+ u (lambda - beta_j)+ u
  omega`` but violates sigma (Lemma 7.9).

The OCR of the paper's figures is partly illegible, so Figures 7.2 and
7.3 are *reconstructed* to the lemmas' exact specifications and then
verified against those specifications over the fully enumerated
dependency universe; the verification, not the tuple-level layout, is
what the lemmas require.  (Documented in DESIGN.md / EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.deps.base import Dependency
from repro.deps.enumeration import all_fds, all_inds, all_rds
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.model.builders import database
from repro.model.database import Database
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.core.fd_closure import fd_implies
from repro.core.fdind_chase import ChaseEngine, ChaseInstance, chase_implies
from repro.core.ind_prover import implies_ind


# ---------------------------------------------------------------------------
# Scheme and dependency families
# ---------------------------------------------------------------------------


def g_name(i: int) -> str:
    return f"G{i}"


def h_name(i: int) -> str:
    return f"H{i}"


def section7_schema(n: int) -> DatabaseSchema:
    """The Section 7 database scheme for parameter ``n``."""
    if n < 1:
        raise ValueError("n must be at least 1")
    schemas = [RelationSchema("F", ("A", "B", "C"))]
    schemas.append(RelationSchema(g_name(0), ("A", "B", "C")))
    schemas.extend(RelationSchema(g_name(i), ("B", "C")) for i in range(1, n + 1))
    schemas.extend(RelationSchema(h_name(i), ("B", "C")) for i in range(n))
    schemas.append(RelationSchema(h_name(n), ("B", "C", "D")))
    return DatabaseSchema(schemas)


@dataclass
class Section7Family:
    """Sigma, sigma, and the named sub-families for parameter ``n``."""

    n: int
    schema: DatabaseSchema
    alpha: list[IND]
    beta: list[IND]
    gamma: list[IND]
    gamma_prime: list[IND]
    delta_0: FD
    epsilon: list[FD]
    theta_n: FD
    sigma: FD

    @property
    def inds(self) -> list[IND]:
        """``lambda``: the INDs of Sigma."""
        return [*self.alpha, *self.beta, *self.gamma, *self.gamma_prime]

    @property
    def fds(self) -> list[FD]:
        """The FDs of Sigma."""
        return [self.delta_0, *self.epsilon, self.theta_n]

    @property
    def dependencies(self) -> list[Dependency]:
        """Sigma itself."""
        return [*self.inds, *self.fds]

    def beta_j(self, j: int) -> IND:
        """``beta_j = F[B] c Hj[B]`` for ``0 <= j < n``."""
        if not 0 <= j < self.n:
            raise ValueError(f"beta_j defined for 0 <= j < n = {self.n}")
        return self.beta[j]


def section7_family(n: int) -> Section7Family:
    """Build the full Section 7 dependency family."""
    schema = section7_schema(n)
    alpha = [IND("F", ("A", "B"), g_name(0), ("A", "B"))]
    alpha.extend(IND("F", ("B",), g_name(i), ("B",)) for i in range(1, n + 1))
    beta = [IND("F", ("B",), h_name(i), ("B",)) for i in range(n)]
    beta.append(IND("F", ("B", "C"), h_name(n), ("B", "D")))
    gamma = [
        IND(h_name(i), ("B", "C"), g_name(i), ("B", "C")) for i in range(n + 1)
    ]
    gamma_prime = [
        IND(h_name(i), ("B", "C"), g_name(i + 1), ("B", "C")) for i in range(n)
    ]
    delta_0 = FD(g_name(0), ("A",), ("C",))
    epsilon = [FD(g_name(i), ("B",), ("C",)) for i in range(n + 1)]
    theta_n = FD(h_name(n), ("C",), ("D",))
    sigma = FD("F", ("A",), ("C",))
    return Section7Family(
        n=n,
        schema=schema,
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        gamma_prime=gamma_prime,
        delta_0=delta_0,
        epsilon=epsilon,
        theta_n=theta_n,
        sigma=sigma,
    )


def phi_sets(family: Section7Family) -> dict[str, list[FD]]:
    """The per-relation FD families ``phi(.)`` of Section 7."""
    n = family.n
    phi: dict[str, list[FD]] = {
        "F": [FD("F", ("A",), ("C",)), FD("F", ("B",), ("C",))],
        g_name(0): [FD(g_name(0), ("A",), ("C",)), FD(g_name(0), ("B",), ("C",))],
    }
    for i in range(1, n + 1):
        phi[g_name(i)] = [FD(g_name(i), ("B",), ("C",))]
    for i in range(n):
        phi[h_name(i)] = [FD(h_name(i), ("B",), ("C",))]
    phi[h_name(n)] = [
        FD(h_name(n), ("B",), ("C",)),
        FD(h_name(n), ("C",), ("D",)),
    ]
    return phi


def phi_all(family: Section7Family) -> list[FD]:
    """``phi``: the union of the per-relation FD families."""
    result: list[FD] = []
    for fds in phi_sets(family).values():
        result.extend(fds)
    return result


# ---------------------------------------------------------------------------
# Universe and Gamma
# ---------------------------------------------------------------------------


def fd_universe(family: Section7Family, include_trivial: bool = True) -> list[FD]:
    """All canonical FDs over the scheme."""
    result: list[FD] = []
    for rel in family.schema:
        result.extend(all_fds(rel, include_trivial=include_trivial))
    return result


def ind_universe(family: Section7Family, include_trivial: bool = True) -> list[IND]:
    """All canonical INDs over the scheme (arities up to 3)."""
    return list(all_inds(family.schema, include_trivial=include_trivial))


def rd_universe(family: Section7Family, include_trivial: bool = True) -> list[RD]:
    """All canonical unary RDs over the scheme."""
    return list(all_rds(family.schema, include_trivial=include_trivial))


def gamma_7(family: Section7Family) -> set[Dependency]:
    """``Gamma = phi+ u lambda+ u omega - {sigma}`` over the universe."""
    phi = phi_all(family)
    lam = family.inds
    members: set[Dependency] = set()
    for fd in fd_universe(family):
        if fd_implies(phi, fd):
            members.add(fd)
    for ind in ind_universe(family):
        if implies_ind(lam, ind):
            members.add(ind)
    for rd in rd_universe(family):
        if rd.is_trivial():
            members.add(rd)
    members.discard(family.sigma)
    return members


# ---------------------------------------------------------------------------
# Lemma 7.2: Sigma |= sigma, via the chase
# ---------------------------------------------------------------------------


@dataclass
class Lemma72Report:
    """The automated re-derivation of Lemma 7.2."""

    implied: bool
    merge_count: int
    tuples_created: int
    rounds: int

    def __str__(self) -> str:
        return (
            f"Lemma 7.2 (Sigma |= F: A -> C): {'holds' if self.implied else 'FAILS'}"
            f" — chase used {self.rounds} rounds, created "
            f"{self.tuples_created} tuples, performed {self.merge_count} merges"
        )


def verify_lemma_7_2(n: int) -> Lemma72Report:
    """Re-derive ``Sigma |= F: A -> C`` with the general FD+IND chase.

    The chase starts from two F-tuples agreeing on ``A`` and must
    equate their ``C`` entries — the equality chain
    ``c'_i = c_i = ... = c''_n`` of the paper, discovered mechanically.
    """
    from repro.core.fdind_chase import AddEvent, MergeEvent

    family = section7_family(n)
    certificate = chase_implies(family.schema, family.dependencies, family.sigma)
    events = certificate.outcome.instance.events
    merges = sum(1 for e in events if isinstance(e, MergeEvent))
    adds = sum(1 for e in events if isinstance(e, AddEvent))
    return Lemma72Report(
        implied=certificate.implied,
        merge_count=merges,
        tuples_created=adds,
        rounds=certificate.outcome.rounds,
    )


# ---------------------------------------------------------------------------
# Figure 7.1 (Lemma 7.4): Sigma holds, every nontrivial RD fails
# ---------------------------------------------------------------------------


def figure_7_1(n: int) -> Database:
    """A database satisfying Sigma in which distinct variables are
    distinct values, so every nontrivial RD fails (Lemma 7.4).

    Values: ``a, b, c`` seed F; the shared G/H chain value is ``e``
    (forced equal across all ``Gi``/``Hi`` by the gamma-epsilon
    interplay); ``Hn`` carries ``(b, e, c)`` to honour ``beta_n``.
    """
    family = section7_family(n)
    contents: dict[str, list[tuple]] = {
        "F": [("a", "b", "c")],
        g_name(0): [("a", "b", "e")],
    }
    for i in range(1, n + 1):
        contents[g_name(i)] = [("b", "e")]
    for i in range(n):
        contents[h_name(i)] = [("b", "e")]
    contents[h_name(n)] = [("b", "e", "c")]
    return database(family.schema, contents)


@dataclass
class FigureReport:
    """Generic verification report for a figure database."""

    name: str
    satisfies_required: bool
    violations: list[str] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return self.satisfies_required and not self.violations

    def __str__(self) -> str:
        status = "verified" if self.holds else "FAILED"
        text = f"{self.name}: {status}"
        if self.violations:
            text += " — " + "; ".join(self.violations[:5])
        return text


def verify_figure_7_1(n: int) -> FigureReport:
    """Check Figure 7.1 satisfies Sigma and kills all nontrivial RDs."""
    family = section7_family(n)
    db = figure_7_1(n)
    problems: list[str] = []
    sat = db.satisfies_all(family.dependencies)
    if not sat:
        problems.extend(
            f"violates {dep}" for dep in db.violated(family.dependencies)
        )
    for rd in rd_universe(family, include_trivial=False):
        if db.satisfies(rd):
            problems.append(f"nontrivial RD {rd} unexpectedly holds")
    return FigureReport("Figure 7.1 (Lemma 7.4)", sat, problems)


# ---------------------------------------------------------------------------
# Figure 7.2 (Lemma 7.5): FDs holding are exactly phi+
# ---------------------------------------------------------------------------


def figure_7_2(n: int) -> Database:
    """The FD-Armstrong database for Sigma: satisfies Sigma, and an FD
    holds in it iff ``phi`` implies it (Lemma 7.5).

    Reconstruction (the printed figure is illegible in the source):
    four F-tuples realize exactly ``{A -> C, B -> C}``; the G/H chain
    carries three ``(B, C)`` pairs realizing exactly ``{B -> C}``; and
    ``Hn`` adds a fourth row to break ``C -> B`` / ``D -> C`` while
    keeping ``{B -> C, C -> D}``.  The extra row forces a matching
    ``(b5, c5)`` pair into every ``Gi``/``Hi`` (the gamma chain), which
    is harmless for FD-exactness.
    """
    family = section7_family(n)
    f_rows = [
        ("a1", "b1", "c1"),
        ("a1", "b2", "c1"),
        ("a2", "b3", "c2"),
        ("a3", "b3", "c2"),
    ]
    # (B, C) pairs shared along the chain; the pair (b5, c5) exists so
    # that Hn's D -> C breaker has a home in every G relation.
    chain_pairs = [("b1", "c1"), ("b2", "c1"), ("b3", "c2"), ("b5", "c5")]
    contents: dict[str, list[tuple]] = {
        "F": f_rows,
        g_name(0): [
            ("a1", "b1", "c1"),
            ("a1", "b2", "c1"),
            ("a2", "b3", "c2"),
            ("a3", "b3", "c2"),
            ("a5", "b5", "c5"),
        ],
    }
    for i in range(1, n + 1):
        contents[g_name(i)] = list(chain_pairs)
    for i in range(n):
        contents[h_name(i)] = list(chain_pairs)
    # Hn over (B, C, D): beta_n forces (B, D) to cover F's (B, C)
    # pairs; gamma_n forces (B, C) pairs into Gn; theta_n: C -> D.
    contents[h_name(n)] = [
        ("b1", "c1", "c1"),
        ("b2", "c1", "c1"),
        ("b3", "c2", "c2"),
        ("b5", "c5", "c1"),  # breaks D -> C and D -> B; keeps C -> D
    ]
    return database(family.schema, contents)


def verify_figure_7_2(n: int) -> FigureReport:
    """Check Figure 7.2: satisfies Sigma; FDs holding = phi+ exactly."""
    family = section7_family(n)
    db = figure_7_2(n)
    phi = phi_all(family)
    problems: list[str] = []
    sat = db.satisfies_all(family.dependencies)
    if not sat:
        problems.extend(
            f"violates {dep}" for dep in db.violated(family.dependencies)
        )
    for fd in fd_universe(family):
        holds = db.satisfies(fd)
        implied = fd_implies(phi, fd)
        if holds != implied:
            problems.append(
                f"{fd}: holds={holds} but phi-implied={implied}"
            )
    return FigureReport("Figure 7.2 (Lemma 7.5)", sat, problems)


# ---------------------------------------------------------------------------
# Figure 7.3 (Lemma 7.6): INDs holding are exactly lambda+
# ---------------------------------------------------------------------------


def figure_7_3(n: int) -> Database:
    """The IND-Armstrong database for Sigma: satisfies Sigma, and an
    IND holds in it iff ``lambda`` implies it (Lemma 7.6).

    Built by seeding every relation with a private all-fresh tuple and
    chasing under Sigma: the chase closes the database under lambda
    (so every implied IND holds) while the private values guarantee
    that no unimplied inclusion sneaks in; the FD steps of the chase
    perform exactly the value identifications Sigma forces (the
    paper's "careful choice of cardinalities").
    """
    family = section7_family(n)
    engine = ChaseEngine(family.schema, family.dependencies)
    instance = ChaseInstance(family.schema)
    for rel in family.schema:
        row = [
            instance.fresh_constant(f"{rel.name.lower()}_{attr.lower()}")
            for attr in rel.attributes
        ]
        instance.add_row(rel.name, row)
    outcome = engine.run(instance)
    if outcome.failed:  # pragma: no cover - construction is conflict-free
        raise RuntimeError(f"figure 7.3 chase failed: {outcome.failure_reason}")
    return instance.to_database()


def verify_figure_7_3(n: int) -> FigureReport:
    """Check Figure 7.3: satisfies Sigma; INDs holding = lambda+."""
    family = section7_family(n)
    db = figure_7_3(n)
    lam = family.inds
    problems: list[str] = []
    sat = db.satisfies_all(family.dependencies)
    if not sat:
        problems.extend(
            f"violates {dep}" for dep in db.violated(family.dependencies)
        )
    for ind in ind_universe(family):
        holds = db.satisfies(ind)
        implied = implies_ind(lam, ind)
        if holds != implied:
            problems.append(f"{ind}: holds={holds} but lambda-implied={implied}")
    return FigureReport("Figure 7.3 (Lemma 7.6)", sat, problems)


# ---------------------------------------------------------------------------
# Figure 7.4 (Lemma 7.8): lambda - beta_j does not imply beta_j
# ---------------------------------------------------------------------------


def figure_7_4(n: int, j: int) -> Database:
    """A database satisfying ``lambda - {beta_j}`` but not ``beta_j``.

    ``Hj`` holds only a private tuple, so ``F[B] c Hj[B]`` fails, while
    chasing a seeded F-tuple under the remaining INDs satisfies the
    rest (Lemma 7.8, step (6)).
    """
    family = section7_family(n)
    beta_j = family.beta_j(j)
    kept = [ind for ind in family.inds if ind is not beta_j]
    engine = ChaseEngine(family.schema, kept + family.fds)
    instance = ChaseInstance(family.schema)
    f_schema = family.schema.relation("F")
    instance.add_row(
        "F",
        [instance.fresh_constant(f"f_{a.lower()}") for a in f_schema.attributes],
    )
    hj_schema = family.schema.relation(h_name(j))
    instance.add_row(
        h_name(j),
        [
            instance.fresh_constant(f"hj_{a.lower()}")
            for a in hj_schema.attributes
        ],
    )
    outcome = engine.run(instance)
    if outcome.failed:  # pragma: no cover - construction is conflict-free
        raise RuntimeError(f"figure 7.4 chase failed: {outcome.failure_reason}")
    return instance.to_database()


def verify_figure_7_4(n: int, j: int) -> FigureReport:
    family = section7_family(n)
    beta_j = family.beta_j(j)
    db = figure_7_4(n, j)
    kept = [ind for ind in family.inds if ind is not beta_j]
    problems: list[str] = []
    sat = db.satisfies_all(kept)
    if not sat:
        problems.extend(f"violates {dep}" for dep in db.violated(kept))
    if db.satisfies(beta_j):
        problems.append(f"{beta_j} unexpectedly holds")
    return FigureReport(f"Figure 7.4 (Lemma 7.8, j={j})", sat, problems)


# ---------------------------------------------------------------------------
# Figure 7.5 (Lemma 7.9): rho_j holds, sigma fails
# ---------------------------------------------------------------------------


def figure_7_5(n: int, j: int) -> Database:
    """A database satisfying ``(phi - sigma) u (lambda - beta_j)``
    (hence their closure, hence ``rho_j``) while violating
    ``sigma = F: A -> C`` (Lemma 7.9).

    Built by chasing two F-tuples that agree on ``A`` but carry
    distinct constants in ``C``; with ``beta_j`` removed, the equality
    chain of Lemma 7.2 cannot reach across, and the chase fixpoint
    keeps the two ``C`` values apart.
    """
    family = section7_family(n)
    beta_j = family.beta_j(j)
    kept_inds = [ind for ind in family.inds if ind is not beta_j]
    kept_fds = [fd for fd in phi_all(family) if fd != family.sigma]
    engine = ChaseEngine(family.schema, [*kept_inds, *kept_fds])
    instance = ChaseInstance(family.schema)
    a = instance.fresh_constant("a")
    b1 = instance.fresh_constant("b")
    b2 = instance.fresh_constant("b'")
    c1 = instance.fresh_constant("c")
    c2 = instance.fresh_constant("c'")
    instance.add_row("F", [a, b1, c1])
    instance.add_row("F", [a, b2, c2])
    outcome = engine.run(instance)
    if outcome.failed:
        raise RuntimeError(f"figure 7.5 chase failed: {outcome.failure_reason}")
    return instance.to_database()


def verify_figure_7_5(n: int, j: int) -> FigureReport:
    family = section7_family(n)
    beta_j = family.beta_j(j)
    db = figure_7_5(n, j)
    kept_inds = [ind for ind in family.inds if ind is not beta_j]
    kept_fds = [fd for fd in phi_all(family) if fd != family.sigma]
    required = [*kept_inds, *kept_fds]
    problems: list[str] = []
    sat = db.satisfies_all(required)
    if not sat:
        problems.extend(f"violates {dep}" for dep in db.violated(required))
    if db.satisfies(family.sigma):
        problems.append("sigma = F: A -> C unexpectedly holds")
    return FigureReport(f"Figure 7.5 (Lemma 7.9, j={j})", sat, problems)


# ---------------------------------------------------------------------------
# Lemma 7.8 as a set identity, and the full Theorem 7.1 report
# ---------------------------------------------------------------------------


def verify_lemma_7_8(n: int, j: int) -> bool:
    """Check the set identity of Lemma 7.8 over the enumerated universe:

    ``phi+ u lambda+ u omega - {sigma, beta_j}
      = (phi - sigma)+ u (lambda - beta_j)+ u omega``.
    """
    family = section7_family(n)
    sigma = family.sigma
    beta_j = family.beta_j(j)
    phi = phi_all(family)
    lam = family.inds
    phi_minus = [fd for fd in phi if fd != sigma]
    lam_minus = [ind for ind in lam if ind is not beta_j]

    for fd in fd_universe(family):
        left = fd_implies(phi, fd) and fd != sigma
        right = fd_implies(phi_minus, fd)
        if left != right:
            return False
    for ind in ind_universe(family):
        left = implies_ind(lam, ind) and ind != beta_j
        right = implies_ind(lam_minus, ind)
        if left != right:
            return False
    # RDs: both sides contain exactly the trivial RDs.
    return True


@dataclass
class Theorem71Report:
    """Full mechanical verification of Theorem 7.1 for ``(n, k)``."""

    n: int
    k: int
    lemma_7_2: Lemma72Report
    figure_7_1: FigureReport
    figure_7_2: FigureReport
    figure_7_3: FigureReport
    figures_7_4: list[FigureReport]
    figures_7_5: list[FigureReport]
    lemma_7_8: list[bool]
    sigma_outside_gamma: bool
    pigeonhole: bool

    @property
    def establishes_theorem(self) -> bool:
        return (
            self.lemma_7_2.implied
            and self.figure_7_1.holds
            and self.figure_7_2.holds
            and self.figure_7_3.holds
            and all(r.holds for r in self.figures_7_4)
            and all(r.holds for r in self.figures_7_5)
            and all(self.lemma_7_8)
            and self.sigma_outside_gamma
            and self.pigeonhole
        )

    def __str__(self) -> str:
        verdict = "ESTABLISHED" if self.establishes_theorem else "NOT established"
        lines = [
            f"Theorem 7.1 for n={self.n}, k={self.k}: {verdict}",
            f"  {self.lemma_7_2}",
            f"  {self.figure_7_1}",
            f"  {self.figure_7_2}",
            f"  {self.figure_7_3}",
        ]
        lines.extend(f"  {r}" for r in self.figures_7_4)
        lines.extend(f"  {r}" for r in self.figures_7_5)
        lines.append(
            f"  Lemma 7.8 identity for all j: {all(self.lemma_7_8)}"
        )
        lines.append(f"  sigma outside Gamma: {self.sigma_outside_gamma}")
        lines.append(
            f"  pigeonhole (n = {self.n} beta_j's > k = {self.k}): {self.pigeonhole}"
        )
        return "\n".join(lines)


def theorem_7_1_report(n: int, k: int) -> Theorem71Report:
    """Verify every ingredient of Theorem 7.1 for ``k < n``.

    The assembled argument: Gamma (= phi+ u lambda+ u omega - sigma)
    contains Sigma's consequences except sigma; Lemma 7.2 gives
    ``Sigma |= sigma`` with ``Sigma`` inside Gamma, so Gamma is not
    closed under implication.  For closure under k-ary implication:
    any <=k-subset ``T`` of Gamma misses some ``beta_j`` (pigeonhole
    over the ``n > k`` INDs ``F[B] c Hj[B]``), Figure 7.5's database
    satisfies ``rho_j`` (supset of ``T``, by Lemma 7.8's identity) while
    violating sigma, so ``T`` cannot imply sigma; and Lemmas 7.4-7.6
    (Figures 7.1-7.3) bound everything ``T`` implies inside
    ``phi+ u lambda+ u omega``.
    """
    if not 0 <= k < n:
        raise ValueError("Theorem 7.1 requires 0 <= k < n")
    family = section7_family(n)
    gamma = gamma_7(family)
    return Theorem71Report(
        n=n,
        k=k,
        lemma_7_2=verify_lemma_7_2(n),
        figure_7_1=verify_figure_7_1(n),
        figure_7_2=verify_figure_7_2(n),
        figure_7_3=verify_figure_7_3(n),
        figures_7_4=[verify_figure_7_4(n, j) for j in range(n)],
        figures_7_5=[verify_figure_7_5(n, j) for j in range(n)],
        lemma_7_8=[verify_lemma_7_8(n, j) for j in range(n)],
        sigma_outside_gamma=family.sigma not in gamma,
        pigeonhole=n > k,
    )
