"""The Corollary 3.2 decision procedure for INDs.

Corollary 3.2 characterizes implication: ``Sigma implies
Ra[A1..Am] c Rb[B1..Bm]`` iff there is a chain of *expressions*
``S1[X1], ..., Sw[Xw]`` with ``S1[X1] = Ra[A1..Am]``,
``Sw[Xw] = Rb[B1..Bm]``, and each link an IND2
(projection-and-permutation) instance of a member of Sigma.

The paper's procedure maintains the set ``Z`` of reachable
expressions; here it is a breadth-first search over the implicit
expression graph, with predecessor tracking so a witness chain (and
subsequently a formal proof) can be extracted.  The graph has up to
``sum_R  P(arity(R), m)`` nodes, which is why the problem is
PSPACE-complete in general (Theorem 3.3); an explicit node budget
turns pathological blow-ups into a clean exception.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from repro.exceptions import DependencyError, SearchBudgetExceeded
from repro.deps.ind import IND

Expression = tuple[str, tuple[str, ...]]
"""An expression ``S[X]``: a relation name plus an attribute sequence."""

PremiseIndexMap = Mapping[str, tuple[IND, ...]]
"""Premises bucketed by a relation name (left side for forward search)."""

Premises = Union[Iterable[IND], PremiseIndexMap]
"""Either a flat premise collection or a pre-built relation index."""


def index_by_lhs(premises: Iterable[IND]) -> dict[str, tuple[IND, ...]]:
    """Bucket premises by their left-hand relation.

    ``successors`` only ever applies premises whose left relation
    matches the expression's relation, so the bucket lookup replaces a
    linear scan over the whole premise set at every expanded node.
    """
    buckets: dict[str, list[IND]] = {}
    for premise in premises:
        buckets.setdefault(premise.lhs_relation, []).append(premise)
    return {name: tuple(bucket) for name, bucket in buckets.items()}


def index_by_rhs(premises: Iterable[IND]) -> dict[str, tuple[IND, ...]]:
    """Bucket premises by their right-hand relation (backward search)."""
    buckets: dict[str, list[IND]] = {}
    for premise in premises:
        buckets.setdefault(premise.rhs_relation, []).append(premise)
    return {name: tuple(bucket) for name, bucket in buckets.items()}


def _candidates_for(premises: Premises, relation: str) -> Iterable[IND]:
    if isinstance(premises, Mapping):
        return premises.get(relation, ())
    return premises


@dataclass(frozen=True)
class ChainLink:
    """One application of step (2): which premise produced the move,
    and which (zero-based) positions of its left side were selected."""

    premise: IND
    indices: tuple[int, ...]

    def instantiate(self) -> IND:
        """The IND2 instance ``Si[Xi] c Si+1[Xi+1]`` this link uses."""
        return self.premise.project_onto(self.indices)


@dataclass
class DecisionResult:
    """Outcome of the Corollary 3.2 procedure."""

    implied: bool
    target: IND
    chain: Optional[list[Expression]] = None
    links: Optional[list[ChainLink]] = None
    explored: int = 0
    frontier_peak: int = 0

    @property
    def chain_length(self) -> int:
        """Number of expressions in the witness chain (``w`` in the paper)."""
        return 0 if self.chain is None else len(self.chain)

    def describe(self) -> str:
        """Human-readable account of the decision."""
        verdict = "IMPLIED" if self.implied else "NOT implied"
        lines = [f"{self.target}: {verdict} (explored {self.explored} expressions)"]
        if self.chain:
            for index, (rel, attrs) in enumerate(self.chain):
                prefix = "  start " if index == 0 else f"  step {index}"
                lines.append(f"{prefix}: {rel}[{','.join(attrs)}]")
        return "\n".join(lines)


def expression_of_lhs(ind: IND) -> Expression:
    return (ind.lhs_relation, ind.lhs_attributes)


def expression_of_rhs(ind: IND) -> Expression:
    return (ind.rhs_relation, ind.rhs_attributes)


def successors(
    expression: Expression, premises: Premises
) -> Iterable[tuple[Expression, ChainLink]]:
    """All expressions reachable from ``expression`` in one step.

    A premise ``Ri[C1..Ck] c Rj[D1..Dk]`` applies when the expression's
    relation is ``Ri`` and every attribute of the expression occurs in
    ``C1..Ck``; the successor maps each attribute through the premise's
    positional correspondence (this is rule IND2).

    ``premises`` may be a flat collection or an :func:`index_by_lhs`
    mapping; with the index only the matching bucket is scanned.
    """
    relation, attrs = expression
    for premise in _candidates_for(premises, relation):
        if premise.lhs_relation != relation:
            continue
        positions: list[int] = []
        applicable = True
        lhs = premise.lhs_attributes
        for attr in attrs:
            try:
                positions.append(lhs.index(attr))
            except ValueError:
                applicable = False
                break
        if not applicable:
            continue
        image = tuple(premise.rhs_attributes[p] for p in positions)
        yield (premise.rhs_relation, image), ChainLink(premise, tuple(positions))


def decide_ind(
    target: IND,
    premises: Premises,
    max_nodes: int = 2_000_000,
) -> DecisionResult:
    """Decide ``premises |= target`` via expression-graph reachability.

    Sound and complete by Theorem 3.1 / Corollary 3.2 (and therefore
    decides finite and unrestricted implication simultaneously, which
    coincide for INDs).  Returns a witness chain when implied.
    """
    premise_index = (
        premises if isinstance(premises, Mapping) else index_by_lhs(premises)
    )
    start = expression_of_lhs(target)
    goal = expression_of_rhs(target)
    if start == goal:
        return DecisionResult(
            implied=True, target=target, chain=[start], links=[], explored=1
        )

    parents: dict[Expression, tuple[Expression, ChainLink]] = {}
    visited: set[Expression] = {start}
    queue: deque[Expression] = deque([start])
    explored = 0
    frontier_peak = 1

    while queue:
        frontier_peak = max(frontier_peak, len(queue))
        current = queue.popleft()
        explored += 1
        if explored > max_nodes:
            raise SearchBudgetExceeded(
                f"IND decision exceeded {max_nodes} expressions", explored=explored
            )
        for nxt, link in successors(current, premise_index):
            if nxt in visited:
                continue
            visited.add(nxt)
            parents[nxt] = (current, link)
            if nxt == goal:
                chain = [nxt]
                links: list[ChainLink] = []
                node = nxt
                while node != start:
                    prev, via = parents[node]
                    chain.append(prev)
                    links.append(via)
                    node = prev
                chain.reverse()
                links.reverse()
                return DecisionResult(
                    implied=True,
                    target=target,
                    chain=chain,
                    links=links,
                    explored=explored,
                    frontier_peak=frontier_peak,
                )
            queue.append(nxt)

    return DecisionResult(
        implied=False,
        target=target,
        explored=explored,
        frontier_peak=frontier_peak,
    )


@dataclass
class Exploration:
    """A cached exhaustive BFS: the reachable set plus its provenance.

    ``footprint`` is the set of relation names whose premise bucket the
    BFS consulted — the relation of every expanded expression.  A
    premise mutation can only change this exploration's result if the
    mutated IND's *left* relation is in the footprint: an IND whose
    left relation was never expanded can neither have contributed an
    edge nor contribute a new one.  ``ReasoningSession`` uses this for
    scoped invalidation of its reachability cache.
    """

    start: Expression
    visited: set[Expression]
    parents: dict[Expression, tuple[Expression, ChainLink]]
    footprint: frozenset[str]

    def decide(self, target: IND) -> DecisionResult:
        """Answer one question whose left expression is ``start``."""
        return decision_from_exploration(target, self.visited, self.parents)


def explore_expressions(
    start: Expression,
    premises: Premises,
    max_nodes: int = 2_000_000,
) -> Exploration:
    """Exhaustive BFS from ``start``: the full reachable set ``Z`` plus
    a predecessor map for witness-chain extraction and the
    premise-bucket footprint the search consulted.

    Unlike :func:`decide_ind` this never stops early, so the result can
    be cached and answers *every* implication question whose target has
    left expression ``start`` (``ReasoningSession.implies_all`` relies
    on this to share one exploration across a batch of queries, and the
    session's add/retract lifecycle uses ``footprint`` to keep cached
    explorations alive across mutations that cannot affect them).
    """
    premise_index = (
        premises if isinstance(premises, Mapping) else index_by_lhs(premises)
    )
    parents: dict[Expression, tuple[Expression, ChainLink]] = {}
    visited: set[Expression] = {start}
    queue: deque[Expression] = deque([start])
    while queue:
        current = queue.popleft()
        if len(visited) > max_nodes:
            raise SearchBudgetExceeded(
                f"expression closure exceeded {max_nodes} nodes",
                explored=len(visited),
            )
        for nxt, link in successors(current, premise_index):
            if nxt not in visited:
                visited.add(nxt)
                parents[nxt] = (current, link)
                queue.append(nxt)
    footprint = frozenset(relation for relation, _attrs in visited)
    return Exploration(start, visited, parents, footprint)


def decision_from_exploration(
    target: IND,
    visited: set[Expression],
    parents: dict[Expression, tuple[Expression, ChainLink]],
) -> DecisionResult:
    """Answer one implication question from a cached exploration.

    ``visited``/``parents`` must come from :func:`explore_expressions`
    started at the target's left expression.
    """
    start = expression_of_lhs(target)
    goal = expression_of_rhs(target)
    if start == goal:
        return DecisionResult(
            implied=True, target=target, chain=[start], links=[],
            explored=len(visited),
        )
    if goal not in visited:
        return DecisionResult(implied=False, target=target, explored=len(visited))
    chain = [goal]
    links: list[ChainLink] = []
    node = goal
    while node != start:
        prev, via = parents[node]
        chain.append(prev)
        links.append(via)
        node = prev
    chain.reverse()
    links.reverse()
    return DecisionResult(
        implied=True,
        target=target,
        chain=chain,
        links=links,
        explored=len(visited),
    )


def reachable_expressions(
    start: Expression,
    premises: Premises,
    max_nodes: int = 2_000_000,
) -> set[Expression]:
    """The full set ``Z`` of the paper's procedure (all reachable
    expressions from ``start``), for analysis and benchmarks."""
    return explore_expressions(start, premises, max_nodes=max_nodes).visited


def chain_is_valid(target: IND, chain: list[Expression], links: list[ChainLink]) -> bool:
    """Independent validation of a Corollary 3.2 witness chain.

    Checks conditions (i)-(v) of the corollary: endpoints match the
    target IND, and each consecutive pair is connected by an IND2
    instance of the cited premise.
    """
    if not chain:
        return False
    if chain[0] != expression_of_lhs(target):
        return False
    if chain[-1] != expression_of_rhs(target):
        return False
    if len(links) != len(chain) - 1:
        return False
    for (src, dst), link in zip(zip(chain, chain[1:]), links):
        try:
            instance = link.instantiate()
        except DependencyError:
            return False
        if expression_of_lhs(instance) != src or expression_of_rhs(instance) != dst:
            return False
    return True
