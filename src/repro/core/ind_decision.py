"""The Corollary 3.2 decision procedure for INDs.

Corollary 3.2 characterizes implication: ``Sigma implies
Ra[A1..Am] c Rb[B1..Bm]`` iff there is a chain of *expressions*
``S1[X1], ..., Sw[Xw]`` with ``S1[X1] = Ra[A1..Am]``,
``Sw[Xw] = Rb[B1..Bm]``, and each link an IND2
(projection-and-permutation) instance of a member of Sigma.

The paper's procedure maintains the set ``Z`` of reachable
expressions; here it is a breadth-first search over the implicit
expression graph, with predecessor tracking so a witness chain (and
subsequently a formal proof) can be extracted.  The graph has up to
``sum_R  P(arity(R), m)`` nodes, which is why the problem is
PSPACE-complete in general (Theorem 3.3); an explicit node budget
turns pathological blow-ups into a clean exception.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from repro.exceptions import DependencyError, SearchBudgetExceeded
from repro.deps.ind import IND
from repro.core.ind_kernel import (
    INDKernel,
    KernelIndex,
    compile_ind,
    intern_expression,
)

Expression = tuple[str, tuple[str, ...]]
"""An expression ``S[X]``: a relation name plus an attribute sequence."""

PremiseIndexMap = Mapping[str, tuple[IND, ...]]
"""Premises bucketed by a relation name (left side for forward search)."""

Premises = Union[Iterable[IND], PremiseIndexMap, KernelIndex]
"""A flat premise collection, a pre-built relation index, or the
kernel-compiled index a :class:`~repro.engine.index.PremiseIndex` owns.
:func:`decide_ind` additionally accepts a compiled
:class:`~repro.core.reach_index.ReachIndex` and answers from it."""


def index_by_lhs(premises: Iterable[IND]) -> dict[str, tuple[IND, ...]]:
    """Bucket premises by their left-hand relation.

    ``successors`` only ever applies premises whose left relation
    matches the expression's relation, so the bucket lookup replaces a
    linear scan over the whole premise set at every expanded node.
    """
    buckets: dict[str, list[IND]] = {}
    for premise in premises:
        buckets.setdefault(premise.lhs_relation, []).append(premise)
    return {name: tuple(bucket) for name, bucket in buckets.items()}


def index_by_rhs(premises: Iterable[IND]) -> dict[str, tuple[IND, ...]]:
    """Bucket premises by their right-hand relation (backward search)."""
    buckets: dict[str, list[IND]] = {}
    for premise in premises:
        buckets.setdefault(premise.rhs_relation, []).append(premise)
    return {name: tuple(bucket) for name, bucket in buckets.items()}


def _candidates_for(
    premises: Union[Iterable[IND], PremiseIndexMap], relation: str
) -> Iterable[IND]:
    """Premises possibly applicable at ``relation`` (flat or bucketed).

    Used by the backward direction of the bidirectional search, whose
    buckets are keyed by *right*-hand relation and therefore cannot
    reuse the forward kernels.
    """
    if isinstance(premises, Mapping):
        return premises.get(relation, ())
    return premises


def _as_kernels(premises: Premises) -> KernelIndex:
    """Whatever premise shape the caller has, as a kernel index.

    A :class:`KernelIndex` passes through untouched — this is how the
    session shares one compilation across queries and mutations.  Flat
    collections and ``index_by_lhs`` mappings are bucketed here; the
    per-IND kernel compilation itself is memoized on the IND objects,
    so re-wrapping the same premises is cheap.
    """
    if isinstance(premises, KernelIndex):
        return premises
    kernels = getattr(premises, "kernels", None)
    if isinstance(kernels, KernelIndex):  # a compiled ReachIndex
        return kernels
    if isinstance(premises, Mapping):
        return KernelIndex.from_lhs_buckets(premises)
    return KernelIndex(premises)


def _kernel_bucket_for(premises: Premises, relation: str) -> tuple[INDKernel, ...]:
    if isinstance(premises, KernelIndex):
        return premises.bucket(relation)
    kernels = getattr(premises, "kernels", None)
    if isinstance(kernels, KernelIndex):  # a compiled ReachIndex
        return kernels.bucket(relation)
    if isinstance(premises, Mapping):
        # A mapping's buckets are not necessarily lhs-keyed (callers
        # also hold index_by_rhs maps); only lhs-matching premises can
        # move an expression over ``relation``.
        bucket = [
            p for p in premises.get(relation, ()) if p.lhs_relation == relation
        ]
    else:
        bucket = [p for p in premises if p.lhs_relation == relation]
    return tuple(compile_ind(premise) for premise in bucket)


@dataclass(frozen=True)
class ChainLink:
    """One application of step (2): which premise produced the move,
    and which (zero-based) positions of its left side were selected."""

    premise: IND
    indices: tuple[int, ...]

    def instantiate(self) -> IND:
        """The IND2 instance ``Si[Xi] c Si+1[Xi+1]`` this link uses."""
        return self.premise.project_onto(self.indices)


@dataclass
class DecisionResult:
    """Outcome of the Corollary 3.2 procedure."""

    implied: bool
    target: IND
    chain: Optional[list[Expression]] = None
    links: Optional[list[ChainLink]] = None
    explored: int = 0
    frontier_peak: int = 0

    @property
    def chain_length(self) -> int:
        """Number of expressions in the witness chain (``w`` in the paper)."""
        return 0 if self.chain is None else len(self.chain)

    def describe(self) -> str:
        """Human-readable account of the decision."""
        verdict = "IMPLIED" if self.implied else "NOT implied"
        lines = [f"{self.target}: {verdict} (explored {self.explored} expressions)"]
        if self.chain:
            for index, (rel, attrs) in enumerate(self.chain):
                prefix = "  start " if index == 0 else f"  step {index}"
                lines.append(f"{prefix}: {rel}[{','.join(attrs)}]")
        return "\n".join(lines)


def expression_of_lhs(ind: IND) -> Expression:
    return (ind.lhs_relation, ind.lhs_attributes)


def expression_of_rhs(ind: IND) -> Expression:
    return (ind.rhs_relation, ind.rhs_attributes)


def successors(
    expression: Expression, premises: Premises
) -> Iterable[tuple[Expression, ChainLink]]:
    """All expressions reachable from ``expression`` in one step.

    A premise ``Ri[C1..Ck] c Rj[D1..Dk]`` applies when the expression's
    relation is ``Ri`` and every attribute of the expression occurs in
    ``C1..Ck``; the successor maps each attribute through the premise's
    positional correspondence (this is rule IND2).

    ``premises`` may be a flat collection, an :func:`index_by_lhs`
    mapping, or a pre-compiled :class:`KernelIndex`; each applicable
    premise is evaluated through its memoized kernel, so repeated
    calls over the same expressions are dictionary hits.
    :func:`successors_naive` is the retained textbook reference.
    """
    _relation, attrs = expression
    for kernel in _kernel_bucket_for(premises, _relation):
        entry = kernel.successor_of(attrs)
        if entry is not None:
            nxt, positions = entry
            yield nxt, ChainLink(kernel.ind, positions)


def successors_naive(
    expression: Expression, premises: Union[Iterable[IND], PremiseIndexMap]
) -> Iterable[tuple[Expression, ChainLink]]:
    """The uncompiled successor computation, kept as the differential
    reference for the kernel path: per-attribute ``lhs.index`` scans,
    one :class:`ChainLink` per applicable premise."""
    relation, attrs = expression
    if isinstance(premises, Mapping):
        candidates: Iterable[IND] = premises.get(relation, ())
    else:
        candidates = premises
    for premise in candidates:
        if premise.lhs_relation != relation:
            continue
        positions: list[int] = []
        applicable = True
        lhs = premise.lhs_attributes
        for attr in attrs:
            try:
                positions.append(lhs.index(attr))
            except ValueError:
                applicable = False
                break
        if not applicable:
            continue
        image = tuple(premise.rhs_attributes[p] for p in positions)
        yield (premise.rhs_relation, image), ChainLink(premise, tuple(positions))


def decide_ind(
    target: IND,
    premises: Premises,
    max_nodes: int = 2_000_000,
    tick=None,
) -> DecisionResult:
    """Decide ``premises |= target`` via expression-graph reachability.

    Sound and complete by Theorem 3.1 / Corollary 3.2 (and therefore
    decides finite and unrestricted implication simultaneously, which
    coincide for INDs).  Returns a witness chain when implied.

    When ``premises`` is a session-managed, already-compiled
    :class:`~repro.core.reach_index.ReachIndex`, the question is
    answered from its SCC-condensed bitset closure — amortized O(1)
    per decision — instead of a fresh BFS; one-shot premise
    collections keep the early-exit kernel BFS below, which can stop
    after a handful of nodes in graphs whose full closure would blow
    the budget.

    ``tick`` is an optional zero-argument cooperative check (deadline
    polling), invoked every 256 BFS expansions.
    """
    from repro.core.reach_index import ReachIndex  # deferred: cyclic module pair

    if isinstance(premises, ReachIndex):
        return premises.decide(target, max_nodes=max_nodes, tick=tick)
    kernels = _as_kernels(premises)
    start = intern_expression(expression_of_lhs(target))
    goal = intern_expression(expression_of_rhs(target))
    if start == goal:
        return DecisionResult(
            implied=True, target=target, chain=[start], links=[], explored=1,
            frontier_peak=1,
        )

    parents: dict[Expression, tuple[Expression, INDKernel, tuple[int, ...]]] = {}
    visited: set[Expression] = {start}
    queue: deque[Expression] = deque([start])
    buckets = kernels.buckets
    explored = 0
    frontier_peak = 1

    while queue:
        if len(queue) > frontier_peak:
            frontier_peak = len(queue)
        current = queue.popleft()
        explored += 1
        if tick is not None and not explored & 0xFF:
            tick()
        if explored > max_nodes:
            raise SearchBudgetExceeded(
                f"IND decision exceeded {max_nodes} expressions", explored=explored
            )
        relation, attrs = current
        for kernel in buckets.get(relation, ()):
            entry = kernel.successor_of(attrs)
            if entry is None:
                continue
            nxt = entry[0]
            if nxt in visited:
                continue
            visited.add(nxt)
            parents[nxt] = (current, kernel, entry[1])
            if nxt == goal:
                chain, links = _extract_chain(start, nxt, parents)
                return DecisionResult(
                    implied=True,
                    target=target,
                    chain=chain,
                    links=links,
                    explored=explored,
                    frontier_peak=frontier_peak,
                )
            queue.append(nxt)

    return DecisionResult(
        implied=False,
        target=target,
        explored=explored,
        frontier_peak=frontier_peak,
    )


def _extract_chain(
    start: Expression,
    goal: Expression,
    parents: Mapping[Expression, tuple[Expression, INDKernel, tuple[int, ...]]],
) -> tuple[list[Expression], list[ChainLink]]:
    """Walk the predecessor map back to ``start``.

    :class:`ChainLink` objects are allocated here — once per edge of
    the *witness chain* — rather than for every edge the BFS merely
    inspected.
    """
    chain = [goal]
    links: list[ChainLink] = []
    node = goal
    while node != start:
        prev, kernel, positions = parents[node]
        chain.append(prev)
        links.append(ChainLink(kernel.ind, positions))
        node = prev
    chain.reverse()
    links.reverse()
    return chain, links


def decide_ind_naive(
    target: IND,
    premises: Union[Iterable[IND], PremiseIndexMap],
    max_nodes: int = 2_000_000,
) -> DecisionResult:
    """The pre-kernel decision procedure, retained verbatim as the
    differential-testing and benchmarking reference for
    :func:`decide_ind` (same contract, same BFS order)."""
    premise_index = (
        premises if isinstance(premises, Mapping) else index_by_lhs(premises)
    )
    start = expression_of_lhs(target)
    goal = expression_of_rhs(target)
    if start == goal:
        return DecisionResult(
            implied=True, target=target, chain=[start], links=[], explored=1,
            frontier_peak=1,
        )

    parents: dict[Expression, tuple[Expression, ChainLink]] = {}
    visited: set[Expression] = {start}
    queue: deque[Expression] = deque([start])
    explored = 0
    frontier_peak = 1

    while queue:
        frontier_peak = max(frontier_peak, len(queue))
        current = queue.popleft()
        explored += 1
        if explored > max_nodes:
            raise SearchBudgetExceeded(
                f"IND decision exceeded {max_nodes} expressions", explored=explored
            )
        for nxt, link in successors_naive(current, premise_index):
            if nxt in visited:
                continue
            visited.add(nxt)
            parents[nxt] = (current, link)
            if nxt == goal:
                chain = [nxt]
                links: list[ChainLink] = []
                node = nxt
                while node != start:
                    prev, via = parents[node]
                    chain.append(prev)
                    links.append(via)
                    node = prev
                chain.reverse()
                links.reverse()
                return DecisionResult(
                    implied=True,
                    target=target,
                    chain=chain,
                    links=links,
                    explored=explored,
                    frontier_peak=frontier_peak,
                )
            queue.append(nxt)

    return DecisionResult(
        implied=False,
        target=target,
        explored=explored,
        frontier_peak=frontier_peak,
    )


ParentEntry = tuple[Expression, INDKernel, tuple[int, ...]]
"""Predecessor-map entry: (previous expression, kernel, positions).

The :class:`ChainLink` for an edge is only materialized when a witness
chain is extracted through it, never during the search itself.
"""


@dataclass
class Exploration:
    """A cached exhaustive BFS: the reachable set plus its provenance.

    ``footprint`` is the set of relation names whose premise bucket the
    BFS consulted — the relation of every expanded expression.  A
    premise mutation can only change this exploration's result if the
    mutated IND's *left* relation is in the footprint: an IND whose
    left relation was never expanded can neither have contributed an
    edge nor contribute a new one.  ``ReasoningSession`` uses this for
    scoped invalidation of its reachability cache.
    """

    start: Expression
    visited: set[Expression]
    parents: dict[Expression, ParentEntry]
    footprint: frozenset[str]
    frontier_peak: int = 0

    def decide(self, target: IND) -> DecisionResult:
        """Answer one question whose left expression is ``start``."""
        return decision_from_exploration(
            target, self.visited, self.parents,
            frontier_peak=self.frontier_peak,
        )


def explore_expressions(
    start: Expression,
    premises: Premises,
    max_nodes: int = 2_000_000,
) -> Exploration:
    """Exhaustive BFS from ``start``: the full reachable set ``Z`` plus
    a predecessor map for witness-chain extraction and the
    premise-bucket footprint the search consulted.

    Unlike :func:`decide_ind` this never stops early, so the result can
    be cached and answers *every* implication question whose target has
    left expression ``start`` (``ReasoningSession.implies_all`` relies
    on this to share one exploration across a batch of queries, and the
    session's add/retract lifecycle uses ``footprint`` to keep cached
    explorations alive across mutations that cannot affect them).
    """
    kernels = _as_kernels(premises)
    start = intern_expression(start)
    parents: dict[Expression, ParentEntry] = {}
    visited: set[Expression] = {start}
    queue: deque[Expression] = deque([start])
    buckets = kernels.buckets
    frontier_peak = 1
    while queue:
        if len(queue) > frontier_peak:
            frontier_peak = len(queue)
        current = queue.popleft()
        if len(visited) > max_nodes:
            raise SearchBudgetExceeded(
                f"expression closure exceeded {max_nodes} nodes",
                explored=len(visited),
            )
        relation, attrs = current
        for kernel in buckets.get(relation, ()):
            entry = kernel.successor_of(attrs)
            if entry is None:
                continue
            nxt = entry[0]
            if nxt not in visited:
                visited.add(nxt)
                parents[nxt] = (current, kernel, entry[1])
                queue.append(nxt)
    footprint = frozenset(relation for relation, _attrs in visited)
    return Exploration(start, visited, parents, footprint, frontier_peak)


def decision_from_exploration(
    target: IND,
    visited: set[Expression],
    parents: Mapping[Expression, ParentEntry],
    frontier_peak: int = 0,
) -> DecisionResult:
    """Answer one implication question from a cached exploration.

    ``visited``/``parents`` must come from :func:`explore_expressions`
    started at the target's left expression; ``frontier_peak`` is that
    exploration's peak, threaded through so cached answers report the
    same stats shape as fresh ones.
    """
    start = expression_of_lhs(target)
    goal = expression_of_rhs(target)
    if start == goal:
        return DecisionResult(
            implied=True, target=target, chain=[start], links=[],
            explored=len(visited), frontier_peak=frontier_peak,
        )
    if goal not in visited:
        return DecisionResult(
            implied=False, target=target, explored=len(visited),
            frontier_peak=frontier_peak,
        )
    chain, links = _extract_chain(start, goal, parents)
    return DecisionResult(
        implied=True,
        target=target,
        chain=chain,
        links=links,
        explored=len(visited),
        frontier_peak=frontier_peak,
    )


def reachable_expressions(
    start: Expression,
    premises: Premises,
    max_nodes: int = 2_000_000,
) -> set[Expression]:
    """The full set ``Z`` of the paper's procedure (all reachable
    expressions from ``start``), for analysis and benchmarks."""
    return explore_expressions(start, premises, max_nodes=max_nodes).visited


def chain_is_valid(target: IND, chain: list[Expression], links: list[ChainLink]) -> bool:
    """Independent validation of a Corollary 3.2 witness chain.

    Checks conditions (i)-(v) of the corollary: endpoints match the
    target IND, and each consecutive pair is connected by an IND2
    instance of the cited premise.
    """
    if not chain:
        return False
    if chain[0] != expression_of_lhs(target):
        return False
    if chain[-1] != expression_of_rhs(target):
        return False
    if len(links) != len(chain) - 1:
        return False
    for (src, dst), link in zip(zip(chain, chain[1:]), links):
        try:
            instance = link.instantiate()
        except DependencyError:
            return False
        if expression_of_lhs(instance) != src or expression_of_rhs(instance) != dst:
            return False
    return True
