"""Section 6: no k-ary complete axiomatization for *finite* implication.

The construction, for a fixed ``k``:

* relation schemes ``R0[A,B], ..., Rk[A,B]``;
* ``Sigma = {Ri: A -> B} u {Ri[A] c R(i+1 mod k+1)[B]}`` — a cycle of
  ``k+1`` FDs and ``k+1`` INDs;
* ``sigma = R0[B] c Rk[A]``.

A counting argument around the cycle shows ``Sigma |=fin sigma`` (all
column cardinalities coincide, so the finite inclusion
``Rk[A] c R0[B]`` is an equality).  Yet dropping any single IND
``delta`` kills the implication: **Figure 6.1** exhibits a finite
Armstrong database ``d`` satisfying *exactly* the dependencies in
``Gamma - delta`` where ``Gamma = Sigma u {trivialities}`` — claim
(6.1) of the paper.  Since any <=k-subset of ``Gamma`` misses one of
the ``k+1`` INDs (pigeonhole), ``Gamma`` is closed under k-ary finite
implication but not under finite implication, and Theorem 5.1 kills
every k-ary axiomatization.

Everything in this module is machine-checked: the database is
regenerated for any ``k`` and any excluded IND (by the paper's cyclic
relabelling), and claim (6.1) is verified by model-checking the entire
enumerated FD/IND/RD universe against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.deps.base import Dependency
from repro.deps.enumeration import dependency_universe
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.model.builders import database
from repro.model.database import Database
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.core.finite_unary import (
    finitely_implies_unary,
    unrestricted_implies_unary,
)


def relation_name(index: int) -> str:
    return f"R{index}"


def cycle_schema(k: int) -> DatabaseSchema:
    """Schemes ``R0[A,B] .. Rk[A,B]``."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return DatabaseSchema(
        RelationSchema(relation_name(i), ("A", "B")) for i in range(k + 1)
    )


@dataclass
class CycleFamily:
    """The Section 6 instance for a given ``k``."""

    k: int
    schema: DatabaseSchema
    fds: list[FD]
    inds: list[IND]
    sigma: IND

    @property
    def dependencies(self) -> list[Dependency]:
        """The paper's Sigma (FDs then INDs)."""
        return [*self.fds, *self.inds]

    def ind_at(self, index: int) -> IND:
        """The IND ``Ri[A] c R(i+1)[B]`` (indices mod k+1)."""
        return self.inds[index % (self.k + 1)]


def cycle_family(k: int) -> CycleFamily:
    """Build Sigma and sigma for Section 6's Theorem 6.1.

    ``Sigma = {Ri: A -> B, Ri[A] c R(i+1)[B] : 0 <= i <= k}`` with
    addition modulo ``k+1``; ``sigma = R0[B] c Rk[A]``.
    """
    schema = cycle_schema(k)
    fds = [FD(relation_name(i), ("A",), ("B",)) for i in range(k + 1)]
    inds = [
        IND(relation_name(i), ("A",), relation_name((i + 1) % (k + 1)), ("B",))
        for i in range(k + 1)
    ]
    sigma = IND(relation_name(0), ("B",), relation_name(k), ("A",))
    return CycleFamily(k=k, schema=schema, fds=fds, inds=inds, sigma=sigma)


def figure_6_1(k: int, excluded: int | None = None) -> Database:
    """The Figure 6.1 Armstrong database for ``Gamma - delta``.

    ``delta`` is the IND ``R_excluded[A] c R_(excluded+1)[B]``; the
    paper draws the case ``excluded = k`` and appeals to cyclic
    symmetry for the rest — implemented here by relabelling relations.

    The canonical database (excluded = k):

    * ``r0 = {((0,0),(0,k+1)), ((1,0),(1,k+1)), ((2,0),(1,k+1))}``
    * ``ri = {((j,i),(j,i-1)) : 0 <= j <= 2i+1}
            u {((2i+2,i),(2i+1,i-1))}``   for ``1 <= i <= k``.
    """
    if excluded is None:
        excluded = k
    if not 0 <= excluded <= k:
        raise ValueError(f"excluded index {excluded} out of range 0..{k}")
    schema = cycle_schema(k)

    canonical: dict[int, list[tuple]] = {}
    canonical[0] = [
        ((0, 0), (0, k + 1)),
        ((1, 0), (1, k + 1)),
        ((2, 0), (1, k + 1)),
    ]
    for i in range(1, k + 1):
        rows = [((j, i), (j, i - 1)) for j in range(2 * i + 2)]
        rows.append(((2 * i + 2, i), (2 * i + 1, i - 1)))
        canonical[i] = rows

    # Relabel: the canonical database breaks the edge k -> 0; to break
    # edge ``excluded -> excluded+1`` instead, shift every canonical
    # relation index by ``excluded + 1`` (mod k+1).
    shift = (excluded + 1) % (k + 1)
    contents = {
        relation_name((i + shift) % (k + 1)): rows
        for i, rows in canonical.items()
    }
    return database(schema, contents)


def gamma_6(family: CycleFamily) -> set[Dependency]:
    """``Gamma``: Sigma plus every trivial FD, IND, and RD over the
    scheme (canonical representatives)."""
    trivial = {
        dep
        for dep in dependency_universe(family.schema, include_trivial=True)
        if dep.is_trivial()
    }
    return set(family.dependencies) | trivial


@dataclass
class Claim61Report:
    """Outcome of model-checking claim (6.1) for one excluded IND."""

    k: int
    excluded: int
    holds: bool
    wrongly_satisfied: list[Dependency] = field(default_factory=list)
    wrongly_violated: list[Dependency] = field(default_factory=list)

    def __str__(self) -> str:
        status = "holds" if self.holds else "FAILS"
        return (
            f"claim (6.1) {status} for k={self.k}, delta=IND#{self.excluded}"
            + (
                ""
                if self.holds
                else (
                    f"; wrongly satisfied: {list(map(str, self.wrongly_satisfied))},"
                    f" wrongly violated: {list(map(str, self.wrongly_violated))}"
                )
            )
        )


def verify_claim_6_1(k: int, excluded: int | None = None) -> Claim61Report:
    """Mechanically verify (6.1): ``d`` obeys an FD/IND/RD ``tau`` iff
    ``tau`` is in ``Gamma - delta``.

    Enumerates the complete canonical dependency universe over the
    scheme and model-checks every member against Figure 6.1.
    """
    family = cycle_family(k)
    if excluded is None:
        excluded = k
    delta = family.ind_at(excluded)
    db = figure_6_1(k, excluded)
    expected = gamma_6(family) - {delta}

    wrongly_satisfied: list[Dependency] = []
    wrongly_violated: list[Dependency] = []
    for tau in dependency_universe(family.schema, include_trivial=True):
        satisfied = db.satisfies(tau)
        in_gamma = tau in expected
        if satisfied and not in_gamma:
            wrongly_satisfied.append(tau)
        elif not satisfied and in_gamma:
            wrongly_violated.append(tau)
    return Claim61Report(
        k=k,
        excluded=excluded,
        holds=not wrongly_satisfied and not wrongly_violated,
        wrongly_satisfied=wrongly_satisfied,
        wrongly_violated=wrongly_violated,
    )


@dataclass
class Theorem61Report:
    """Full mechanical verification of Theorem 6.1 for a given ``k``."""

    k: int
    sigma_finitely_implied: bool
    sigma_not_unrestrictedly_implied: bool
    sigma_outside_gamma: bool
    claims: list[Claim61Report]
    pigeonhole: bool

    @property
    def establishes_theorem(self) -> bool:
        """All parts verified: Gamma is closed under k-ary finite
        implication (via the Armstrong databases + pigeonhole) but not
        closed under finite implication (Sigma |=fin sigma, sigma
        outside Gamma)."""
        return (
            self.sigma_finitely_implied
            and self.sigma_outside_gamma
            and self.pigeonhole
            and all(claim.holds for claim in self.claims)
        )

    def __str__(self) -> str:
        verdict = "ESTABLISHED" if self.establishes_theorem else "NOT established"
        lines = [
            f"Theorem 6.1 for k={self.k}: {verdict}",
            f"  Sigma |=fin sigma: {self.sigma_finitely_implied}",
            f"  Sigma |= sigma (unrestricted): "
            f"{not self.sigma_not_unrestrictedly_implied}",
            f"  sigma outside Gamma: {self.sigma_outside_gamma}",
            f"  pigeonhole (|Sigma_INDs| = k+1 > k): {self.pigeonhole}",
        ]
        lines.extend(f"  {claim}" for claim in self.claims)
        return "\n".join(lines)


def theorem_6_1_report(k: int) -> Theorem61Report:
    """Verify every ingredient of Theorem 6.1 for ``k``.

    * ``Sigma |=fin sigma`` via the unary finite-implication engine
      (the counting argument, algorithmically);
    * ``Sigma`` does **not** unrestrictedly imply ``sigma`` (the cycle
      rule is a finite-only phenomenon);
    * claim (6.1) for every choice of the excluded IND (model checks);
    * the pigeonhole fact ``|Sigma_INDs| = k+1 > k`` that converts the
      Armstrong databases into closure under k-ary implication:
      any <=k-subset ``T`` of ``Gamma`` misses some ``delta``, so the
      Figure 6.1 database for that ``delta`` satisfies ``T`` while
      violating everything outside ``Gamma - delta``; hence nothing
      outside ``Gamma`` is finitely implied by ``T``.
    """
    family = cycle_family(k)
    sigma = family.sigma
    premises = family.dependencies
    gamma = gamma_6(family)
    claims = [verify_claim_6_1(k, excluded) for excluded in range(k + 1)]
    return Theorem61Report(
        k=k,
        sigma_finitely_implied=finitely_implies_unary(premises, sigma),
        sigma_not_unrestrictedly_implied=not unrestricted_implies_unary(
            premises, sigma
        ),
        sigma_outside_gamma=sigma not in gamma,
        claims=claims,
        pigeonhole=len(family.inds) == k + 1,
    )


def make_finite_oracle(k: int):
    """A finite-implication oracle for the Section 6 scheme.

    Decision strategy, exact on the queries the Section 6 closure
    analysis generates:

    1. trivial targets are implied;
    2. if one of the Figure 6.1 databases (any excluded IND) satisfies
       all premises but violates the target, the implication fails —
       this is the refutation path that makes Gamma's k-ary closure
       checkable;
    3. otherwise, unary FD/IND questions go to the complete
       finite-implication engine (trivial premises dropped first);
    4. anything left is outside the fragment and raises.
    """
    from repro.exceptions import UnsupportedDependencyError

    refuters = [figure_6_1(k, j) for j in range(k + 1)]

    def oracle(premises: Iterable[Dependency], target: Dependency) -> bool:
        premise_list = [p for p in premises if not p.is_trivial()]
        if target.is_trivial():
            return True
        for db in refuters:
            if db.satisfies_all(premise_list) and not db.satisfies(target):
                return False
        if isinstance(target, (FD, IND)) and all(
            isinstance(p, (FD, IND)) for p in premise_list
        ):
            try:
                return finitely_implies_unary(premise_list, target)
            except UnsupportedDependencyError:
                pass
        raise UnsupportedDependencyError(
            f"Section 6 oracle cannot decide {target} from "
            f"{[str(p) for p in premise_list]}"
        )

    return oracle
