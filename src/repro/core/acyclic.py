"""Decidable fragment: FDs + *acyclic* INDs.

The implication problem for FDs and INDs together is undecidable
(Mitchell; Chandra & Vardi — cited in the paper), so the general chase
in :mod:`repro.core.fdind_chase` is only a budgeted semi-decision.
But when the INDs' relation-level flow graph is **acyclic**, the chase
provably terminates:

* IND steps only add tuples to relations *downstream* in the flow
  graph, and each source tuple spawns at most one witness tuple per
  IND, so the tuple count is bounded along the (finite) DAG;
* FD/RD steps only merge values, which strictly decreases the number
  of distinct values, so they terminate too.

This module packages that fact as a guaranteed decision procedure:
``decide_fdind_acyclic`` refuses cyclic inputs (rather than silently
degrading) and otherwise returns an exact answer with a certificate.

Together with the other engines this completes the decidability
landscape the paper sketches:

========================  ==========================================
fragment                  engine
========================  ==========================================
INDs alone                ``decide_ind`` (complete; PSPACE)
FDs alone                 ``fd_implies`` (complete; linear closure)
unary FDs + INDs          ``finite_unary`` (complete, both semantics)
FDs + acyclic INDs        **this module** (complete, unrestricted)
FDs + INDs, general       budgeted chase (semi-decision only;
                          undecidable in principle)
========================  ==========================================
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import UnsupportedDependencyError
from repro.core.fdind_chase import ImplicationCertificate, chase_implies
from repro.deps.base import Dependency
from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema


def ind_flow_is_acyclic(dependencies: Iterable[Dependency]) -> bool:
    """Whether the INDs' relation-level flow graph is a DAG.

    Self-loops (an IND from a relation into itself) count as cycles.
    Kahn's algorithm over relation names; FDs/RDs are ignored (they
    never add tuples).
    """
    edges: dict[str, set[str]] = {}
    indegree: dict[str, int] = {}
    nodes: set[str] = set()
    for dep in dependencies:
        if not isinstance(dep, IND):
            continue
        src, dst = dep.lhs_relation, dep.rhs_relation
        if src == dst:
            return False
        nodes.update((src, dst))
        if dst not in edges.setdefault(src, set()):
            edges[src].add(dst)
            indegree[dst] = indegree.get(dst, 0) + 1
    queue = [node for node in nodes if indegree.get(node, 0) == 0]
    visited = 0
    while queue:
        node = queue.pop()
        visited += 1
        for nxt in edges.get(node, ()):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    return visited == len(nodes)


def chase_termination_bound(
    schema: DatabaseSchema, dependencies: Iterable[Dependency]
) -> int:
    """A crude upper bound on the tuples an acyclic chase can create
    from a two-tuple start: along a topological order, each relation
    holds at most ``initial + sum(upstream x incoming INDs)`` tuples.

    Used to size the chase budget so that exhausting it would indicate
    a bug rather than a semantic possibility.
    """
    deps = list(dependencies)
    incoming: dict[str, list[IND]] = {}
    for dep in deps:
        if isinstance(dep, IND):
            incoming.setdefault(dep.rhs_relation, []).append(dep)

    bound: dict[str, int] = {}

    def relation_bound(name: str, stack: frozenset[str]) -> int:
        if name in bound:
            return bound[name]
        if name in stack:  # pragma: no cover - guarded by acyclicity
            raise UnsupportedDependencyError("cycle during bound computation")
        total = 2  # the initial tuples of the implication test
        for ind in incoming.get(name, ()):
            total += relation_bound(ind.lhs_relation, stack | {name})
        bound[name] = total
        return total

    return sum(relation_bound(rel.name, frozenset()) for rel in schema)


def decide_fdind_acyclic(
    schema: DatabaseSchema,
    premises: Iterable[Dependency],
    target: Dependency,
) -> ImplicationCertificate:
    """Exact (unrestricted) implication for FDs + acyclic INDs.

    Raises :class:`UnsupportedDependencyError` when the premises' IND
    flow graph has a cycle — callers then fall back to the budgeted
    general chase and must treat its budget exits as *unknown*.
    """
    premise_list = list(premises)
    if not ind_flow_is_acyclic(premise_list):
        raise UnsupportedDependencyError(
            "premise INDs form a cyclic flow graph; implication is only "
            "semi-decidable there — use chase_implies with a budget"
        )
    limit = chase_termination_bound(schema, premise_list)
    # The chase terminates within the bound; rounds are generous since
    # each round adds at least one tuple or merge until fixpoint.
    return chase_implies(
        schema,
        premise_list,
        target,
        max_rounds=max(50, limit + 10),
        max_tuples=max(1000, limit * 10),
    )
