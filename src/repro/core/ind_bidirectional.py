"""Bidirectional search for the IND decision problem.

An optimization on top of the Corollary 3.2 procedure: the expression
graph's edges can be traversed *backwards* as well — a premise
``Ri[C1..Ck] c Rj[D1..Dk]`` maps an expression over ``Rj`` whose
attributes all lie in ``D1..Dk`` back to the corresponding expression
over ``Ri``.  Meeting in the middle explores O(sqrt) of the nodes a
one-directional BFS touches on long-chain instances (benchmarked in
E2), while returning the same witness chains.

This does not change the worst-case complexity — the problem stays
PSPACE-complete — but it is the kind of engineering a production
implementation of the paper's procedure would ship.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.exceptions import SearchBudgetExceeded
from repro.deps.ind import IND
from repro.core.ind_decision import (
    ChainLink,
    DecisionResult,
    Expression,
    Premises,
    _candidates_for,
    expression_of_lhs,
    expression_of_rhs,
    index_by_lhs,
    index_by_rhs,
    successors,
)


def predecessors(
    expression: Expression, premises: Premises
) -> Iterable[tuple[Expression, ChainLink]]:
    """All expressions with an edge *into* ``expression``.

    A premise applies backwards when the expression's relation is the
    premise's right relation and every attribute occurs on the right
    side; the predecessor maps attributes through the inverse
    positional correspondence.  ``premises`` may be a flat collection
    or an ``index_by_rhs`` mapping.
    """
    relation, attrs = expression
    for premise in _candidates_for(premises, relation):
        if premise.rhs_relation != relation:
            continue
        rhs = premise.rhs_attributes
        positions: list[int] = []
        applicable = True
        for attr in attrs:
            try:
                positions.append(rhs.index(attr))
            except ValueError:
                applicable = False
                break
        if not applicable:
            continue
        source = tuple(premise.lhs_attributes[p] for p in positions)
        yield (premise.lhs_relation, source), ChainLink(premise, tuple(positions))


def decide_ind_bidirectional(
    target: IND,
    premises: Iterable[IND],
    max_nodes: int = 2_000_000,
) -> DecisionResult:
    """Meet-in-the-middle decision; same contract as ``decide_ind``.

    Alternates expansion of the smaller frontier.  When the frontiers
    meet, the two half-chains are stitched into a full Corollary 3.2
    witness.
    """
    premise_list = list(premises)
    forward_index = index_by_lhs(premise_list)
    backward_index = index_by_rhs(premise_list)
    start = expression_of_lhs(target)
    goal = expression_of_rhs(target)
    if start == goal:
        return DecisionResult(
            implied=True, target=target, chain=[start], links=[], explored=1
        )

    forward_parent: dict[Expression, tuple[Expression, ChainLink]] = {}
    backward_child: dict[Expression, tuple[Expression, ChainLink]] = {}
    forward_seen: set[Expression] = {start}
    backward_seen: set[Expression] = {goal}
    forward_queue: deque[Expression] = deque([start])
    backward_queue: deque[Expression] = deque([goal])
    explored = 0

    def stitch(meeting: Expression) -> DecisionResult:
        chain_front: list[Expression] = [meeting]
        links_front: list[ChainLink] = []
        node = meeting
        while node != start:
            prev, link = forward_parent[node]
            chain_front.append(prev)
            links_front.append(link)
            node = prev
        chain_front.reverse()
        links_front.reverse()

        chain_back: list[Expression] = []
        links_back: list[ChainLink] = []
        node = meeting
        while node != goal:
            nxt, link = backward_child[node]
            chain_back.append(nxt)
            links_back.append(link)
            node = nxt
        return DecisionResult(
            implied=True,
            target=target,
            chain=chain_front + chain_back,
            links=links_front + links_back,
            explored=explored,
        )

    while forward_queue or backward_queue:
        expand_forward = bool(forward_queue) and (
            not backward_queue or len(forward_queue) <= len(backward_queue)
        )
        if expand_forward:
            for _ in range(len(forward_queue)):
                current = forward_queue.popleft()
                explored += 1
                if explored > max_nodes:
                    raise SearchBudgetExceeded(
                        f"bidirectional search exceeded {max_nodes} nodes",
                        explored=explored,
                    )
                for nxt, link in successors(current, forward_index):
                    if nxt in forward_seen:
                        continue
                    forward_seen.add(nxt)
                    forward_parent[nxt] = (current, link)
                    if nxt in backward_seen:
                        return stitch(nxt)
                    forward_queue.append(nxt)
        else:
            for _ in range(len(backward_queue)):
                current = backward_queue.popleft()
                explored += 1
                if explored > max_nodes:
                    raise SearchBudgetExceeded(
                        f"bidirectional search exceeded {max_nodes} nodes",
                        explored=explored,
                    )
                for prev, link in predecessors(current, backward_index):
                    if prev in backward_seen:
                        continue
                    backward_seen.add(prev)
                    backward_child[prev] = (current, link)
                    if prev in forward_seen:
                        return stitch(prev)
                    backward_queue.append(prev)
        if not forward_queue and not backward_queue:
            break

    return DecisionResult(implied=False, target=target, explored=explored)
