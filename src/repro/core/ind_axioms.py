"""The complete axiomatization for INDs (paper, Section 3).

The three inference rules:

* **IND1 (reflexivity)** — ``R[X] c R[X]`` for any sequence ``X`` of
  distinct attributes of ``R``;
* **IND2 (projection and permutation)** — from
  ``R[A1,...,Am] c S[B1,...,Bm]`` derive
  ``R[A_i1,...,A_ik] c S[B_i1,...,B_ik]`` for any sequence
  ``i1,...,ik`` of distinct indices;
* **IND3 (transitivity)** — from ``R[X] c S[Y]`` and ``S[Y] c T[Z]``
  derive ``R[X] c T[Z]``.

Theorem 3.1 shows these are sound and complete, for both finite and
unrestricted implication.  This module provides the rules as checked
operations, a :class:`Proof` object in the paper's sense (a finite
sequence of INDs, each a premise or a rule application on earlier
lines), and an independent :func:`check_proof` verifier.

The verifier is deliberately strict: transitivity requires the middle
expressions to match as *sequences* (reorderings must be made explicit
via IND2), mirroring the formal system exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import DependencyError, ProofError
from repro.deps.ind import IND
from repro.model.attributes import check_distinct
from repro.model.schema import DatabaseSchema


def sequences_equal(first: IND, second: IND) -> bool:
    """Syntactic (sequence-level) identity of two INDs.

    ``IND.__eq__`` identifies INDs up to simultaneous permutation of
    both sides; proof checking needs the stricter notion.
    """
    return (
        first.lhs_relation == second.lhs_relation
        and first.lhs_attributes == second.lhs_attributes
        and first.rhs_relation == second.rhs_relation
        and first.rhs_attributes == second.rhs_attributes
    )


def reflexivity(relation: str, attributes: str | Iterable[str]) -> IND:
    """Rule IND1: the axiom ``R[X] c R[X]``."""
    attrs = check_distinct(attributes, context="IND1 attribute sequence")
    return IND(relation, attrs, relation, attrs)


def apply_projection(ind: IND, indices: Sequence[int]) -> IND:
    """Rule IND2: project and permute both sides of ``ind`` by
    zero-based ``indices`` (distinct, non-empty)."""
    return ind.project_onto(indices)


def apply_transitivity(first: IND, second: IND) -> IND:
    """Rule IND3: compose ``R[X] c S[Y]`` with ``S[Y] c T[Z]``.

    The middle expression must match exactly as a sequence.
    """
    if first.rhs_relation != second.lhs_relation or (
        first.rhs_attributes != second.lhs_attributes
    ):
        raise DependencyError(
            f"IND3 middle mismatch: {first} then {second}"
        )
    return IND(
        first.lhs_relation,
        first.lhs_attributes,
        second.rhs_relation,
        second.rhs_attributes,
    )


# ---------------------------------------------------------------------------
# Proof objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Justification:
    """Base marker class for proof-step justifications."""

    rule: str = field(init=False, default="?")


@dataclass(frozen=True)
class ByHypothesis(Justification):
    """The step's IND is one of the premises."""

    rule: str = field(init=False, default="hypothesis")


@dataclass(frozen=True)
class ByReflexivity(Justification):
    """The step's IND is an instance of IND1."""

    rule: str = field(init=False, default="IND1")


@dataclass(frozen=True)
class ByProjection(Justification):
    """IND2 applied to an earlier step with the given index selection."""

    source: int
    indices: tuple[int, ...]
    rule: str = field(init=False, default="IND2")


@dataclass(frozen=True)
class ByTransitivity(Justification):
    """IND3 applied to two earlier steps."""

    first: int
    second: int
    rule: str = field(init=False, default="IND3")


@dataclass(frozen=True)
class ProofStep:
    """One line of a proof: an IND plus its justification."""

    ind: IND
    justification: Justification

    def __str__(self) -> str:
        just = self.justification
        if isinstance(just, ByProjection):
            detail = f"IND2 on line {just.source}, indices {list(just.indices)}"
        elif isinstance(just, ByTransitivity):
            detail = f"IND3 on lines {just.first}, {just.second}"
        elif isinstance(just, ByReflexivity):
            detail = "IND1"
        else:
            detail = "hypothesis"
        return f"{self.ind}    [{detail}]"


class Proof:
    """A formal proof: a finite sequence of justified INDs.

    Matches the paper's definition: each line is either a member of the
    premise set or follows from earlier lines by IND1-IND3; the last
    line is the conclusion.
    """

    def __init__(self, premises: Iterable[IND], steps: Iterable[ProofStep]):
        self.premises = list(premises)
        self.steps = list(steps)
        if not self.steps:
            raise ProofError("a proof must contain at least one step")

    @property
    def conclusion(self) -> IND:
        return self.steps[-1].ind

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __str__(self) -> str:
        lines = [f"premises: {', '.join(str(p) for p in self.premises)}"]
        for index, step in enumerate(self.steps):
            lines.append(f"  {index}: {step}")
        return "\n".join(lines)


def check_proof(
    proof: Proof,
    schema: DatabaseSchema | None = None,
    expected_conclusion: IND | None = None,
) -> bool:
    """Independently verify a proof object line by line.

    Checks that every step is justified, optionally that all INDs are
    well-formed over ``schema``, and optionally that the conclusion is
    (sequence-)equal to ``expected_conclusion``.  Raises
    :class:`ProofError` with the offending line on failure.
    """
    for line, step in enumerate(proof.steps):
        ind = step.ind
        just = step.justification
        if schema is not None:
            try:
                ind.validate(schema)
            except DependencyError as exc:
                raise ProofError(f"line {line}: malformed IND: {exc}") from exc
        if isinstance(just, ByHypothesis):
            if not any(sequences_equal(ind, premise) for premise in proof.premises):
                raise ProofError(f"line {line}: {ind} is not a premise")
        elif isinstance(just, ByReflexivity):
            if not (
                ind.lhs_relation == ind.rhs_relation
                and ind.lhs_attributes == ind.rhs_attributes
            ):
                raise ProofError(f"line {line}: {ind} is not an IND1 instance")
        elif isinstance(just, ByProjection):
            if not 0 <= just.source < line:
                raise ProofError(f"line {line}: IND2 source {just.source} not earlier")
            try:
                derived = apply_projection(proof.steps[just.source].ind, just.indices)
            except DependencyError as exc:
                raise ProofError(f"line {line}: invalid IND2 application: {exc}") from exc
            if not sequences_equal(derived, ind):
                raise ProofError(
                    f"line {line}: IND2 yields {derived}, not {ind}"
                )
        elif isinstance(just, ByTransitivity):
            if not (0 <= just.first < line and 0 <= just.second < line):
                raise ProofError(f"line {line}: IND3 sources not earlier than line")
            try:
                derived = apply_transitivity(
                    proof.steps[just.first].ind, proof.steps[just.second].ind
                )
            except DependencyError as exc:
                raise ProofError(f"line {line}: invalid IND3 application: {exc}") from exc
            if not sequences_equal(derived, ind):
                raise ProofError(f"line {line}: IND3 yields {derived}, not {ind}")
        else:  # pragma: no cover - defensive
            raise ProofError(f"line {line}: unknown justification {just!r}")
    if expected_conclusion is not None and not sequences_equal(
        proof.conclusion, expected_conclusion
    ):
        raise ProofError(
            f"conclusion {proof.conclusion} differs from expected {expected_conclusion}"
        )
    return True
