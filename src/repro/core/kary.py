"""Section 5: when does a k-ary complete axiomatization exist?

A rule "if T then tau" is *k-ary* when |T| <= k.  Theorem 5.1 gives
the exact criterion:

    There is a k-ary complete axiomatization for the sentences S over
    a scheme D **iff** every subset of S closed under k-ary
    implication is closed under implication.

Corollary 5.2 packages a sufficient condition for *non*-existence used
for the Sagiv-Walecka EMVD result (Theorem 5.3), and Sections 6-7
apply Theorem 5.1 directly to FDs + INDs (+ RDs).

Everything here is parameterized by an implication *oracle*
``oracle(premises, target) -> bool`` so the same machinery serves
finite implication (Section 6), unrestricted implication (Section 7),
and EMVD implication (Theorem 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Iterable, Optional, Sequence

from repro.deps.base import Dependency

Oracle = Callable[[Sequence[Dependency], Dependency], bool]
"""Implication oracle: does the premise list imply the target?"""


def implication_closure(
    gamma: Iterable[Dependency],
    universe: Iterable[Dependency],
    oracle: Oracle,
) -> set[Dependency]:
    """``{tau in universe : gamma |= tau}`` under the given oracle."""
    gamma_list = list(gamma)
    return {tau for tau in universe if oracle(gamma_list, tau)}


def is_closed_under_implication(
    gamma: Iterable[Dependency],
    universe: Iterable[Dependency],
    oracle: Oracle,
) -> bool:
    """Whether ``gamma`` already contains every universe consequence."""
    gamma_set = set(gamma)
    return implication_closure(gamma_set, universe, oracle) <= gamma_set


@dataclass
class KaryViolation:
    """Witness that a set is *not* closed under k-ary implication."""

    premises: tuple[Dependency, ...]
    consequence: Dependency

    def __str__(self) -> str:
        premise_text = ", ".join(str(p) for p in self.premises)
        return f"{{{premise_text}}} |= {self.consequence} but it is missing"


def find_kary_violation(
    gamma: Iterable[Dependency],
    universe: Iterable[Dependency],
    k: int,
    oracle: Oracle,
) -> Optional[KaryViolation]:
    """Search for a <=k-subset of ``gamma`` implying something outside it.

    Returns ``None`` when ``gamma`` is closed under k-ary implication.
    Exhaustive over subsets, so intended for the paper-scale premise
    sets (the Sigma families), not arbitrary inputs.
    """
    gamma_list = list(dict.fromkeys(gamma))
    gamma_set = set(gamma_list)
    outside = [tau for tau in universe if tau not in gamma_set]
    if not outside:
        return None
    for size in range(0, k + 1):
        for subset in combinations(gamma_list, size):
            for tau in outside:
                if oracle(list(subset), tau):
                    return KaryViolation(subset, tau)
    return None


def is_closed_under_kary_implication(
    gamma: Iterable[Dependency],
    universe: Iterable[Dependency],
    k: int,
    oracle: Oracle,
) -> bool:
    """Whether ``gamma`` is closed under k-ary implication."""
    return find_kary_violation(gamma, universe, k, oracle) is None


@dataclass
class ClosureGapWitness:
    """The Theorem 5.1 witness: a set closed under k-ary implication
    but not under implication — certifying that **no** k-ary complete
    axiomatization exists for the universe."""

    gamma: set[Dependency]
    k: int
    missing_consequence: Dependency
    implying_subset: tuple[Dependency, ...]

    def __str__(self) -> str:
        return (
            f"Gamma (|Gamma|={len(self.gamma)}) is closed under "
            f"{self.k}-ary implication, yet "
            f"{self.missing_consequence} is implied (by "
            f"{len(self.implying_subset)} premises) and missing: no "
            f"{self.k}-ary complete axiomatization exists."
        )


def certify_no_kary_axiomatization(
    gamma: Iterable[Dependency],
    universe: Iterable[Dependency],
    k: int,
    oracle: Oracle,
    implying_subset: Optional[Sequence[Dependency]] = None,
    missing: Optional[Dependency] = None,
) -> ClosureGapWitness:
    """Verify a Theorem 5.1 witness end to end.

    Checks (raising ``AssertionError`` with diagnostics on failure):

    1. ``gamma`` is closed under k-ary implication;
    2. some subset of ``gamma`` implies ``missing`` which is outside
       ``gamma`` (the caller may supply the subset, typically the
       paper's Sigma, to avoid a blind search).
    """
    gamma_set = set(gamma)
    violation = find_kary_violation(gamma_set, universe, k, oracle)
    if violation is not None:
        raise AssertionError(
            f"gamma is NOT closed under {k}-ary implication: {violation}"
        )
    if implying_subset is None or missing is None:
        raise AssertionError("caller must supply the implying subset and target")
    subset = tuple(implying_subset)
    if not set(subset) <= gamma_set:
        raise AssertionError("implying subset is not inside gamma")
    if missing in gamma_set:
        raise AssertionError(f"{missing} is already in gamma")
    if not oracle(list(subset), missing):
        raise AssertionError(
            f"supplied subset does not imply {missing} under the oracle"
        )
    return ClosureGapWitness(
        gamma=gamma_set,
        k=k,
        missing_consequence=missing,
        implying_subset=subset,
    )


@dataclass
class Corollary52Report:
    """Checked conditions (i)-(iii) of Corollary 5.2."""

    condition_i: bool
    condition_ii: bool
    condition_iii: bool
    detail: str = ""

    @property
    def all_hold(self) -> bool:
        return self.condition_i and self.condition_ii and self.condition_iii


def corollary_5_2_conditions(
    sigma: Sequence[Dependency],
    target: Dependency,
    universe: Iterable[Dependency],
    k: int,
    oracle: Oracle,
) -> Corollary52Report:
    """Check Corollary 5.2's conditions.

    (i) ``sigma |= target``;
    (ii) no single member of ``sigma`` implies ``target``;
    (iii) whenever a <=k-subset of ``sigma`` implies a universe
    sentence, some single member already implies it.

    When all hold, no k-ary complete axiomatization exists for the
    universe (over that scheme).
    """
    universe_list = list(universe)
    cond_i = oracle(list(sigma), target)
    cond_ii = not any(oracle([member], target) for member in sigma)
    cond_iii = True
    detail = ""
    for size in range(0, k + 1):
        if not cond_iii:
            break
        for subset in combinations(sigma, size):
            if not cond_iii:
                break
            for tau in universe_list:
                if oracle(list(subset), tau) and not any(
                    oracle([member], tau) for member in subset
                ):
                    cond_iii = False
                    detail = (
                        f"condition (iii) fails: {list(map(str, subset))} "
                        f"imply {tau} but no single member does"
                    )
                    break
    return Corollary52Report(cond_i, cond_ii, cond_iii, detail)
