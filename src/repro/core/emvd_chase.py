"""EMVD implication and the Sagiv-Walecka family (Theorem 5.3).

Section 5 re-derives Sagiv and Walecka's result — for no ``k`` is
there a k-ary complete axiomatization for embedded multivalued
dependencies — as an instance of Corollary 5.2.  The witness family
over ``R[A1,...,A(k+1), B]``:

    ``Sigma_k = {A1 ->> A2 | B, ..., Ak ->> A(k+1) | B,
                 A(k+1) ->> A1 | B}``
    ``sigma_k = A1 ->> A(k+1) | B``

The cyclic structure is essential: the whole of ``Sigma_k`` implies
``sigma_k``, but no proper subset does.

EMVD implication is undecidable in general, so this module provides a
*composite* decision strategy, exact on the queries the Theorem 5.3
verification generates:

* a bounded tableau **chase** (sound for positive answers: every chase
  step is a logical consequence);
* an **exhaustive small-model search** over domains of size 2 (sound
  for negative answers: a found model satisfying the premises and
  violating the target is a genuine counterexample);
* a clean ``Undecided`` outcome when neither side lands within budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterable, Optional, Sequence

from repro.exceptions import SearchBudgetExceeded
from repro.deps.emvd import EMVD
from repro.model.relation import Relation
from repro.model.schema import RelationSchema

Row = tuple


@dataclass
class EmvdDecision:
    """Outcome of the composite EMVD implication procedure."""

    implied: Optional[bool]  # None = undecided within budgets
    method: str
    counterexample: Optional[frozenset[Row]] = None

    @property
    def decided(self) -> bool:
        return self.implied is not None


def _agree(row1: Row, row2: Row, positions: Sequence[int]) -> bool:
    return all(row1[p] == row2[p] for p in positions)


def _required_tuple_exists(
    rows: Iterable[Row],
    t1: Row,
    t2: Row,
    xy_pos: Sequence[int],
    xz_pos: Sequence[int],
) -> bool:
    for candidate in rows:
        if _agree(candidate, t1, xy_pos) and _agree(candidate, t2, xz_pos):
            return True
    return False


def _positions(schema: RelationSchema, attrs: Iterable[str]) -> tuple[int, ...]:
    return tuple(schema.position(a) for a in sorted(attrs))


def relation_satisfies_emvd(schema: RelationSchema, rows: frozenset[Row],
                            emvd: EMVD) -> bool:
    """Direct satisfaction test on a raw row set."""
    x_pos = _positions(schema, emvd.x)
    xy_pos = _positions(schema, emvd.x | emvd.y)
    xz_pos = _positions(schema, emvd.x | emvd.z)
    row_list = list(rows)
    for t1 in row_list:
        for t2 in row_list:
            if not _agree(t1, t2, x_pos):
                continue
            if not _required_tuple_exists(row_list, t1, t2, xy_pos, xz_pos):
                return False
    return True


def emvd_chase(
    schema: RelationSchema,
    premises: Sequence[EMVD],
    target: EMVD,
    max_rounds: int = 12,
    max_tuples: int = 4_000,
) -> Optional[bool]:
    """Bounded chase: ``True`` when the target's witness tuple is
    derived (sound), ``None`` when the budget runs out undecided,
    ``False`` when the chase *terminates* without deriving it (the
    fixpoint is then a counterexample, so this is exact).

    The initial tableau holds two tuples agreeing exactly on the
    target's ``X``; chase steps add the (partially fresh) witness
    tuples EMVDs demand.
    """
    arity = schema.arity
    next_fresh = [0]

    def fresh() -> str:
        next_fresh[0] += 1
        return f"_n{next_fresh[0]}"

    x_pos = set(_positions(schema, target.x))
    t1 = tuple(f"v{p}" if p in x_pos else f"l{p}" for p in range(arity))
    t2 = tuple(f"v{p}" if p in x_pos else f"r{p}" for p in range(arity))
    rows: set[Row] = {t1, t2}

    goal_xy = _positions(schema, target.x | target.y)
    goal_xz = _positions(schema, target.x | target.z)

    premise_positions = [
        (
            _positions(schema, p.x),
            _positions(schema, p.x | p.y),
            _positions(schema, p.x | p.z),
            _positions(schema, p.x | p.y | p.z),
        )
        for p in premises
    ]

    for _round in range(max_rounds):
        if _required_tuple_exists(rows, t1, t2, goal_xy, goal_xz):
            return True
        additions: set[Row] = set()
        row_list = list(rows)
        for premise, (px, pxy, pxz, pxyz) in zip(premises, premise_positions):
            for u1 in row_list:
                for u2 in row_list:
                    if not _agree(u1, u2, px):
                        continue
                    if _required_tuple_exists(rows, u1, u2, pxy, pxz):
                        continue
                    if _required_tuple_exists(additions, u1, u2, pxy, pxz):
                        continue
                    witness = [None] * arity
                    for p in pxy:
                        witness[p] = u1[p]
                    for p in pxz:
                        witness[p] = u2[p]
                    for p in range(arity):
                        if witness[p] is None:
                            witness[p] = fresh()
                    additions.add(tuple(witness))
        if not additions:
            # Fixpoint: the tableau is a model of the premises in which
            # t1, t2 agree exactly on the target's X; the goal witness
            # was checked (absent) at the top of this round, so the
            # tableau refutes the implication.
            return False
        rows |= additions
        if len(rows) > max_tuples:
            return None
    if _required_tuple_exists(rows, t1, t2, goal_xy, goal_xz):
        return True
    return None


def exhaustive_refutation(
    schema: RelationSchema,
    premises: Sequence[EMVD],
    target: EMVD,
    domain: Sequence = (0, 1),
    max_relations: int = 1 << 22,
) -> Optional[frozenset[Row]]:
    """Search all relations over a tiny domain for a counterexample.

    Returns a row set satisfying every premise and violating the
    target, or ``None`` when none exists over this domain (which does
    *not* prove implication).  The search space is
    ``2^(|domain|^arity)``; a budget guards against misuse.
    """
    tuples = list(product(domain, repeat=schema.arity))
    if 1 << len(tuples) > max_relations:
        raise SearchBudgetExceeded(
            f"refutation space 2^{len(tuples)} exceeds budget"
        )
    # Enumerate subsets in order of increasing size for small witnesses.
    indices = range(len(tuples))
    for size in range(1, len(tuples) + 1):
        for combo in combinations(indices, size):
            rows = frozenset(tuples[i] for i in combo)
            if relation_satisfies_emvd(schema, rows, target):
                continue
            if all(relation_satisfies_emvd(schema, rows, p) for p in premises):
                return rows
    return None


def emvd_implies(
    schema: RelationSchema,
    premises: Sequence[EMVD],
    target: EMVD,
    chase_rounds: int = 12,
    refute_domain: Sequence = (0, 1),
) -> EmvdDecision:
    """Composite decision: chase for yes, tiny-model search for no."""
    if target.is_trivial():
        return EmvdDecision(True, "trivial")
    chase_answer = emvd_chase(schema, premises, target, max_rounds=chase_rounds)
    if chase_answer is True:
        return EmvdDecision(True, "chase")
    if chase_answer is False:
        return EmvdDecision(False, "chase-fixpoint")
    witness = exhaustive_refutation(schema, premises, target, domain=refute_domain)
    if witness is not None:
        return EmvdDecision(False, "small-model", counterexample=witness)
    return EmvdDecision(None, "undecided")


# ---------------------------------------------------------------------------
# The Sagiv-Walecka family
# ---------------------------------------------------------------------------


@dataclass
class SagivWaleckaFamily:
    """``Sigma_k`` and ``sigma_k`` over ``R[A1..A(k+1), B]``."""

    k: int
    schema: RelationSchema
    sigma: list[EMVD]
    target: EMVD


def sagiv_walecka_family(k: int) -> SagivWaleckaFamily:
    """Build the Theorem 5.3 witness family for ``k >= 2``."""
    if k < 2:
        raise ValueError("the family is non-degenerate only for k >= 2")
    attrs = [f"A{i}" for i in range(1, k + 2)] + ["B"]
    schema = RelationSchema("R", attrs)
    sigma = [
        EMVD("R", (f"A{i}",), (f"A{i + 1}",), ("B",)) for i in range(1, k + 1)
    ]
    sigma.append(EMVD("R", (f"A{k + 1}",), ("A1",), ("B",)))
    target = EMVD("R", ("A1",), (f"A{k + 1}",), ("B",))
    return SagivWaleckaFamily(k=k, schema=schema, sigma=sigma, target=target)


@dataclass
class Theorem53Report:
    """Checked conditions of Corollary 5.2 for the SW family."""

    k: int
    condition_i: bool
    condition_ii: bool
    condition_iii_checked: int
    condition_iii_failures: list[str]
    undecided: list[str]

    @property
    def establishes_theorem(self) -> bool:
        return (
            self.condition_i
            and self.condition_ii
            and not self.condition_iii_failures
            and not self.undecided
        )

    def __str__(self) -> str:
        verdict = (
            "ESTABLISHED" if self.establishes_theorem else "NOT established"
        )
        return (
            f"Theorem 5.3 for k={self.k}: {verdict} — (i)={self.condition_i}, "
            f"(ii)={self.condition_ii}, (iii) checked on "
            f"{self.condition_iii_checked} queries with "
            f"{len(self.condition_iii_failures)} failures, "
            f"{len(self.undecided)} undecided"
        )


def theorem_5_3_report(
    k: int,
    universe: Optional[Sequence[EMVD]] = None,
    max_universe: int = 200,
) -> Theorem53Report:
    """Mechanically check Corollary 5.2's conditions on the SW family.

    (i) ``Sigma_k |= sigma_k`` (chase); (ii) no single member implies
    the target (small-model refutations); (iii) over the (optionally
    truncated) EMVD universe, every <=k-subset implication is already
    witnessed by a single member.
    """
    from repro.deps.enumeration import all_emvds

    family = sagiv_walecka_family(k)
    schema = family.schema

    decision_i = emvd_implies(schema, family.sigma, family.target)
    condition_i = decision_i.implied is True

    condition_ii = True
    undecided: list[str] = []
    for member in family.sigma:
        decision = emvd_implies(schema, [member], family.target)
        if decision.implied is True:
            condition_ii = False
        elif decision.implied is None:
            undecided.append(f"(ii) {member} |= target undecided")

    if universe is None:
        universe = list(all_emvds(schema))[:max_universe]
    checked = 0
    failures: list[str] = []
    for size in range(1, k + 1):
        for subset in combinations(family.sigma, size):
            for tau in universe:
                checked += 1
                decision = emvd_implies(schema, list(subset), tau)
                if decision.implied is None:
                    undecided.append(
                        f"(iii) {[str(s) for s in subset]} |= {tau} undecided"
                    )
                    continue
                if decision.implied:
                    singles = [
                        emvd_implies(schema, [member], tau).implied
                        for member in subset
                    ]
                    if not any(s is True for s in singles):
                        failures.append(
                            f"{[str(s) for s in subset]} |= {tau}, no single member does"
                        )
    return Theorem53Report(
        k=k,
        condition_i=condition_i,
        condition_ii=condition_ii,
        condition_iii_checked=checked,
        condition_iii_failures=failures,
        undecided=undecided,
    )
