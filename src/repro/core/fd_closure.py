"""The functional-dependency substrate.

The paper repeatedly leans on classical FD theory: the decision
procedure for FDs is the template for the Corollary 3.2 procedure
("Our procedure is quite similar to a decision procedure for FDs
[BB]"), and the Section 7 constructions compute closures ``phi+`` of
FD sets.  This module implements attribute-set closure, FD
implication, implied-FD enumeration, minimal covers, and candidate
keys from scratch.

Set semantics are used throughout (FD satisfaction depends only on the
attribute sets).  Empty left-hand sides are supported: ``R: 0 -> A``
forces column ``A`` to be constant.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.deps.fd import FD
from repro.model.schema import RelationSchema


def _relevant(fds: Iterable[FD], relation: str) -> list[FD]:
    """FDs over ``relation`` only; FDs cannot cross relation schemes."""
    return [fd for fd in fds if fd.relation == relation]


class FDClosureKernel:
    """An FD set compiled for linear-time attribute closure.

    The Beeri–Bernstein procedure the paper cites as the template for
    its own IND algorithm ("[BB]"): per-FD counters of left-hand
    attributes not yet in the closure, plus attribute -> FD incidence
    lists.  Each attribute enters the closure once and decrements each
    incident counter once, so one closure query is ``O(total FD
    size)`` instead of the quadratic re-scan fixpoint (retained as
    :func:`attribute_closure_naive` for differential testing).

    Compile once per FD set — ``PremiseIndex`` keeps one kernel per
    relation and reuses it across every closure, implication,
    candidate-key, and session-memo query until that relation's FDs
    mutate.
    """

    __slots__ = ("fds", "_lhs_sizes", "_rhs", "_by_attr", "_instant")

    def __init__(self, fds: Iterable[FD]):
        self.fds: tuple[FD, ...] = tuple(fds)
        self._lhs_sizes: list[int] = []
        self._rhs: list[tuple[str, ...]] = []
        by_attr: dict[str, list[int]] = {}
        self._instant: list[int] = []  # empty-lhs FDs fire unconditionally
        for index, fd in enumerate(self.fds):
            lhs = fd.lhs_set
            self._lhs_sizes.append(len(lhs))
            self._rhs.append(tuple(fd.rhs_set))
            if not lhs:
                self._instant.append(index)
            for attr in lhs:
                by_attr.setdefault(attr, []).append(index)
        self._by_attr: dict[str, tuple[int, ...]] = {
            attr: tuple(indices) for attr, indices in by_attr.items()
        }

    def closure(self, attrs: Iterable[str]) -> frozenset[str]:
        """The closure ``X+`` of ``attrs``, in linear time."""
        closure = set(attrs)
        counts = list(self._lhs_sizes)
        queue = list(closure)
        rhs = self._rhs
        by_attr = self._by_attr
        for index in self._instant:
            for attr in rhs[index]:
                if attr not in closure:
                    closure.add(attr)
                    queue.append(attr)
        while queue:
            attr = queue.pop()
            for index in by_attr.get(attr, ()):
                counts[index] -= 1
                if counts[index] == 0:
                    for added in rhs[index]:
                        if added not in closure:
                            closure.add(added)
                            queue.append(added)
        return frozenset(closure)

    def implies(self, fd: FD) -> bool:
        """Whether this kernel's FD set implies ``fd`` (same relation)."""
        return fd.rhs_set <= self.closure(fd.lhs_set)


def attribute_closure(
    attrs: Iterable[str],
    fds: Iterable[FD],
    relation: str | None = None,
) -> frozenset[str]:
    """The closure ``X+`` of an attribute set under a set of FDs.

    Linear in the total size of the FD set (the [BB] counter
    procedure; see :class:`FDClosureKernel`).  When ``relation`` is
    given, only FDs over that relation participate.  Callers issuing
    many queries against one FD set should compile a kernel once and
    reuse it instead.

    >>> fds = [FD("R", "A", "B"), FD("R", "B", "C")]
    >>> sorted(attribute_closure({"A"}, fds))
    ['A', 'B', 'C']
    """
    pool = list(fds) if relation is None else _relevant(fds, relation)
    return FDClosureKernel(pool).closure(attrs)


def attribute_closure_naive(
    attrs: Iterable[str],
    fds: Iterable[FD],
    relation: str | None = None,
) -> frozenset[str]:
    """The textbook quadratic fixpoint, retained as the differential
    reference for :class:`FDClosureKernel`: repeatedly add ``Y``
    whenever some FD ``W -> Y`` has ``W`` inside the current set."""
    closure = set(attrs)
    pool = list(fds) if relation is None else _relevant(fds, relation)
    changed = True
    while changed:
        changed = False
        remaining = []
        for fd in pool:
            if fd.lhs_set <= closure:
                new = fd.rhs_set - closure
                if new:
                    closure |= new
                    changed = True
            else:
                remaining.append(fd)
        pool = remaining
    return frozenset(closure)


def fd_implies(fds: Iterable[FD], fd: FD) -> bool:
    """Whether a set of FDs logically implies ``fd``.

    For FDs, finite and unrestricted implication coincide, and both are
    decided by closure: ``Sigma implies X -> Y`` iff ``Y`` is inside
    ``X+`` computed over the FDs of the same relation.
    """
    closure = attribute_closure(fd.lhs_set, fds, relation=fd.relation)
    return fd.rhs_set <= closure


def implied_fds(
    fds: Iterable[FD],
    schema: RelationSchema,
    include_trivial: bool = True,
    singleton_rhs: bool = True,
) -> set[FD]:
    """All FDs over ``schema`` implied by ``fds`` (the paper's ``phi+``).

    Used by the Section 7 verifications, which compare the FDs holding
    in a constructed database against the closure of a designated set.
    """
    from repro.deps.enumeration import all_fds

    kernel = FDClosureKernel(_relevant(fds, schema.name))
    result: set[FD] = set()
    for candidate in all_fds(
        schema,
        include_trivial=include_trivial,
        singleton_rhs=singleton_rhs,
    ):
        if kernel.implies(candidate):
            result.add(candidate)
    return result


def equivalent_fd_sets(first: Iterable[FD], second: Iterable[FD]) -> bool:
    """Whether two FD sets imply each other."""
    first, second = list(first), list(second)
    return all(fd_implies(first, fd) for fd in second) and all(
        fd_implies(second, fd) for fd in first
    )


def minimal_cover(fds: Iterable[FD]) -> list[FD]:
    """A minimal (canonical) cover: singleton rhs, no redundant
    attributes on the left, no redundant FDs.

    The result is logically equivalent to the input.
    """
    # Step 1: singleton right-hand sides.
    working: list[FD] = []
    for fd in fds:
        working.extend(fd.decompose())
    # Step 2: remove extraneous lhs attributes.
    reduced: list[FD] = []
    for fd in working:
        lhs = list(fd.lhs)
        changed = True
        while changed and len(lhs) > 0:
            changed = False
            for attr in list(lhs):
                candidate = [a for a in lhs if a != attr]
                trial = FD(fd.relation, candidate or None, fd.rhs)
                if fd_implies(working, trial):
                    lhs = candidate
                    changed = True
                    break
        reduced.append(FD(fd.relation, lhs or None, fd.rhs))
    # Step 3: remove redundant FDs.
    result = list(dict.fromkeys(reduced))  # dedupe, keep order
    index = 0
    while index < len(result):
        fd = result[index]
        rest = result[:index] + result[index + 1:]
        if fd_implies(rest, fd):
            result = rest
        else:
            index += 1
    return result


def candidate_keys(
    schema: RelationSchema,
    fds: Iterable[FD],
    kernel: FDClosureKernel | None = None,
) -> list[frozenset[str]]:
    """All candidate keys of ``schema`` under ``fds``.

    A key is a minimal attribute set whose closure covers the scheme.
    Exponential in the worst case (unavoidable), so the FD set is
    compiled once (or passed in pre-compiled) and every candidate is a
    linear-time closure query.
    """
    if kernel is None:
        kernel = FDClosureKernel(_relevant(fds, schema.name))
    attrs = tuple(sorted(schema.attributes))
    universe = frozenset(attrs)
    keys: list[frozenset[str]] = []
    for size in range(0, len(attrs) + 1):
        for combo in combinations(attrs, size):
            candidate = frozenset(combo)
            if any(key <= candidate for key in keys):
                continue
            if kernel.closure(candidate) == universe:
                keys.append(candidate)
    return keys


def closure_derivation(
    attrs: Iterable[str], fds: Sequence[FD], relation: str | None = None
) -> list[tuple[FD, frozenset[str]]]:
    """The closure fixpoint as an auditable derivation.

    Returns the list of (fd applied, attributes added) steps, in order.
    Useful for explaining *why* an FD is implied.
    """
    closure = set(attrs)
    pool = list(fds) if relation is None else _relevant(fds, relation)
    steps: list[tuple[FD, frozenset[str]]] = []
    changed = True
    while changed:
        changed = False
        for fd in pool:
            if fd.lhs_set <= closure:
                new = fd.rhs_set - closure
                if new:
                    closure |= new
                    steps.append((fd, frozenset(new)))
                    changed = True
    return steps
