"""Core inference engines: the paper's contribution, executable.

* ``ind_axioms`` — the complete axiomatization IND1-IND3 with formal,
  independently checkable proof objects (Section 3).
* ``ind_decision`` — the Corollary 3.2 decision procedure.
* ``ind_prover`` — constructive completeness: decisions into proofs,
  plus the polynomial special cases.
* ``ind_chase`` — the Rule (*) canonical-database construction from the
  proof of Theorem 3.1.
* ``pspace`` — Savitch-style quadratic-space reachability and the
  nondeterministic linear-space guesser (Theorem 3.3 upper bound).
* ``fd_closure`` — the FD substrate (attribute closure, implication,
  covers, keys), with the linear-time [BB] counter kernel.
* ``fdind_chase`` — the general chase for FDs + INDs (semi-decision;
  the combined problem is undecidable), semi-naive by default.
* ``ind_kernel`` — compiled premise kernels for the Corollary 3.2
  search (memoized successor maps, interned expressions).
* ``reach_index`` — the SCC-condensed bitset closure index amortizing
  IND reachability across a session's query stream.
* ``interaction`` — Propositions 4.1-4.3 as checked inference rules.
* ``finite_unary`` — finite implication for unary FDs + INDs (the
  counting/cycle arguments of Theorem 4.4 and Section 6, algorithmic).
* ``kary`` — Section 5's characterization of k-ary axiomatizability.
* ``armstrong6`` — Section 6's cycle family and Figure 6.1 database.
* ``section7`` — Section 7's dependency set and Figures 7.1-7.5.
* ``emvd_chase`` — EMVD chase and the Sagiv-Walecka family (Thm 5.3).
"""

from repro.core.fd_closure import (
    FDClosureKernel,
    attribute_closure,
    attribute_closure_naive,
    candidate_keys,
    fd_implies,
    implied_fds,
    minimal_cover,
)
from repro.core.ind_kernel import INDKernel, KernelIndex, compile_ind
from repro.core.reach_index import ReachIndex
from repro.core.ind_axioms import (
    Proof,
    ProofStep,
    apply_projection,
    apply_transitivity,
    check_proof,
    reflexivity,
)
from repro.core.ind_bidirectional import decide_ind_bidirectional
from repro.core.ind_decision import DecisionResult, decide_ind, decide_ind_naive
from repro.core.ind_prover import (
    decide_bounded_arity,
    decide_typed,
    implies_ind,
    prove_ind,
)
from repro.core.ind_chase import decide_by_rule_star, rule_star_database
from repro.core.acyclic import decide_fdind_acyclic, ind_flow_is_acyclic
from repro.core.armstrong_fd import armstrong_relation, is_armstrong_relation
from repro.core.armstrong_ind import armstrong_database, is_armstrong_database
from repro.core.fd_axioms import FdProof, check_fd_proof, prove_fd

__all__ = [
    "FDClosureKernel",
    "INDKernel",
    "KernelIndex",
    "ReachIndex",
    "attribute_closure",
    "attribute_closure_naive",
    "compile_ind",
    "candidate_keys",
    "fd_implies",
    "implied_fds",
    "minimal_cover",
    "Proof",
    "ProofStep",
    "apply_projection",
    "apply_transitivity",
    "check_proof",
    "reflexivity",
    "DecisionResult",
    "decide_ind",
    "decide_ind_naive",
    "decide_ind_bidirectional",
    "decide_bounded_arity",
    "decide_typed",
    "implies_ind",
    "prove_ind",
    "decide_by_rule_star",
    "rule_star_database",
    "decide_fdind_acyclic",
    "ind_flow_is_acyclic",
    "armstrong_relation",
    "is_armstrong_relation",
    "armstrong_database",
    "is_armstrong_database",
    "FdProof",
    "check_fd_proof",
    "prove_fd",
]
