"""The general chase for FDs and INDs taken together.

FDs are equality-generating rules, INDs are tuple-generating rules
(with fresh labeled nulls), RDs are within-tuple equality rules.  The
chase is the classical semi-decision procedure for *unrestricted*
implication:

* if the goal is derived at any finite stage, the premises imply the
  target (each chase step is a logical consequence);
* if the chase reaches a fixpoint without deriving the goal, the
  chased instance is a counterexample, so the target is **not**
  implied;
* the chase may diverge — implication for FDs + INDs together is
  undecidable (Mitchell; Chandra & Vardi, cited in the paper's
  introduction), so a step budget turns divergence into an explicit
  :class:`~repro.exceptions.ChaseBudgetExceeded`.

The engine keeps an event log (tuple additions with the responsible
IND, value merges with the responsible FD) so that derivations like
the equality chain of Lemma 7.2 can be replayed and inspected.

Two evaluation strategies share the rule semantics:

* ``"semi-naive"`` (the default) is delta-driven: every rule keeps a
  cursor into an append-only per-relation journal of added/rewritten
  rows, FD group tables and IND projection-counts persist across
  rounds, and a value merge repairs the affected rows and indexes in
  place (``rows_by_value`` reverse index) instead of re-canonicalizing
  every stored tuple through :meth:`ChaseInstance.normalize`.  A round
  in which nothing changed scans nothing — O(deltas), not O(rows).
* ``"naive"`` is the textbook re-scan-everything formulation, retained
  as the differential-testing and benchmarking reference.

Both strategies fire the same logical rule instances in the same round
structure, so they decide identically and chase to isomorphic
fixpoints (asserted over random instances by the property suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.exceptions import (
    ChaseBudgetExceeded,
    DependencyError,
    UnsupportedDependencyError,
)
from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.model.database import Database
from repro.model.relation import Relation
from repro.model.schema import DatabaseSchema


@dataclass(frozen=True)
class MergeEvent:
    """Two values were equated by an equality-generating dependency."""

    dependency: Dependency
    kept: int
    merged: int


@dataclass(frozen=True)
class AddEvent:
    """A tuple was added to ``relation`` by the IND ``dependency``."""

    dependency: IND
    relation: str
    row: tuple[int, ...]


class ChaseInstance:
    """A mutable instance over labeled values with a union-find core.

    Values are integer ids.  Ids registered as *constants* refuse to be
    merged with other constants (that would make the instance
    inconsistent); nulls merge freely.
    """

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self.relations: dict[str, set[tuple[int, ...]]] = {
            rel.name: set() for rel in schema
        }
        self._parent: dict[int, int] = {}
        self._is_constant: dict[int, bool] = {}
        self._names: dict[int, str] = {}
        self._next_id = 0
        self.events: list[MergeEvent | AddEvent] = []

    # -- value management ------------------------------------------------

    def fresh_null(self, name: str | None = None) -> int:
        value = self._next_id
        self._next_id += 1
        self._parent[value] = value
        self._is_constant[value] = False
        self._names[value] = name or f"n{value}"
        return value

    def fresh_constant(self, name: str | None = None) -> int:
        value = self.fresh_null(name or f"c{self._next_id}")
        self._is_constant[value] = True
        return value

    def find(self, value: int) -> int:
        root = value
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[value] != root:  # path compression
            self._parent[value], value = root, self._parent[value]
        return root

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def name_of(self, value: int) -> str:
        return self._names[self.find(value)]

    def merge(self, a: int, b: int, dependency: Dependency) -> bool:
        """Equate two values; returns ``True`` when something changed.

        Raises :class:`DependencyError` when two distinct constants
        would be identified (the chase *fails*; cannot happen when all
        initial values are nulls, the implication-testing setup).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        const_a, const_b = self._is_constant[ra], self._is_constant[rb]
        if const_a and const_b:
            raise DependencyError(
                f"chase failure: constants {self._names[ra]} and "
                f"{self._names[rb]} forced equal by {dependency}"
            )
        # Keep the constant (or the older id) as representative.
        if const_b or (not const_a and rb < ra):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self.events.append(MergeEvent(dependency, kept=ra, merged=rb))
        return True

    # -- tuple management --------------------------------------------------

    def canonical_row(self, row: Sequence[int]) -> tuple[int, ...]:
        return tuple(self.find(v) for v in row)

    def normalize(self) -> None:
        """Rewrite all stored tuples through the union-find."""
        for name, rows in self.relations.items():
            self.relations[name] = {self.canonical_row(row) for row in rows}

    def add_row(self, relation: str, row: Sequence[int],
                dependency: IND | None = None) -> bool:
        canonical = self.canonical_row(row)
        if canonical in self.relations[relation]:
            return False
        self.relations[relation].add(canonical)
        if dependency is not None:
            self.events.append(AddEvent(dependency, relation, canonical))
        return True

    def total_tuples(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    # -- export ------------------------------------------------------------

    def to_database(self) -> Database:
        """Freeze into a :class:`Database` with readable value names."""
        self.normalize()
        relations = {
            name: Relation(
                self.schema.relation(name),
                [tuple(self.name_of(v) for v in row) for row in rows],
            )
            for name, rows in self.relations.items()
        }
        return Database(self.schema, relations)


class _SemiNaiveState:
    """Delta-evaluation state for one semi-naive run over one instance.

    Maintains, across rounds:

    * ``logs`` — an append-only journal per relation of every row
      added or rewritten (canonical at append time); every rule holds
      a cursor into the journal of the relation it reads, so a rule
      application only examines rows it has never seen in their
      current form;
    * ``fd_groups`` — per-FD lhs-values -> rhs-values tables that
      persist across rounds (the naive engine rebuilds them from all
      rows on every invocation).  Entries whose values are merged away
      become unreachable garbage; correctness is preserved because
      lookups key on canonical values and every comparison goes
      through the union-find;
    * ``ind_existing`` — per-IND counted multiset of the right-side
      projections of the rows currently stored, so the "is this tuple
      already witnessed" test is one dict probe;
    * ``rows_by_value`` — value -> rows reverse index driving
      :meth:`merge` repair: when two values are equated, exactly the
      rows containing the dead root are rewritten (and re-journaled),
      instead of re-canonicalizing every tuple via ``normalize()``.
    """

    def __init__(self, engine: "ChaseEngine", instance: ChaseInstance):
        self.engine = engine
        self.instance = instance
        instance.normalize()
        self.logs: dict[str, list[tuple[int, ...]]] = {
            rel: list(rows) for rel, rows in instance.relations.items()
        }
        self.rows_by_value: dict[int, set[tuple[str, tuple[int, ...]]]] = {}
        for rel, rows in instance.relations.items():
            for row in rows:
                self._index_row(rel, row)
        self.fd_groups: list[dict[tuple[int, ...], tuple[int, ...]]] = [
            {} for _ in engine.fds
        ]
        self.fd_cursors = [0] * len(engine.fds)
        self.rd_cursors = [0] * len(engine.rds)
        self.ind_cursors = [0] * len(engine.inds)
        self.ind_existing: list[dict[tuple[int, ...], int]] = []
        for index, ind in enumerate(engine.inds):
            dst_pos = engine._ind_positions[index][1]
            counts: dict[tuple[int, ...], int] = {}
            for row in instance.relations[ind.rhs_relation]:
                proj = tuple(row[p] for p in dst_pos)
                counts[proj] = counts.get(proj, 0) + 1
            self.ind_existing.append(counts)
        self.rows_scanned = 0

    # -- row bookkeeping ---------------------------------------------------

    def _index_row(self, rel: str, row: tuple[int, ...]) -> None:
        for value in set(row):
            self.rows_by_value.setdefault(value, set()).add((rel, row))

    def _unindex_row(self, rel: str, row: tuple[int, ...]) -> None:
        for value in set(row):
            bucket = self.rows_by_value.get(value)
            if bucket is not None:
                bucket.discard((rel, row))

    def _track_projections(self, rel: str, row: tuple[int, ...], delta: int) -> None:
        """Adjust the projection counts of every IND targeting ``rel``."""
        engine = self.engine
        for index in engine._inds_into.get(rel, ()):
            dst_pos = engine._ind_positions[index][1]
            proj = tuple(row[p] for p in dst_pos)
            counts = self.ind_existing[index]
            updated = counts.get(proj, 0) + delta
            if updated:
                counts[proj] = updated
            else:
                counts.pop(proj, None)

    def add_row(
        self, rel: str, row: Sequence[int], dependency: IND | None = None
    ) -> bool:
        """Journal-aware :meth:`ChaseInstance.add_row`."""
        instance = self.instance
        canonical = instance.canonical_row(row)
        if canonical in instance.relations[rel]:
            return False
        instance.relations[rel].add(canonical)
        if dependency is not None:
            instance.events.append(AddEvent(dependency, rel, canonical))
        self._index_row(rel, canonical)
        self._track_projections(rel, canonical, +1)
        self.logs[rel].append(canonical)
        return True

    def merge(self, a: int, b: int, dependency: Dependency) -> bool:
        """Merge two values, then repair rows and indexes in place.

        Only rows containing the merged-away root are rewritten; each
        rewritten row is re-journaled so every rule revisits it.  Rows
        that collapse into an already-present row just disappear (the
        surviving row carries no new information).
        """
        instance = self.instance
        if not instance.merge(a, b, dependency):
            return False
        dead = instance.events[-1].merged
        affected = self.rows_by_value.pop(dead, None)
        if not affected:
            return True
        for rel, old in affected:
            rows = instance.relations[rel]
            rows.discard(old)
            self._unindex_row(rel, old)
            self._track_projections(rel, old, -1)
            rewritten = instance.canonical_row(old)
            if rewritten in rows:
                continue
            rows.add(rewritten)
            self._index_row(rel, rewritten)
            self._track_projections(rel, rewritten, +1)
            self.logs[rel].append(rewritten)
        return True

    # -- rule applications (delta-driven) ----------------------------------

    def apply_fd(self, index: int, fd: FD) -> bool:
        instance = self.instance
        lhs_pos, rhs_pos = self.engine._fd_positions[index]
        rows = instance.relations[fd.relation]
        log = self.logs[fd.relation]
        groups = self.fd_groups[index]
        cursor = self.fd_cursors[index]
        end = len(log)  # repair appends are processed on the next pass
        changed = False
        find = instance.find
        while cursor < end:
            row = log[cursor]
            cursor += 1
            self.rows_scanned += 1
            if row not in rows:
                continue  # rewritten away since it was journaled
            key = tuple(row[p] for p in lhs_pos)
            other = groups.get(key)
            if other is None:
                groups[key] = tuple(row[p] for p in rhs_pos)
                continue
            for a, b in zip(other, (row[p] for p in rhs_pos)):
                if find(a) != find(b):
                    try:
                        self.merge(a, b, fd)
                    finally:
                        self.fd_cursors[index] = cursor
                    changed = True
        self.fd_cursors[index] = cursor
        return changed

    def apply_rd(self, index: int, rd: RD) -> bool:
        instance = self.instance
        pair_pos = self.engine._rd_positions[index]
        rows = instance.relations[rd.relation]
        log = self.logs[rd.relation]
        cursor = self.rd_cursors[index]
        end = len(log)
        changed = False
        find = instance.find
        while cursor < end:
            row = log[cursor]
            cursor += 1
            self.rows_scanned += 1
            if row not in rows:
                continue
            for left, right in pair_pos:
                a, b = row[left], row[right]
                if find(a) != find(b):
                    try:
                        self.merge(a, b, rd)
                    finally:
                        self.rd_cursors[index] = cursor
                    changed = True
        self.rd_cursors[index] = cursor
        return changed

    def apply_ind(self, index: int, ind: IND) -> bool:
        instance = self.instance
        src_pos, dst_pos, dst_arity = self.engine._ind_positions[index]
        rows = instance.relations[ind.lhs_relation]
        log = self.logs[ind.lhs_relation]
        existing = self.ind_existing[index]
        cursor = self.ind_cursors[index]
        end = len(log)  # self-INDs pick up their own additions next round
        changed = False
        while cursor < end:
            row = log[cursor]
            cursor += 1
            self.rows_scanned += 1
            if row not in rows:
                continue
            needed = tuple(row[p] for p in src_pos)
            if existing.get(needed):
                continue
            new_row: list[int] = [
                instance.fresh_null() for _ in range(dst_arity)
            ]
            for value, pos in zip(needed, dst_pos):
                new_row[pos] = value
            self.add_row(ind.rhs_relation, new_row, ind)
            changed = True
        self.ind_cursors[index] = cursor
        return changed


@dataclass
class ChaseOutcome:
    """Result of running the chase to fixpoint (or budget).

    ``rows_scanned`` counts the rows the run's rule applications
    examined — the work measure that separates the semi-naive strategy
    (O(deltas) per round) from the naive rescan (O(rows) per rule per
    round).
    """

    instance: ChaseInstance
    rounds: int
    reached_fixpoint: bool
    failed: bool = False
    failure_reason: str = ""
    rows_scanned: int = 0


STRATEGIES = ("semi-naive", "naive")


def _no_tick() -> None:
    """The default cooperative check: free, never fires."""


class ChaseEngine:
    """Runs FD/IND/RD chase steps over a :class:`ChaseInstance`."""

    def __init__(
        self,
        schema: DatabaseSchema,
        dependencies: Iterable[Dependency],
        strategy: str = "semi-naive",
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown chase strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.schema = schema
        self.strategy = strategy
        self.fds: list[FD] = []
        self.inds: list[IND] = []
        self.rds: list[RD] = []
        for dep in dependencies:
            dep.validate(schema)
            if isinstance(dep, FD):
                self.fds.append(dep)
            elif isinstance(dep, IND):
                self.inds.append(dep)
            elif isinstance(dep, RD):
                self.rds.append(dep)
            else:
                raise UnsupportedDependencyError(
                    f"chase supports FDs, INDs and RDs, got {dep}"
                )
        # Position tuples are a per-rule constant; compile them once
        # instead of re-deriving from the schema at every application.
        self._fd_positions = [
            (
                self.schema.relation(fd.relation).positions(fd.lhs),
                self.schema.relation(fd.relation).positions(fd.rhs),
            )
            for fd in self.fds
        ]
        self._rd_positions = [
            tuple(
                (
                    self.schema.relation(rd.relation).position(left),
                    self.schema.relation(rd.relation).position(right),
                )
                for left, right in rd.pairs
            )
            for rd in self.rds
        ]
        self._ind_positions = []
        self._inds_into: dict[str, list[int]] = {}
        for index, ind in enumerate(self.inds):
            src_schema = self.schema.relation(ind.lhs_relation)
            dst_schema = self.schema.relation(ind.rhs_relation)
            self._ind_positions.append(
                (
                    src_schema.positions(ind.lhs_attributes),
                    dst_schema.positions(ind.rhs_attributes),
                    dst_schema.arity,
                )
            )
            self._inds_into.setdefault(ind.rhs_relation, []).append(index)
        self.rows_scanned = 0

    # -- single steps (naive reference) ------------------------------------

    def _apply_fd(self, instance: ChaseInstance, fd: FD) -> bool:
        rel_schema = self.schema.relation(fd.relation)
        lhs_pos = rel_schema.positions(fd.lhs)
        rhs_pos = rel_schema.positions(fd.rhs)
        changed = False
        groups: dict[tuple[int, ...], tuple[int, ...]] = {}
        for row in list(instance.relations[fd.relation]):
            self.rows_scanned += 1
            row = instance.canonical_row(row)
            key = tuple(row[p] for p in lhs_pos)
            image = tuple(row[p] for p in rhs_pos)
            other = groups.get(key)
            if other is None:
                groups[key] = image
                continue
            for a, b in zip(other, image):
                if instance.find(a) != instance.find(b):
                    instance.merge(a, b, fd)
                    changed = True
        if changed:
            instance.normalize()
        return changed

    def _apply_rd(self, instance: ChaseInstance, rd: RD) -> bool:
        rel_schema = self.schema.relation(rd.relation)
        changed = False
        for row in list(instance.relations[rd.relation]):
            self.rows_scanned += 1
            row = instance.canonical_row(row)
            for left, right in rd.pairs:
                a = row[rel_schema.position(left)]
                b = row[rel_schema.position(right)]
                if instance.find(a) != instance.find(b):
                    instance.merge(a, b, rd)
                    changed = True
        if changed:
            instance.normalize()
        return changed

    def _apply_ind(self, instance: ChaseInstance, ind: IND) -> bool:
        src_schema = self.schema.relation(ind.lhs_relation)
        dst_schema = self.schema.relation(ind.rhs_relation)
        src_pos = src_schema.positions(ind.lhs_attributes)
        dst_pos = dst_schema.positions(ind.rhs_attributes)
        existing = {
            tuple(row[p] for p in dst_pos)
            for row in (
                instance.canonical_row(r)
                for r in instance.relations[ind.rhs_relation]
            )
        }
        changed = False
        for row in list(instance.relations[ind.lhs_relation]):
            self.rows_scanned += 1
            row = instance.canonical_row(row)
            needed = tuple(row[p] for p in src_pos)
            if needed in existing:
                continue
            new_row: list[int] = [
                instance.fresh_null() for _ in range(dst_schema.arity)
            ]
            for value, pos in zip(needed, dst_pos):
                new_row[pos] = value
            instance.add_row(ind.rhs_relation, new_row, ind)
            existing.add(needed)
            changed = True
        return changed

    # -- full runs ------------------------------------------------------------

    def run(
        self,
        instance: ChaseInstance,
        max_rounds: int = 200,
        max_tuples: int = 100_000,
        goal=None,
        tick=None,
    ) -> ChaseOutcome:
        """Chase to fixpoint; raise on budget exhaustion.

        A round applies all equality rules to their own fixpoint, then
        every IND once.  The chase is monotone in the derived facts, so
        fixpoint detection is sound.

        ``goal`` is an optional predicate over the instance; when it
        turns true the run stops early (sound for implication testing:
        every chase step is a logical consequence, so a goal reached at
        any finite stage certifies the implication even when the full
        chase would diverge).

        ``tick`` is an optional zero-argument cooperative check (a
        :meth:`~repro.engine.deadline.Deadline.check`, typically),
        polled before every rule application; whatever it raises
        propagates with the instance left mid-chase.

        The engine's ``strategy`` selects semi-naive (delta-driven,
        the default) or naive (full rescan) evaluation; both apply the
        same rule instances in the same round structure.
        """
        self.rows_scanned = 0
        if self.strategy == "semi-naive":
            return self._run_semi_naive(instance, max_rounds, max_tuples,
                                        goal, tick)
        return self._run_naive(instance, max_rounds, max_tuples, goal, tick)

    def _run_naive(
        self,
        instance: ChaseInstance,
        max_rounds: int,
        max_tuples: int,
        goal,
        tick,
    ) -> ChaseOutcome:
        return self._drive(
            instance, max_rounds, max_tuples, goal,
            fd_step=lambda _i, fd: self._apply_fd(instance, fd),
            rd_step=lambda _i, rd: self._apply_rd(instance, rd),
            ind_step=lambda _i, ind: self._apply_ind(instance, ind),
            scanned=lambda: self.rows_scanned,
            tick=tick,
        )

    def _run_semi_naive(
        self,
        instance: ChaseInstance,
        max_rounds: int,
        max_tuples: int,
        goal,
        tick,
    ) -> ChaseOutcome:
        state = _SemiNaiveState(self, instance)

        def scanned() -> int:
            self.rows_scanned = state.rows_scanned
            return state.rows_scanned

        return self._drive(
            instance, max_rounds, max_tuples, goal,
            fd_step=state.apply_fd,
            rd_step=state.apply_rd,
            ind_step=state.apply_ind,
            scanned=scanned,
            tick=tick,
        )

    def _drive(
        self,
        instance: ChaseInstance,
        max_rounds: int,
        max_tuples: int,
        goal,
        fd_step,
        rd_step,
        ind_step,
        scanned,
        tick=None,
    ) -> ChaseOutcome:
        """The round loop both strategies share.

        ``*_step(index, rule) -> changed`` applies one rule (naive:
        engine methods; semi-naive: state methods); ``scanned()``
        reports the work counter.  One driver is what guarantees the
        two strategies fire rules in the same round structure.
        ``tick`` (when given) is polled before every rule application,
        bounding the time between cooperative checks by one rule's
        scan over the instance.
        """
        if tick is None:
            tick = _no_tick
        rounds = 0
        if goal is not None and goal(instance):
            return ChaseOutcome(instance, rounds, reached_fixpoint=False,
                                rows_scanned=scanned())
        while rounds < max_rounds:
            rounds += 1
            changed = False
            # Equality rules first (cheap, shrink the instance).
            equality_changed = True
            while equality_changed:
                equality_changed = False
                for index, fd in enumerate(self.fds):
                    tick()
                    try:
                        if fd_step(index, fd):
                            equality_changed = True
                    except DependencyError as exc:
                        return ChaseOutcome(
                            instance, rounds, reached_fixpoint=False,
                            failed=True, failure_reason=str(exc),
                            rows_scanned=scanned(),
                        )
                for index, rd in enumerate(self.rds):
                    tick()
                    try:
                        if rd_step(index, rd):
                            equality_changed = True
                    except DependencyError as exc:
                        return ChaseOutcome(
                            instance, rounds, reached_fixpoint=False,
                            failed=True, failure_reason=str(exc),
                            rows_scanned=scanned(),
                        )
                changed = changed or equality_changed
            for index, ind in enumerate(self.inds):
                tick()
                if ind_step(index, ind):
                    changed = True
            if goal is not None and goal(instance):
                return ChaseOutcome(instance, rounds, reached_fixpoint=False,
                                    rows_scanned=scanned())
            if instance.total_tuples() > max_tuples:
                scanned()
                raise ChaseBudgetExceeded(
                    f"chase exceeded {max_tuples} tuples after {rounds} rounds",
                    rounds=rounds,
                    tuples=instance.total_tuples(),
                )
            if not changed:
                return ChaseOutcome(instance, rounds, reached_fixpoint=True,
                                    rows_scanned=scanned())
        scanned()
        raise ChaseBudgetExceeded(
            f"chase did not converge within {max_rounds} rounds",
            rounds=rounds,
            tuples=instance.total_tuples(),
        )


# ---------------------------------------------------------------------------
# Implication testing via the chase
# ---------------------------------------------------------------------------


@dataclass
class ImplicationCertificate:
    """A decided implication question with its chase evidence."""

    implied: bool
    outcome: ChaseOutcome
    detail: str = ""

    def counterexample(self) -> Optional[Database]:
        """The chased instance as a database, when it refutes the target."""
        if self.implied:
            return None
        return self.outcome.instance.to_database()


def chase_implies(
    schema: DatabaseSchema,
    premises: Iterable[Dependency],
    target: Dependency,
    max_rounds: int = 200,
    max_tuples: int = 100_000,
    strategy: str = "semi-naive",
    tick=None,
) -> ImplicationCertificate:
    """Decide ``premises |= target`` (unrestricted) by chasing.

    Terminating chases give exact answers; divergence raises
    :class:`ChaseBudgetExceeded`.  The target may be an FD, IND, or RD.
    ``tick`` (an optional cooperative deadline check) is polled before
    every rule application; see :meth:`ChaseEngine.run`.
    """
    target.validate(schema)
    engine = ChaseEngine(schema, premises, strategy=strategy)
    instance = ChaseInstance(schema)

    if isinstance(target, FD):
        rel_schema = schema.relation(target.relation)
        shared = {
            attr: instance.fresh_null(f"x_{attr}") for attr in target.lhs
        }
        row1 = []
        row2 = []
        for attr in rel_schema.attributes:
            if attr in shared:
                row1.append(shared[attr])
                row2.append(shared[attr])
            else:
                row1.append(instance.fresh_null(f"{attr.lower()}1"))
                row2.append(instance.fresh_null(f"{attr.lower()}2"))
        instance.add_row(target.relation, row1)
        instance.add_row(target.relation, row2)
        rhs_pos = rel_schema.positions(target.rhs)

        def fd_goal(inst: ChaseInstance) -> bool:
            return all(inst.same(row1[p], row2[p]) for p in rhs_pos)

        outcome = engine.run(
            instance, max_rounds=max_rounds, max_tuples=max_tuples,
            goal=fd_goal, tick=tick,
        )
        implied = fd_goal(instance)
        return ImplicationCertificate(
            implied, outcome,
            detail="rhs values equated" if implied else "rhs values distinct at fixpoint",
        )

    if isinstance(target, RD):
        rel_schema = schema.relation(target.relation)
        row = [instance.fresh_null(f"{attr.lower()}0") for attr in rel_schema.attributes]
        instance.add_row(target.relation, row)
        pair_pos = [
            (rel_schema.position(left), rel_schema.position(right))
            for left, right in target.pairs
        ]

        def rd_goal(inst: ChaseInstance) -> bool:
            return all(inst.same(row[lp], row[rp]) for lp, rp in pair_pos)

        outcome = engine.run(
            instance, max_rounds=max_rounds, max_tuples=max_tuples,
            goal=rd_goal, tick=tick,
        )
        return ImplicationCertificate(rd_goal(instance), outcome)

    if isinstance(target, IND):
        src_schema = schema.relation(target.lhs_relation)
        row = [instance.fresh_null(f"{attr.lower()}0") for attr in src_schema.attributes]
        instance.add_row(target.lhs_relation, row)
        dst_schema = schema.relation(target.rhs_relation)
        src_pos = src_schema.positions(target.lhs_attributes)
        dst_pos = dst_schema.positions(target.rhs_attributes)

        def ind_goal(inst: ChaseInstance) -> bool:
            wanted = tuple(inst.find(row[p]) for p in src_pos)
            return any(
                tuple(inst.find(r[p]) for p in dst_pos) == wanted
                for r in inst.relations[target.rhs_relation]
            )

        outcome = engine.run(
            instance, max_rounds=max_rounds, max_tuples=max_tuples,
            goal=ind_goal, tick=tick,
        )
        return ImplicationCertificate(ind_goal(instance), outcome)

    raise UnsupportedDependencyError(f"cannot chase target {target}")


def chase_database(
    db: Database,
    dependencies: Iterable[Dependency],
    max_rounds: int = 200,
    max_tuples: int = 100_000,
    strategy: str = "semi-naive",
) -> Database:
    """Repair ``db`` into a superset instance satisfying ``dependencies``.

    Every existing value becomes a constant; the chase adds tuples (with
    fresh nulls) and merges nulls as needed.  Raises on chase failure
    (two distinct constants forced equal) or budget exhaustion.  Used by
    the referential-integrity example and workload generators.
    """
    schema = db.schema
    engine = ChaseEngine(schema, dependencies, strategy=strategy)
    instance = ChaseInstance(schema)
    ids: dict[object, int] = {}
    for rel in db:
        for row in rel:
            encoded = []
            for value in row:
                if value not in ids:
                    ids[value] = instance.fresh_constant(str(value))
                encoded.append(ids[value])
            instance.add_row(rel.name, encoded)
    outcome = engine.run(instance, max_rounds=max_rounds, max_tuples=max_tuples)
    if outcome.failed:
        raise DependencyError(f"chase failed: {outcome.failure_reason}")
    return instance.to_database()
