"""The general chase for FDs and INDs taken together.

FDs are equality-generating rules, INDs are tuple-generating rules
(with fresh labeled nulls), RDs are within-tuple equality rules.  The
chase is the classical semi-decision procedure for *unrestricted*
implication:

* if the goal is derived at any finite stage, the premises imply the
  target (each chase step is a logical consequence);
* if the chase reaches a fixpoint without deriving the goal, the
  chased instance is a counterexample, so the target is **not**
  implied;
* the chase may diverge — implication for FDs + INDs together is
  undecidable (Mitchell; Chandra & Vardi, cited in the paper's
  introduction), so a step budget turns divergence into an explicit
  :class:`~repro.exceptions.ChaseBudgetExceeded`.

The engine keeps an event log (tuple additions with the responsible
IND, value merges with the responsible FD) so that derivations like
the equality chain of Lemma 7.2 can be replayed and inspected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.exceptions import (
    ChaseBudgetExceeded,
    DependencyError,
    UnsupportedDependencyError,
)
from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.model.database import Database
from repro.model.relation import Relation
from repro.model.schema import DatabaseSchema


@dataclass(frozen=True)
class MergeEvent:
    """Two values were equated by an equality-generating dependency."""

    dependency: Dependency
    kept: int
    merged: int


@dataclass(frozen=True)
class AddEvent:
    """A tuple was added to ``relation`` by the IND ``dependency``."""

    dependency: IND
    relation: str
    row: tuple[int, ...]


class ChaseInstance:
    """A mutable instance over labeled values with a union-find core.

    Values are integer ids.  Ids registered as *constants* refuse to be
    merged with other constants (that would make the instance
    inconsistent); nulls merge freely.
    """

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self.relations: dict[str, set[tuple[int, ...]]] = {
            rel.name: set() for rel in schema
        }
        self._parent: dict[int, int] = {}
        self._is_constant: dict[int, bool] = {}
        self._names: dict[int, str] = {}
        self._next_id = 0
        self.events: list[MergeEvent | AddEvent] = []

    # -- value management ------------------------------------------------

    def fresh_null(self, name: str | None = None) -> int:
        value = self._next_id
        self._next_id += 1
        self._parent[value] = value
        self._is_constant[value] = False
        self._names[value] = name or f"n{value}"
        return value

    def fresh_constant(self, name: str | None = None) -> int:
        value = self.fresh_null(name or f"c{self._next_id}")
        self._is_constant[value] = True
        return value

    def find(self, value: int) -> int:
        root = value
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[value] != root:  # path compression
            self._parent[value], value = root, self._parent[value]
        return root

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def name_of(self, value: int) -> str:
        return self._names[self.find(value)]

    def merge(self, a: int, b: int, dependency: Dependency) -> bool:
        """Equate two values; returns ``True`` when something changed.

        Raises :class:`DependencyError` when two distinct constants
        would be identified (the chase *fails*; cannot happen when all
        initial values are nulls, the implication-testing setup).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        const_a, const_b = self._is_constant[ra], self._is_constant[rb]
        if const_a and const_b:
            raise DependencyError(
                f"chase failure: constants {self._names[ra]} and "
                f"{self._names[rb]} forced equal by {dependency}"
            )
        # Keep the constant (or the older id) as representative.
        if const_b or (not const_a and rb < ra):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self.events.append(MergeEvent(dependency, kept=ra, merged=rb))
        return True

    # -- tuple management --------------------------------------------------

    def canonical_row(self, row: Sequence[int]) -> tuple[int, ...]:
        return tuple(self.find(v) for v in row)

    def normalize(self) -> None:
        """Rewrite all stored tuples through the union-find."""
        for name, rows in self.relations.items():
            self.relations[name] = {self.canonical_row(row) for row in rows}

    def add_row(self, relation: str, row: Sequence[int],
                dependency: IND | None = None) -> bool:
        canonical = self.canonical_row(row)
        if canonical in self.relations[relation]:
            return False
        self.relations[relation].add(canonical)
        if dependency is not None:
            self.events.append(AddEvent(dependency, relation, canonical))
        return True

    def total_tuples(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    # -- export ------------------------------------------------------------

    def to_database(self) -> Database:
        """Freeze into a :class:`Database` with readable value names."""
        self.normalize()
        relations = {
            name: Relation(
                self.schema.relation(name),
                [tuple(self.name_of(v) for v in row) for row in rows],
            )
            for name, rows in self.relations.items()
        }
        return Database(self.schema, relations)


@dataclass
class ChaseOutcome:
    """Result of running the chase to fixpoint (or budget)."""

    instance: ChaseInstance
    rounds: int
    reached_fixpoint: bool
    failed: bool = False
    failure_reason: str = ""


class ChaseEngine:
    """Runs FD/IND/RD chase steps over a :class:`ChaseInstance`."""

    def __init__(self, schema: DatabaseSchema, dependencies: Iterable[Dependency]):
        self.schema = schema
        self.fds: list[FD] = []
        self.inds: list[IND] = []
        self.rds: list[RD] = []
        for dep in dependencies:
            dep.validate(schema)
            if isinstance(dep, FD):
                self.fds.append(dep)
            elif isinstance(dep, IND):
                self.inds.append(dep)
            elif isinstance(dep, RD):
                self.rds.append(dep)
            else:
                raise UnsupportedDependencyError(
                    f"chase supports FDs, INDs and RDs, got {dep}"
                )

    # -- single steps -------------------------------------------------------

    def _apply_fd(self, instance: ChaseInstance, fd: FD) -> bool:
        rel_schema = self.schema.relation(fd.relation)
        lhs_pos = rel_schema.positions(fd.lhs)
        rhs_pos = rel_schema.positions(fd.rhs)
        changed = False
        groups: dict[tuple[int, ...], tuple[int, ...]] = {}
        for row in list(instance.relations[fd.relation]):
            row = instance.canonical_row(row)
            key = tuple(row[p] for p in lhs_pos)
            image = tuple(row[p] for p in rhs_pos)
            other = groups.get(key)
            if other is None:
                groups[key] = image
                continue
            for a, b in zip(other, image):
                if instance.find(a) != instance.find(b):
                    instance.merge(a, b, fd)
                    changed = True
        if changed:
            instance.normalize()
        return changed

    def _apply_rd(self, instance: ChaseInstance, rd: RD) -> bool:
        rel_schema = self.schema.relation(rd.relation)
        changed = False
        for row in list(instance.relations[rd.relation]):
            row = instance.canonical_row(row)
            for left, right in rd.pairs:
                a = row[rel_schema.position(left)]
                b = row[rel_schema.position(right)]
                if instance.find(a) != instance.find(b):
                    instance.merge(a, b, rd)
                    changed = True
        if changed:
            instance.normalize()
        return changed

    def _apply_ind(self, instance: ChaseInstance, ind: IND) -> bool:
        src_schema = self.schema.relation(ind.lhs_relation)
        dst_schema = self.schema.relation(ind.rhs_relation)
        src_pos = src_schema.positions(ind.lhs_attributes)
        dst_pos = dst_schema.positions(ind.rhs_attributes)
        existing = {
            tuple(row[p] for p in dst_pos)
            for row in (
                instance.canonical_row(r)
                for r in instance.relations[ind.rhs_relation]
            )
        }
        changed = False
        for row in list(instance.relations[ind.lhs_relation]):
            row = instance.canonical_row(row)
            needed = tuple(row[p] for p in src_pos)
            if needed in existing:
                continue
            new_row: list[int] = [
                instance.fresh_null() for _ in range(dst_schema.arity)
            ]
            for value, pos in zip(needed, dst_pos):
                new_row[pos] = value
            instance.add_row(ind.rhs_relation, new_row, ind)
            existing.add(needed)
            changed = True
        return changed

    # -- full runs ------------------------------------------------------------

    def run(
        self,
        instance: ChaseInstance,
        max_rounds: int = 200,
        max_tuples: int = 100_000,
        goal=None,
    ) -> ChaseOutcome:
        """Chase to fixpoint; raise on budget exhaustion.

        A round applies all equality rules to their own fixpoint, then
        every IND once.  The chase is monotone in the derived facts, so
        fixpoint detection is sound.

        ``goal`` is an optional predicate over the instance; when it
        turns true the run stops early (sound for implication testing:
        every chase step is a logical consequence, so a goal reached at
        any finite stage certifies the implication even when the full
        chase would diverge).
        """
        rounds = 0
        if goal is not None and goal(instance):
            return ChaseOutcome(instance, rounds, reached_fixpoint=False)
        while rounds < max_rounds:
            rounds += 1
            changed = False
            # Equality rules first (cheap, shrink the instance).
            equality_changed = True
            while equality_changed:
                equality_changed = False
                for fd in self.fds:
                    try:
                        if self._apply_fd(instance, fd):
                            equality_changed = True
                    except DependencyError as exc:
                        return ChaseOutcome(
                            instance, rounds, reached_fixpoint=False,
                            failed=True, failure_reason=str(exc),
                        )
                for rd in self.rds:
                    try:
                        if self._apply_rd(instance, rd):
                            equality_changed = True
                    except DependencyError as exc:
                        return ChaseOutcome(
                            instance, rounds, reached_fixpoint=False,
                            failed=True, failure_reason=str(exc),
                        )
                changed = changed or equality_changed
            for ind in self.inds:
                if self._apply_ind(instance, ind):
                    changed = True
            if goal is not None and goal(instance):
                return ChaseOutcome(instance, rounds, reached_fixpoint=False)
            if instance.total_tuples() > max_tuples:
                raise ChaseBudgetExceeded(
                    f"chase exceeded {max_tuples} tuples after {rounds} rounds",
                    rounds=rounds,
                    tuples=instance.total_tuples(),
                )
            if not changed:
                return ChaseOutcome(instance, rounds, reached_fixpoint=True)
        raise ChaseBudgetExceeded(
            f"chase did not converge within {max_rounds} rounds",
            rounds=rounds,
            tuples=instance.total_tuples(),
        )


# ---------------------------------------------------------------------------
# Implication testing via the chase
# ---------------------------------------------------------------------------


@dataclass
class ImplicationCertificate:
    """A decided implication question with its chase evidence."""

    implied: bool
    outcome: ChaseOutcome
    detail: str = ""

    def counterexample(self) -> Optional[Database]:
        """The chased instance as a database, when it refutes the target."""
        if self.implied:
            return None
        return self.outcome.instance.to_database()


def chase_implies(
    schema: DatabaseSchema,
    premises: Iterable[Dependency],
    target: Dependency,
    max_rounds: int = 200,
    max_tuples: int = 100_000,
) -> ImplicationCertificate:
    """Decide ``premises |= target`` (unrestricted) by chasing.

    Terminating chases give exact answers; divergence raises
    :class:`ChaseBudgetExceeded`.  The target may be an FD, IND, or RD.
    """
    target.validate(schema)
    engine = ChaseEngine(schema, premises)
    instance = ChaseInstance(schema)

    if isinstance(target, FD):
        rel_schema = schema.relation(target.relation)
        shared = {
            attr: instance.fresh_null(f"x_{attr}") for attr in target.lhs
        }
        row1 = []
        row2 = []
        for attr in rel_schema.attributes:
            if attr in shared:
                row1.append(shared[attr])
                row2.append(shared[attr])
            else:
                row1.append(instance.fresh_null(f"{attr.lower()}1"))
                row2.append(instance.fresh_null(f"{attr.lower()}2"))
        instance.add_row(target.relation, row1)
        instance.add_row(target.relation, row2)
        rhs_pos = rel_schema.positions(target.rhs)

        def fd_goal(inst: ChaseInstance) -> bool:
            return all(inst.same(row1[p], row2[p]) for p in rhs_pos)

        outcome = engine.run(
            instance, max_rounds=max_rounds, max_tuples=max_tuples, goal=fd_goal
        )
        implied = fd_goal(instance)
        return ImplicationCertificate(
            implied, outcome,
            detail="rhs values equated" if implied else "rhs values distinct at fixpoint",
        )

    if isinstance(target, RD):
        rel_schema = schema.relation(target.relation)
        row = [instance.fresh_null(f"{attr.lower()}0") for attr in rel_schema.attributes]
        instance.add_row(target.relation, row)
        pair_pos = [
            (rel_schema.position(left), rel_schema.position(right))
            for left, right in target.pairs
        ]

        def rd_goal(inst: ChaseInstance) -> bool:
            return all(inst.same(row[lp], row[rp]) for lp, rp in pair_pos)

        outcome = engine.run(
            instance, max_rounds=max_rounds, max_tuples=max_tuples, goal=rd_goal
        )
        return ImplicationCertificate(rd_goal(instance), outcome)

    if isinstance(target, IND):
        src_schema = schema.relation(target.lhs_relation)
        row = [instance.fresh_null(f"{attr.lower()}0") for attr in src_schema.attributes]
        instance.add_row(target.lhs_relation, row)
        dst_schema = schema.relation(target.rhs_relation)
        src_pos = src_schema.positions(target.lhs_attributes)
        dst_pos = dst_schema.positions(target.rhs_attributes)

        def ind_goal(inst: ChaseInstance) -> bool:
            wanted = tuple(inst.find(row[p]) for p in src_pos)
            return any(
                tuple(inst.find(r[p]) for p in dst_pos) == wanted
                for r in inst.relations[target.rhs_relation]
            )

        outcome = engine.run(
            instance, max_rounds=max_rounds, max_tuples=max_tuples, goal=ind_goal
        )
        return ImplicationCertificate(ind_goal(instance), outcome)

    raise UnsupportedDependencyError(f"cannot chase target {target}")


def chase_database(
    db: Database,
    dependencies: Iterable[Dependency],
    max_rounds: int = 200,
    max_tuples: int = 100_000,
) -> Database:
    """Repair ``db`` into a superset instance satisfying ``dependencies``.

    Every existing value becomes a constant; the chase adds tuples (with
    fresh nulls) and merges nulls as needed.  Raises on chase failure
    (two distinct constants forced equal) or budget exhaustion.  Used by
    the referential-integrity example and workload generators.
    """
    schema = db.schema
    engine = ChaseEngine(schema, dependencies)
    instance = ChaseInstance(schema)
    ids: dict[object, int] = {}
    for rel in db:
        for row in rel:
            encoded = []
            for value in row:
                if value not in ids:
                    ids[value] = instance.fresh_constant(str(value))
                encoded.append(ids[value])
            instance.add_row(rel.name, encoded)
    outcome = engine.run(instance, max_rounds=max_rounds, max_tuples=max_tuples)
    if outcome.failed:
        raise DependencyError(f"chase failed: {outcome.failure_reason}")
    return instance.to_database()
