"""Armstrong relations for FD sets.

An *Armstrong relation* for a set of FDs satisfies exactly the FDs the
set implies (Armstrong 1974; the paper leans on the concept throughout
Sections 6-7, and cites Fagin-Vardi [FV] for the FD+IND case).  This
module makes the classical existence proof constructive:

for every closed attribute set ``C`` (an ``X+``), add a two-tuple
*gadget* agreeing exactly on ``C``; give gadgets disjoint value blocks
except on the constant columns ``closure(0)``, which share one global
constant per column.

Exactness:

* an implied FD ``Y -> B`` never breaks: two gadget tuples agree on
  ``Y`` only when ``Y`` is inside the gadget's closed set ``C``, and
  then ``B in closure(Y) <= C`` forces agreement; cross-gadget tuples
  agree exactly on the constant columns, whose closure is itself;
* a non-implied ``Y -> B`` breaks on the gadget of ``closure(Y)``:
  its two tuples agree on ``Y`` but differ on ``B``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.core.fd_closure import attribute_closure, fd_implies
from repro.deps.fd import FD
from repro.model.relation import Relation
from repro.model.schema import RelationSchema


def closed_attribute_sets(
    schema: RelationSchema, fds: Iterable[FD]
) -> list[frozenset[str]]:
    """All distinct closures ``X+`` over the scheme (the closure
    lattice's elements that matter for the construction)."""
    fd_list = [fd for fd in fds if fd.relation == schema.name]
    seen: set[frozenset[str]] = set()
    for size in range(len(schema.attributes) + 1):
        for combo in combinations(schema.attributes, size):
            seen.add(attribute_closure(combo, fd_list, schema.name))
    return sorted(seen, key=lambda s: (len(s), sorted(s)))


def armstrong_relation(schema: RelationSchema, fds: Iterable[FD]) -> Relation:
    """A relation over ``schema`` satisfying *exactly* the FDs implied
    by ``fds`` (over that scheme).

    Values are strings: ``"<column>!<gadget>"`` for gadget-shared
    values, with a ``"/a"``/``"/b"`` suffix for the per-tuple halves,
    and ``"<column>!const"`` on the constant columns.

    >>> rel = armstrong_relation(RelationSchema("R", ("A", "B")),
    ...                          [FD("R", ("A",), ("B",))])
    >>> from repro.model.database import Database
    >>> from repro.model.schema import DatabaseSchema
    >>> db = Database(DatabaseSchema.of(rel.schema), {"R": rel})
    >>> db.satisfies(FD("R", ("A",), ("B",)))
    True
    >>> db.satisfies(FD("R", ("B",), ("A",)))
    False
    """
    fd_list = [fd for fd in fds if fd.relation == schema.name]
    constants = attribute_closure((), fd_list, schema.name)
    rows: list[tuple[str, ...]] = []
    for index, closed in enumerate(closed_attribute_sets(schema, fd_list)):
        first: list[str] = []
        second: list[str] = []
        for attr in schema.attributes:
            if attr in constants:
                shared = f"{attr}!const"
                first.append(shared)
                second.append(shared)
            elif attr in closed:
                shared = f"{attr}!{index}"
                first.append(shared)
                second.append(shared)
            else:
                first.append(f"{attr}!{index}/a")
                second.append(f"{attr}!{index}/b")
        rows.append(tuple(first))
        rows.append(tuple(second))
    return Relation(schema, rows)


def is_armstrong_relation(
    relation: Relation, fds: Iterable[FD], allow_empty_lhs: bool = True
) -> bool:
    """Check the Armstrong property over the enumerated FD universe:
    the relation satisfies an FD iff ``fds`` imply it."""
    from repro.deps.enumeration import all_fds
    from repro.model.database import Database
    from repro.model.schema import DatabaseSchema

    fd_list = list(fds)
    db = Database(DatabaseSchema.of(relation.schema), {relation.name: relation})
    for candidate in all_fds(
        relation.schema, include_trivial=True, allow_empty_lhs=allow_empty_lhs
    ):
        if db.satisfies(candidate) != fd_implies(fd_list, candidate):
            return False
    return True
