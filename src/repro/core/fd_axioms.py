"""Armstrong's axioms for FDs, with formal proof objects.

The paper contrasts its IND axiomatization with Armstrong's classical
complete (2-ary) system for FDs [Ar, Fa2]:

* **FD1 (reflexivity)** — ``R: X -> Y`` whenever ``Y`` is a subset of
  ``X``;
* **FD2 (augmentation)** — from ``R: X -> Y`` infer
  ``R: XZ -> YZ`` for any attribute set ``Z``;
* **FD3 (transitivity)** — from ``R: X -> Y`` and ``R: Y -> Z`` infer
  ``R: X -> Z``.

This module mirrors :mod:`repro.core.ind_axioms`: rule applications,
proof objects, an independent checker, and a prover that converts the
linear-time closure computation into a formal derivation — making the
FD side of the paper's completeness landscape executable too.

FD identity is set-based throughout (as in :class:`repro.deps.fd.FD`);
the checker compares attribute sets, so augmentation may reorder
freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import DependencyError, ProofError
from repro.core.fd_closure import closure_derivation, fd_implies
from repro.deps.fd import FD


def fd_reflexivity(relation: str, lhs: Iterable[str], rhs: Iterable[str]) -> FD:
    """Rule FD1: ``X -> Y`` for ``Y`` a subset of ``X``."""
    fd = FD(relation, tuple(lhs), tuple(rhs))
    if not fd.is_trivial():
        raise DependencyError(f"FD1 requires rhs inside lhs: {fd}")
    return fd


def fd_augmentation(fd: FD, extra: Iterable[str]) -> FD:
    """Rule FD2: from ``X -> Y`` infer ``XZ -> YZ``."""
    extra_set = frozenset(extra)
    lhs = tuple(sorted(fd.lhs_set | extra_set))
    rhs = tuple(sorted(fd.rhs_set | extra_set))
    return FD(fd.relation, lhs or None, rhs)


def fd_transitivity(first: FD, second: FD) -> FD:
    """Rule FD3: from ``X -> Y`` and ``Y -> Z`` infer ``X -> Z``.

    The middle sets must match exactly (as sets).
    """
    if first.relation != second.relation:
        raise DependencyError(
            f"FD3 premises over different relations: {first}, {second}"
        )
    if first.rhs_set != second.lhs_set:
        raise DependencyError(f"FD3 middle mismatch: {first} then {second}")
    return FD(first.relation, tuple(sorted(first.lhs_set)) or None,
              tuple(sorted(second.rhs_set)))


@dataclass(frozen=True)
class FdJustification:
    rule: str = field(init=False, default="?")


@dataclass(frozen=True)
class FdByHypothesis(FdJustification):
    rule: str = field(init=False, default="hypothesis")


@dataclass(frozen=True)
class FdByReflexivity(FdJustification):
    rule: str = field(init=False, default="FD1")


@dataclass(frozen=True)
class FdByAugmentation(FdJustification):
    source: int
    extra: frozenset[str]
    rule: str = field(init=False, default="FD2")


@dataclass(frozen=True)
class FdByTransitivity(FdJustification):
    first: int
    second: int
    rule: str = field(init=False, default="FD3")


@dataclass(frozen=True)
class FdProofStep:
    fd: FD
    justification: FdJustification

    def __str__(self) -> str:
        just = self.justification
        if isinstance(just, FdByAugmentation):
            detail = f"FD2 on line {just.source}, adding {sorted(just.extra)}"
        elif isinstance(just, FdByTransitivity):
            detail = f"FD3 on lines {just.first}, {just.second}"
        elif isinstance(just, FdByReflexivity):
            detail = "FD1"
        else:
            detail = "hypothesis"
        return f"{self.fd}    [{detail}]"


class FdProof:
    """A formal Armstrong-axiom derivation."""

    def __init__(self, premises: Iterable[FD], steps: Iterable[FdProofStep]):
        self.premises = list(premises)
        self.steps = list(steps)
        if not self.steps:
            raise ProofError("an FD proof must contain at least one step")

    @property
    def conclusion(self) -> FD:
        return self.steps[-1].fd

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __str__(self) -> str:
        lines = [f"premises: {', '.join(str(p) for p in self.premises)}"]
        for index, step in enumerate(self.steps):
            lines.append(f"  {index}: {step}")
        return "\n".join(lines)


def check_fd_proof(proof: FdProof, expected_conclusion: Optional[FD] = None) -> bool:
    """Independently verify an FD proof line by line."""
    for line, step in enumerate(proof.steps):
        fd = step.fd
        just = step.justification
        if isinstance(just, FdByHypothesis):
            if fd not in proof.premises:
                raise ProofError(f"line {line}: {fd} is not a premise")
        elif isinstance(just, FdByReflexivity):
            if not fd.is_trivial():
                raise ProofError(f"line {line}: {fd} is not an FD1 instance")
        elif isinstance(just, FdByAugmentation):
            if not 0 <= just.source < line:
                raise ProofError(f"line {line}: FD2 source not earlier")
            derived = fd_augmentation(proof.steps[just.source].fd, just.extra)
            if derived != fd:
                raise ProofError(f"line {line}: FD2 yields {derived}, not {fd}")
        elif isinstance(just, FdByTransitivity):
            if not (0 <= just.first < line and 0 <= just.second < line):
                raise ProofError(f"line {line}: FD3 sources not earlier")
            try:
                derived = fd_transitivity(
                    proof.steps[just.first].fd, proof.steps[just.second].fd
                )
            except DependencyError as exc:
                raise ProofError(f"line {line}: invalid FD3: {exc}") from exc
            if derived != fd:
                raise ProofError(f"line {line}: FD3 yields {derived}, not {fd}")
        else:  # pragma: no cover - defensive
            raise ProofError(f"line {line}: unknown justification {just!r}")
    if expected_conclusion is not None and proof.conclusion != expected_conclusion:
        raise ProofError(
            f"conclusion {proof.conclusion} differs from {expected_conclusion}"
        )
    return True


def prove_fd(target: FD, premises: Iterable[FD]) -> Optional[FdProof]:
    """A checked Armstrong derivation of ``target``, or ``None``.

    Converts the closure fixpoint into a proof: maintain the invariant
    line ``X -> (current closure)``; each closure step ``W -> V`` is
    augmented by the whole current closure and chained on.
    """
    premise_list = list(premises)
    if not fd_implies(premise_list, target):
        return None
    relation = target.relation
    x_set = target.lhs_set
    steps: list[FdProofStep] = []

    # Line 0: X -> X (FD1) — unless X is empty, in which case the
    # derivation starts from the first empty-lhs premise instead.
    current: Optional[FD] = None
    if x_set:
        current = FD(relation, tuple(sorted(x_set)), tuple(sorted(x_set)))
        steps.append(FdProofStep(current, FdByReflexivity()))

    closure = set(x_set)
    current_line = len(steps) - 1
    for used_fd, added in closure_derivation(x_set, premise_list, relation):
        hyp_line = len(steps)
        steps.append(FdProofStep(used_fd, FdByHypothesis()))
        # Augment the premise W -> V by the current closure C:
        # CW -> CV; since W inside C, CW = C and CV = C u added.
        aug = fd_augmentation(used_fd, frozenset(closure))
        aug_line = len(steps)
        steps.append(FdProofStep(aug, FdByAugmentation(hyp_line, frozenset(closure))))
        closure |= set(added)
        if current is None:
            current = aug
            current_line = aug_line
        else:
            current = fd_transitivity(current, aug)
            steps.append(FdProofStep(
                current, FdByTransitivity(current_line, aug_line)
            ))
            current_line = len(steps) - 1
        if target.rhs_set <= closure:
            break

    # Project the closure down to the target's rhs with FD1 + FD3:
    # closure -> rhs (reflexivity since rhs inside closure), then chain.
    if current is None:
        return None
    if current.rhs_set != target.rhs_set or current.lhs_set != target.lhs_set:
        projector = FD(relation, tuple(sorted(current.rhs_set)),
                       tuple(sorted(target.rhs_set)))
        proj_line = len(steps)
        steps.append(FdProofStep(projector, FdByReflexivity()))
        final = fd_transitivity(current, projector)
        steps.append(FdProofStep(final, FdByTransitivity(current_line, proj_line)))
    proof = FdProof(premise_list, steps)
    check_fd_proof(proof, target.canonical())
    return proof
