"""Constructive completeness for INDs, plus polynomial special cases.

Theorem 3.1 proves the axiomatization IND1-IND3 complete; this module
makes the completeness direction *constructive*: from a Corollary 3.2
witness chain it assembles a formal :class:`~repro.core.ind_axioms.Proof`
that the independent checker accepts.

Section 3 also remarks on two fragments with polynomial-time decision
procedures:

* INDs of arity at most ``k`` for fixed ``k`` — the expression space is
  polynomial, so the same BFS is polynomial
  (:func:`decide_bounded_arity`);
* *typed* INDs ``R[X] c S[X]`` — reachability over relation names only
  (:func:`decide_typed`).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.exceptions import UnsupportedDependencyError
from repro.deps.ind import IND
from repro.core.ind_axioms import (
    ByHypothesis,
    ByProjection,
    ByReflexivity,
    ByTransitivity,
    Proof,
    ProofStep,
    apply_transitivity,
    reflexivity,
    sequences_equal,
)
from repro.core.ind_decision import DecisionResult, decide_ind


def implies_ind(
    premises: Iterable[IND], target: IND, max_nodes: int = 2_000_000
) -> bool:
    """Whether ``premises`` logically imply ``target``.

    For INDs this single answer covers unrestricted *and* finite
    implication (Theorem 3.1: the two coincide).
    """
    return decide_ind(target, premises, max_nodes=max_nodes).implied


def proof_from_decision(result: DecisionResult, premises: Iterable[IND]) -> Proof:
    """Turn a positive :class:`DecisionResult` into a formal proof.

    Each chain link becomes a hypothesis line followed (when needed) by
    an IND2 projection line; links are folded left-to-right with IND3.
    """
    premise_list = list(premises)
    if not result.implied or result.chain is None or result.links is None:
        raise ValueError("proof_from_decision needs a positive decision result")
    target = result.target
    steps: list[ProofStep] = []

    if not result.links:
        # Trivial IND: left and right expressions are identical.
        steps.append(
            ProofStep(
                reflexivity(target.lhs_relation, target.lhs_attributes),
                ByReflexivity(),
            )
        )
        return Proof(premise_list, steps)

    def emit_link(link) -> int:
        """Append hypothesis (+ projection) lines; return the line index
        holding the link's IND2 instance."""
        hypothesis_line = len(steps)
        steps.append(ProofStep(link.premise, ByHypothesis()))
        instance = link.instantiate()
        if sequences_equal(instance, link.premise):
            return hypothesis_line
        steps.append(
            ProofStep(instance, ByProjection(hypothesis_line, link.indices))
        )
        return len(steps) - 1

    current_line = emit_link(result.links[0])
    for link in result.links[1:]:
        next_line = emit_link(link)
        composed = apply_transitivity(
            steps[current_line].ind, steps[next_line].ind
        )
        steps.append(ProofStep(composed, ByTransitivity(current_line, next_line)))
        current_line = len(steps) - 1
    return Proof(premise_list, steps)


def prove_ind(
    target: IND, premises: Iterable[IND], max_nodes: int = 2_000_000
) -> Optional[Proof]:
    """A checked formal proof of ``target`` from ``premises``, or
    ``None`` when not implied."""
    premise_list = list(premises)
    result = decide_ind(target, premise_list, max_nodes=max_nodes)
    if not result.implied:
        return None
    return proof_from_decision(result, premise_list)


# ---------------------------------------------------------------------------
# Polynomial special cases (Section 3 remarks)
# ---------------------------------------------------------------------------


def decide_typed(target: IND, premises: Iterable[IND]) -> bool:
    """Polynomial decision for *typed* INDs ``R[X] c S[X]``.

    With identical attribute sequences on both sides, expressions never
    change their attribute component, so reachability collapses to a
    graph over relation names: ``R -> S`` is an edge for the query
    attribute set ``X`` whenever some premise ``R[Y] c S[Y]`` has
    ``X`` a subset of ``Y`` (IND2 projects ``Y`` down to ``X``).

    Raises :class:`UnsupportedDependencyError` on non-typed input.
    """
    premise_list = list(premises)
    if not target.is_typed():
        raise UnsupportedDependencyError(f"{target} is not typed")
    for premise in premise_list:
        if not premise.is_typed():
            raise UnsupportedDependencyError(f"{premise} is not typed")
    needed = set(target.lhs_attributes)
    start, goal = target.lhs_relation, target.rhs_relation
    if start == goal:
        return True
    visited = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for premise in premise_list:
            if premise.lhs_relation != current:
                continue
            if not needed <= set(premise.lhs_attributes):
                continue
            nxt = premise.rhs_relation
            if nxt == goal:
                return True
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    return False


def decide_bounded_arity(
    target: IND, premises: Iterable[IND], bound: int
) -> DecisionResult:
    """The BFS decision, with a guarantee: all INDs have arity <= bound.

    For fixed ``bound`` the expression graph has polynomially many
    nodes (at most ``n * arity^bound`` per relation), so this is the
    polynomial-time algorithm the paper describes for the k-ary
    fragment.  Raises :class:`UnsupportedDependencyError` when the
    guarantee does not hold.
    """
    premise_list = list(premises)
    offenders = [
        ind
        for ind in [target, *premise_list]
        if not ind.is_at_most_kary(bound)
    ]
    if offenders:
        raise UnsupportedDependencyError(
            f"INDs exceed arity bound {bound}: {offenders[0]}"
        )
    return decide_ind(target, premise_list)
