"""Compiled premise kernels for the Corollary 3.2 expression-graph BFS.

The decision procedure's inner loop asks, for every expanded
expression ``S[X]`` and every premise with left relation ``S``,
*where does each attribute of X sit in the premise's left side?* —
the textbook formulation answers with ``lhs.index(attr)`` scans at
every node expansion.  An :class:`INDKernel` is the premise compiled
once into the two lookup structures the loop actually needs:

* ``lhs_positions`` — attribute -> zero-based left-side position;
* ``rhs_attributes`` — left-side position -> right-side attribute.

Kernels are memoized on the :class:`~repro.deps.ind.IND` itself (the
``_kernel_memo`` slot), so one premise is compiled exactly once per
process no matter how many searches, sessions, or premise indexes
consult it; relation names and attributes are interned so the
expression tuples the BFS hashes compare element-wise by pointer.

On top of the per-attribute maps each kernel memoizes whole *edges*:
:meth:`INDKernel.successor_of` maps an attribute sequence directly to
the successor expression (or ``None`` when the premise does not
apply).  The memo is keyed by the expression's attribute tuple, so a
(node, premise) pair is evaluated once ever — subsequent BFS
revisits, later queries, and forked sessions all reuse the entry.

:class:`KernelIndex` buckets kernels by left-hand relation — the
compiled analogue of :func:`~repro.core.ind_decision.index_by_lhs` —
and is what :class:`~repro.engine.index.PremiseIndex` owns and
maintains incrementally through the premise lifecycle.
"""

from __future__ import annotations

from sys import intern
from typing import Iterable, Mapping, Optional

from repro.deps.ind import IND

Expression = tuple[str, tuple[str, ...]]

_MISS = object()
"""Cache sentinel distinguishing "not applicable" from "not computed"."""


class INDKernel:
    """One premise, compiled for the successor computation."""

    __slots__ = ("ind", "rhs_relation", "lhs_positions", "rhs_attributes",
                 "_succ_cache")

    def __init__(self, ind: IND):
        self.ind = ind
        self.rhs_relation = intern(ind.rhs_relation)
        self.lhs_positions = {
            intern(attr): pos for pos, attr in enumerate(ind.lhs_attributes)
        }
        self.rhs_attributes = tuple(intern(a) for a in ind.rhs_attributes)
        self._succ_cache: dict[tuple[str, ...], object] = {}

    def successor_of(
        self, attrs: tuple[str, ...]
    ) -> Optional[tuple[Expression, tuple[int, ...]]]:
        """The IND2 move for an expression with these attributes.

        Returns ``(successor expression, selected lhs positions)``, or
        ``None`` when some attribute is outside the premise's left
        side.  Memoized per attribute tuple.
        """
        entry = self._succ_cache.get(attrs, _MISS)
        if entry is _MISS:
            lhs_positions = self.lhs_positions
            positions: list[int] = []
            for attr in attrs:
                pos = lhs_positions.get(attr)
                if pos is None:
                    entry = None
                    break
                positions.append(pos)
            else:
                rhs = self.rhs_attributes
                image = tuple(rhs[p] for p in positions)
                entry = ((self.rhs_relation, image), tuple(positions))
            self._succ_cache[attrs] = entry
        return entry  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"INDKernel({self.ind!r})"


def compile_ind(ind: IND) -> INDKernel:
    """The memoized compiled form of one premise.

    The kernel is cached on the IND object (``_kernel_memo``), so the
    compilation cost — and the edge memo it accumulates — is shared by
    every search that ever touches this premise.
    """
    kernel = getattr(ind, "_kernel_memo", None)
    if kernel is None:
        kernel = INDKernel(ind)
        ind._kernel_memo = kernel
    return kernel


def intern_expression(expression: Expression) -> Expression:
    """An equal expression whose strings are interned.

    Start expressions arrive from targets (parsed text, user-built
    INDs) whose strings are not necessarily interned; interning them
    makes every hash-table comparison against BFS-produced expressions
    an identity check per element.
    """
    relation, attrs = expression
    return (intern(relation), tuple(intern(a) for a in attrs))


class KernelIndex:
    """Kernels bucketed by left-hand relation, maintained incrementally.

    The compiled counterpart of the ``inds_by_lhs`` premise index:
    ``bucket(R)`` is the tuple of kernels whose premise can move an
    expression over ``R``.  Mutations replace whole bucket tuples, so
    :meth:`copy` (dict copy) gives a safely shareable twin for
    session forking.

    ``mutations`` counts every bucket change.  The
    :class:`~repro.core.reach_index.ReachIndex` compiled on top of
    this index records the counter at compile time and
    self-invalidates on drift, so a kernel index mutated outside the
    ``PremiseIndex`` lifecycle can never serve a stale closure.
    """

    __slots__ = ("buckets", "mutations")

    def __init__(self, premises: Iterable[IND] = ()):
        self.buckets: dict[str, tuple[INDKernel, ...]] = {}
        self.mutations = 0
        for ind in premises:
            self.add(ind)

    @classmethod
    def from_lhs_buckets(
        cls, buckets: Mapping[str, tuple[IND, ...]]
    ) -> "KernelIndex":
        """Compile an :func:`index_by_lhs`-style mapping (memoized per IND).

        Premises whose left relation does not match their bucket key
        are dropped — an rhs-keyed mapping (``index_by_rhs``) contains
        no forward moves, exactly as the uncompiled search treats it.
        """
        index = cls()
        index.buckets = {
            intern(name): compiled
            for name, bucket in buckets.items()
            if (compiled := tuple(
                compile_ind(ind) for ind in bucket if ind.lhs_relation == name
            ))
        }
        return index

    def bucket(self, relation: str) -> tuple[INDKernel, ...]:
        return self.buckets.get(relation, ())

    def add(self, ind: IND) -> None:
        name = intern(ind.lhs_relation)
        self.buckets[name] = self.buckets.get(name, ()) + (compile_ind(ind),)
        self.mutations += 1

    def discard(self, ind: IND) -> None:
        """Remove one kernel whose premise equals ``ind`` (if any)."""
        name = ind.lhs_relation
        bucket = self.buckets.get(name)
        if bucket is None:
            return
        for i, kernel in enumerate(bucket):
            if kernel.ind == ind:
                remaining = bucket[:i] + bucket[i + 1:]
                if remaining:
                    self.buckets[name] = remaining
                else:
                    del self.buckets[name]
                self.mutations += 1
                return

    def copy(self) -> "KernelIndex":
        twin = KernelIndex.__new__(KernelIndex)
        twin.buckets = dict(self.buckets)
        twin.mutations = self.mutations
        return twin

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())
