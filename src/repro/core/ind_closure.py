"""IND-set closure and minimal covers.

Design-facing conveniences built on the decision procedure:

* :func:`implied_inds` — the full closure ``{tau : Sigma |= tau}`` over
  a scheme (the IND analogue of ``phi+`` in Section 7);
* :func:`minimal_ind_cover` — an irredundant equivalent subset (which
  declared INDs a schema designer can drop);
* :func:`redundant_inds` — the complement view.

The closure is exponential in the worst case (the expression space is;
see the permutation example), so arity bounds keep it practical.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.ind_decision import decide_ind
from repro.deps.enumeration import all_inds
from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema


def implied_inds(
    premises: Iterable[IND],
    schema: DatabaseSchema,
    max_arity: int | None = None,
    include_trivial: bool = False,
) -> set[IND]:
    """All INDs over ``schema`` (up to ``max_arity``) implied by
    ``premises`` — finite and unrestricted implication alike
    (Theorem 3.1).
    """
    premise_list = list(premises)
    return {
        candidate
        for candidate in all_inds(
            schema, max_arity=max_arity, include_trivial=include_trivial
        )
        if decide_ind(candidate, premise_list).implied
    }


def redundant_inds(premises: Iterable[IND]) -> list[IND]:
    """Premises implied by the *other* premises (safe to drop one at a
    time; see :func:`minimal_ind_cover` for a consistent simultaneous
    choice)."""
    premise_list = list(premises)
    result = []
    for index, premise in enumerate(premise_list):
        rest = premise_list[:index] + premise_list[index + 1:]
        if decide_ind(premise, rest).implied:
            result.append(premise)
    return result


def minimal_ind_cover(premises: Iterable[IND]) -> list[IND]:
    """An irredundant subset equivalent to ``premises``.

    Greedy elimination: repeatedly drop any IND implied by the rest.
    The result implies every original premise (checked by
    construction) and contains no internally redundant member.
    """
    cover = [p for p in dict.fromkeys(premises)]  # dedupe, keep order
    index = 0
    while index < len(cover):
        candidate = cover[index]
        rest = cover[:index] + cover[index + 1:]
        if decide_ind(candidate, rest).implied:
            cover = rest
        else:
            index += 1
    return cover


def equivalent_ind_sets(first: Iterable[IND], second: Iterable[IND]) -> bool:
    """Whether two IND sets imply each other."""
    first_list, second_list = list(first), list(second)
    return all(
        decide_ind(ind, first_list).implied for ind in second_list
    ) and all(decide_ind(ind, second_list).implied for ind in first_list)
