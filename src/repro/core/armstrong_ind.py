"""Armstrong databases for IND sets.

The paper notes (Introduction, citing Fagin [Fa4] and Fagin-Vardi
[FV]) that "Armstrong-like databases" exist for INDs: a single
database satisfying *exactly* the INDs a given set implies.  Sections
6 and 7 are hand-built instances of the idea; this module provides the
general constructive version.

Construction — *pad saturation*, a Rule (*) variant:

1. seed every relation with one tuple of private per-column values
   ``seed(R, A)``;
2. saturate: for each premise ``R[X] c S[Y]`` and each tuple of ``R``
   whose ``X``-projection is missing from ``S[Y]``, add the projected
   tuple to ``S``, filling the untouched columns with fixed per-column
   *pad* values ``pad(S, A)``.

Because the value pool is finite (seeds + pads), saturation always
terminates — even for cyclic premise sets where a fresh-null chase
would diverge.  Exactness holds because a seed value ``seed(R, A)``
reaches column ``(S, C)`` exactly when a Corollary 3.2 chain carries
it there, i.e. exactly when ``R[A] c S[C]`` is derivable — and tuples
travel whole projections at a time, so the same argument covers every
arity (verified over enumerated universes in the tests).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.exceptions import SearchBudgetExceeded
from repro.core.ind_prover import implies_ind
from repro.deps.ind import IND
from repro.model.database import Database
from repro.model.relation import Relation
from repro.model.schema import DatabaseSchema


def _seed(relation: str, attribute: str) -> str:
    return f"seed:{relation}.{attribute}"


def _pad(relation: str, attribute: str) -> str:
    return f"pad:{relation}.{attribute}"


def armstrong_database(
    schema: DatabaseSchema,
    premises: Iterable[IND],
    max_tuples: int = 200_000,
) -> Database:
    """A database satisfying exactly the INDs implied by ``premises``.

    Terminates on every input (cyclic or not); ``max_tuples`` bounds
    pathological saturations.
    """
    premise_list = list(premises)
    for premise in premise_list:
        premise.validate(schema)

    contents: dict[str, set[tuple[str, ...]]] = {}
    queue: deque[tuple[str, tuple[str, ...]]] = deque()
    for rel in schema:
        row = tuple(_seed(rel.name, attr) for attr in rel.attributes)
        contents[rel.name] = {row}
        queue.append((rel.name, row))

    total = len(contents)
    while queue:
        rel_name, row = queue.popleft()
        for premise in premise_list:
            if premise.lhs_relation != rel_name:
                continue
            src_schema = schema.relation(premise.lhs_relation)
            dst_schema = schema.relation(premise.rhs_relation)
            projection = tuple(
                row[src_schema.position(attr)]
                for attr in premise.lhs_attributes
            )
            dst_positions = [
                dst_schema.position(attr) for attr in premise.rhs_attributes
            ]
            covered = any(
                tuple(existing[p] for p in dst_positions) == projection
                for existing in contents[premise.rhs_relation]
            )
            if covered:
                continue
            new_row = [
                _pad(premise.rhs_relation, attr) for attr in dst_schema.attributes
            ]
            for value, position in zip(projection, dst_positions):
                new_row[position] = value
            candidate = tuple(new_row)
            if candidate not in contents[premise.rhs_relation]:
                contents[premise.rhs_relation].add(candidate)
                queue.append((premise.rhs_relation, candidate))
                total += 1
                if total > max_tuples:
                    raise SearchBudgetExceeded(
                        f"pad saturation exceeded {max_tuples} tuples",
                        explored=total,
                    )

    relations = {
        name: Relation(schema.relation(name), rows)
        for name, rows in contents.items()
    }
    return Database(schema, relations)


def is_armstrong_database(
    db: Database,
    premises: Iterable[IND],
    max_arity: int | None = None,
) -> tuple[bool, list[IND]]:
    """Check the Armstrong property over the enumerated IND universe.

    Returns ``(exact, mismatches)`` where ``mismatches`` lists INDs
    whose satisfaction in ``db`` disagrees with derivability from
    ``premises``.
    """
    from repro.deps.enumeration import all_inds

    premise_list = list(premises)
    mismatches: list[IND] = []
    for candidate in all_inds(db.schema, max_arity=max_arity, include_trivial=True):
        holds = db.satisfies(candidate)
        derivable = implies_ind(premise_list, candidate)
        if holds != derivable:
            mismatches.append(candidate)
    return (not mismatches, mismatches)
