"""Finite implication for *unary* FDs and INDs.

This is the fragment where the paper's finite/unrestricted split lives
(Theorem 4.4, Section 6).  Its finite-implication arguments are
counting arguments:

* a unary IND ``R[A] c S[B]`` forces ``|r[A]| <= |s[B]|``;
* a unary FD ``R: A -> B`` forces ``|r[B]| <= |r[A]|``;
* around a *cycle* of such inequalities every cardinality is equal, so
  over **finite** databases each inclusion becomes an equality of
  columns (reversing the IND) and each FD becomes a bijection
  (reversing the FD).

The decision procedure implemented here closes the premise set under:

1. FD reflexivity and transitivity (per relation);
2. IND reflexivity and transitivity;
3. the **cycle rule**: build the cardinality digraph with an edge
   ``(R,A) -> (S,B)`` for each derived IND ``R[A] c S[B]`` and an edge
   ``(R,B) -> (R,A)`` for each derived FD ``R: A -> B``; every
   dependency whose edge lies inside a strongly connected component
   reverses;

and iterates to a fixpoint.  This is the axiomatization of Cosmadakis,
Kanellakis & Vardi (cited in the paper as [KCV]) for finite
implication of unary INDs and FDs, which they prove complete — and
which, being built from unbounded cycle rules, is *not* k-ary for any
``k``, exactly as Theorem 6.1 demands.

Dropping rule 3 gives the unrestricted-implication engine for the same
fragment (no FD/IND interaction exists there; [KCV] give a binary
complete axiomatization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import UnsupportedDependencyError
from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND

Node = tuple[str, str]
"""A column: (relation name, attribute name)."""

FdFact = tuple[str, str, str]
"""A derived unary FD: (relation, lhs attribute, rhs attribute)."""

IndFact = tuple[Node, Node]
"""A derived unary IND: (source column, target column)."""


def _as_unary_facts(
    dependencies: Iterable[Dependency],
) -> tuple[set[FdFact], set[IndFact]]:
    fds: set[FdFact] = set()
    inds: set[IndFact] = set()
    for dep in dependencies:
        if isinstance(dep, FD):
            if not dep.is_unary():
                raise UnsupportedDependencyError(f"{dep} is not unary")
            fds.add((dep.relation, dep.lhs[0], dep.rhs[0]))
        elif isinstance(dep, IND):
            if not dep.is_unary():
                raise UnsupportedDependencyError(f"{dep} is not unary")
            inds.add(
                (
                    (dep.lhs_relation, dep.lhs_attributes[0]),
                    (dep.rhs_relation, dep.rhs_attributes[0]),
                )
            )
        else:
            raise UnsupportedDependencyError(
                f"unary engine accepts FDs and INDs only, got {dep}"
            )
    return fds, inds


def _transitive_close(
    fds: set[FdFact], inds: set[IndFact]
) -> tuple[set[FdFact], set[IndFact]]:
    """Close under FD and IND reflexivity-free transitivity."""
    changed = True
    while changed:
        changed = False
        for rel, a, b in list(fds):
            for rel2, c, d in list(fds):
                if rel == rel2 and b == c and (rel, a, d) not in fds and a != d:
                    fds.add((rel, a, d))
                    changed = True
        for src, mid in list(inds):
            for mid2, dst in list(inds):
                if mid == mid2 and (src, dst) not in inds and src != dst:
                    inds.add((src, dst))
                    changed = True
    return fds, inds


def _tarjan_sccs(nodes: set[Node], edges: dict[Node, set[Node]]) -> dict[Node, int]:
    """Iterative Tarjan SCC; returns a component id per node."""
    index_counter = 0
    indices: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    component: dict[Node, int] = {}
    comp_counter = 0

    for root in nodes:
        if root in indices:
            continue
        work: list[tuple[Node, list[Node], int]] = [(root, list(edges.get(root, ())), 0)]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, pointer = work.pop()
            advanced = False
            while pointer < len(successors):
                nxt = successors[pointer]
                pointer += 1
                if nxt not in indices:
                    indices[nxt] = lowlink[nxt] = index_counter
                    index_counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((node, successors, pointer))
                    work.append((nxt, list(edges.get(nxt, ())), 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], indices[nxt])
            if advanced:
                continue
            if lowlink[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_counter
                    if member == node:
                        break
                comp_counter += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


def _apply_cycle_rule(fds: set[FdFact], inds: set[IndFact]) -> bool:
    """Reverse every dependency whose cardinality edge lies in an SCC.

    Cardinality digraph: IND ``u c v`` contributes ``u -> v``
    (``|u| <= |v|``); FD ``R: a -> b`` contributes ``(R,b) -> (R,a)``
    (``|r[b]| <= |r[a]|``).  Inside an SCC all cardinalities coincide,
    so finiteness turns the inequalities into the equalities that
    justify the reversals.  Returns whether anything new was added.
    """
    nodes: set[Node] = set()
    edges: dict[Node, set[Node]] = {}

    def add_edge(u: Node, v: Node) -> None:
        nodes.add(u)
        nodes.add(v)
        edges.setdefault(u, set()).add(v)

    for src, dst in inds:
        add_edge(src, dst)
    for rel, a, b in fds:
        add_edge((rel, b), (rel, a))
    if not nodes:
        return False
    component = _tarjan_sccs(nodes, edges)

    changed = False
    for src, dst in list(inds):
        if component.get(src) == component.get(dst) and (dst, src) not in inds:
            inds.add((dst, src))
            changed = True
    for rel, a, b in list(fds):
        if component.get((rel, a)) == component.get((rel, b)) and (
            (rel, b, a) not in fds
        ):
            fds.add((rel, b, a))
            changed = True
    return changed


@dataclass
class UnaryClosure:
    """The closed fact sets of the unary engine, with query helpers."""

    fds: set[FdFact] = field(default_factory=set)
    inds: set[IndFact] = field(default_factory=set)

    def implies(self, target: Dependency) -> bool:
        if isinstance(target, FD):
            if not target.is_unary():
                raise UnsupportedDependencyError(f"{target} is not unary")
            rel, a, b = target.relation, target.lhs[0], target.rhs[0]
            return a == b or (rel, a, b) in self.fds
        if isinstance(target, IND):
            if not target.is_unary():
                raise UnsupportedDependencyError(f"{target} is not unary")
            src = (target.lhs_relation, target.lhs_attributes[0])
            dst = (target.rhs_relation, target.rhs_attributes[0])
            return src == dst or (src, dst) in self.inds
        raise UnsupportedDependencyError(
            f"unary engine decides FDs and INDs only, got {target}"
        )

    def derived_dependencies(self) -> list[Dependency]:
        """All derived facts as dependency objects (for inspection)."""
        result: list[Dependency] = []
        for rel, a, b in sorted(self.fds):
            result.append(FD(rel, (a,), (b,)))
        for (sr, sa), (tr, ta) in sorted(self.inds):
            result.append(IND(sr, (sa,), tr, (ta,)))
        return result


def unary_closure(
    premises: Iterable[Dependency], finite: bool = True
) -> UnaryClosure:
    """Close a unary FD/IND set under the applicable rules.

    ``finite=True`` includes the cycle rule (finite implication);
    ``finite=False`` leaves only the transitivity rules (unrestricted
    implication for this fragment).
    """
    fds, inds = _as_unary_facts(premises)
    _transitive_close(fds, inds)
    if finite:
        while _apply_cycle_rule(fds, inds):
            _transitive_close(fds, inds)
    return UnaryClosure(fds=fds, inds=inds)


def finitely_implies_unary(
    premises: Iterable[Dependency], target: Dependency
) -> bool:
    """Finite implication for unary FDs + INDs (complete per [KCV])."""
    return unary_closure(premises, finite=True).implies(target)


def unrestricted_implies_unary(
    premises: Iterable[Dependency], target: Dependency
) -> bool:
    """Unrestricted implication for unary FDs + INDs."""
    return unary_closure(premises, finite=False).implies(target)


def finite_unrestricted_gap(
    premises: Iterable[Dependency], candidates: Iterable[Dependency]
) -> list[Dependency]:
    """Candidates finitely implied but not unrestrictedly implied.

    Theorem 4.4's content: for FDs and INDs together this gap is
    non-empty (unlike for FDs alone or INDs alone).
    """
    premise_list = list(premises)
    finite = unary_closure(premise_list, finite=True)
    unrestricted = unary_closure(premise_list, finite=False)
    return [
        dep
        for dep in candidates
        if finite.implies(dep) and not unrestricted.implies(dep)
    ]


@dataclass
class CycleWitness:
    """An explanation of why the finite cycle rule fired for a
    dependency: the cardinality-graph cycle whose equalities justify
    the reversal (the paper's counting argument, spelled out)."""

    reversed_dependency: Dependency
    cycle: list[Node]

    def __str__(self) -> str:
        path = " <= ".join(f"|{rel}.{attr}|" for rel, attr in self.cycle)
        return (
            f"{self.reversed_dependency} is finitely implied because the "
            f"cardinalities {path} <= |{self.cycle[0][0]}.{self.cycle[0][1]}| "
            f"form a cycle, hence are all equal"
        )


def _bfs_path(
    edges: dict[Node, set[Node]], start: Node, goal: Node
) -> Optional[list[Node]]:
    """Shortest directed path in the cardinality digraph, or None."""
    if start == goal:
        return [start]
    from collections import deque

    parents: dict[Node, Node] = {}
    seen = {start}
    queue: deque[Node] = deque([start])
    while queue:
        node = queue.popleft()
        for nxt in edges.get(node, ()):
            if nxt in seen:
                continue
            seen.add(nxt)
            parents[nxt] = node
            if nxt == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(nxt)
    return None


def explain_cycle_reversal(
    premises: Iterable[Dependency], target: Dependency
) -> Optional["CycleWitness"]:
    """A cardinality-cycle explanation for a finitely-implied target
    that is not unrestrictedly implied, or ``None``.

    The witness is a directed cycle through the target's two columns
    in the cardinality digraph of the premises' unrestricted closure:
    going around the loop forces every column cardinality on it to be
    equal in any finite model, which is what licenses the reversal.
    Both arcs (there and back) must exist; a reversal that only emerges
    after iterated fixpoint rounds has no single-cycle witness and
    yields ``None``.
    """
    premise_list = list(premises)
    finite = unary_closure(premise_list, finite=True)
    unrestricted = unary_closure(premise_list, finite=False)
    if not finite.implies(target) or unrestricted.implies(target):
        return None

    if isinstance(target, IND):
        u_node: Node = (target.lhs_relation, target.lhs_attributes[0])
        v_node: Node = (target.rhs_relation, target.rhs_attributes[0])
    elif isinstance(target, FD):
        # The FD target R: a -> b corresponds to the cardinality claim
        # |b| <= |a|; its columns are (R, a) and (R, b).
        u_node = (target.relation, target.rhs[0])
        v_node = (target.relation, target.lhs[0])
    else:  # pragma: no cover - guarded by engine
        raise UnsupportedDependencyError(str(target))

    edges: dict[Node, set[Node]] = {}
    for src, dst in unrestricted.inds:
        edges.setdefault(src, set()).add(dst)
    for rel, a, b in unrestricted.fds:
        edges.setdefault((rel, b), set()).add((rel, a))

    path_there = _bfs_path(edges, u_node, v_node)
    path_back = _bfs_path(edges, v_node, u_node)
    if path_there is None or path_back is None:
        return None  # reversal came from an iterated fixpoint round
    cycle = path_there + path_back[1:-1]
    return CycleWitness(reversed_dependency=target, cycle=cycle)
