"""Space-bounded decision procedures for INDs (Theorem 3.3 upper bound).

The paper's PSPACE membership argument: a nondeterministic machine
holds one expression ``Si[Xi]`` at a time (linear space), guesses
which premise to apply, and accepts on reaching the target's
right-hand expression; Savitch's theorem then gives a deterministic
quadratic-space procedure.

This module implements both faithfully:

* :func:`savitch_reachable` — the recursive midpoint search of
  Savitch's theorem over the implicit expression graph.  Its working
  set is ``O(log N)`` stack frames of ``O(1)`` expressions each
  (``N`` = number of expressions), i.e. quadratic space in the input —
  at the price of (much) recomputation, exactly as the theorem
  trades time for space.
* :func:`nondeterministic_guess` — a randomized rendition of the
  NPSPACE guesser: repeated bounded random walks.  Sound for
  "implied" answers, incomplete for "not implied"; used in benchmarks
  to contrast with the exact BFS.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from repro.deps.ind import IND
from repro.core.ind_decision import (
    Expression,
    expression_of_lhs,
    expression_of_rhs,
    successors,
)
from repro.model.schema import DatabaseSchema


def expression_space_size(target: IND, schema: DatabaseSchema) -> int:
    """Upper bound on the number of expressions of the target's arity.

    Expressions are ``S[X]`` with ``X`` an ``m``-sequence of distinct
    attributes of ``S``: the count is ``sum_S P(arity(S), m)``.
    """
    m = target.arity
    total = 0
    for rel in schema:
        n = rel.arity
        if n >= m:
            total += math.perm(n, m)
    return total


def savitch_reachable(
    target: IND,
    premises: Iterable[IND],
    schema: DatabaseSchema,
) -> bool:
    """Savitch's midpoint-recursion reachability over expressions.

    ``canreach(u, v, d)`` holds when ``v`` is reachable from ``u`` in at
    most ``2^d`` steps; recursion enumerates midpoints.  The midpoint
    enumeration requires iterating the (implicit) node set, which we
    generate on the fly from the schema; the memory footprint stays
    logarithmic in the node count while the time is superpolynomial.

    Only practical for tiny instances — that is the point being
    demonstrated.  Sound and complete within its recursion depth, which
    is chosen as ``ceil(log2(N))`` with ``N`` the expression-space
    bound, so the overall answer is exact.
    """
    premise_list = list(premises)
    start = expression_of_lhs(target)
    goal = expression_of_rhs(target)
    if start == goal:
        return True

    size = max(2, expression_space_size(target, schema))
    depth = math.ceil(math.log2(size))

    def one_step(u: Expression, v: Expression) -> bool:
        return any(nxt == v for nxt, _link in successors(u, premise_list))

    def all_expressions():
        from itertools import permutations

        m = target.arity
        for rel in schema:
            if rel.arity >= m:
                for combo in permutations(rel.attributes, m):
                    yield (rel.name, combo)

    def canreach(u: Expression, v: Expression, d: int) -> bool:
        if u == v:
            return True
        if one_step(u, v):
            return True
        if d <= 0:
            return False
        for mid in all_expressions():
            if canreach(u, mid, d - 1) and canreach(mid, v, d - 1):
                return True
        return False

    return canreach(start, goal, depth)


def nondeterministic_guess(
    target: IND,
    premises: Iterable[IND],
    trials: int = 200,
    max_walk: int = 64,
    seed: int | None = 0,
) -> bool:
    """Monte-Carlo rendition of the linear-space nondeterministic
    algorithm from the PSPACE membership proof.

    Each trial stores exactly one expression and repeatedly overwrites
    it with a randomly chosen successor (the "guess").  Returns ``True``
    as soon as the target's right-hand expression is printed; a
    ``False`` answer is *not* a proof of non-implication.
    """
    premise_list = list(premises)
    rng = random.Random(seed)
    start = expression_of_lhs(target)
    goal = expression_of_rhs(target)
    if start == goal:
        return True
    for _trial in range(trials):
        current = start
        for _step in range(max_walk):
            moves = list(successors(current, premise_list))
            if not moves:
                break
            current, _link = rng.choice(moves)
            if current == goal:
                return True
    return False
