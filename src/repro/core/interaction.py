"""FD/IND interaction rules: Propositions 4.1, 4.2, 4.3.

Section 4 exhibits the simplest ways FDs and INDs interact:

* **Proposition 4.1 (pullback)** —
  ``{R[XY] c S[TU], S: T -> U} |= R: X -> Y``;
* **Proposition 4.2 (merge)** —
  ``{R[XY] c S[TU], R[XZ] c S[TV], S: T -> U} |= R[XYZ] c S[TUV]``;
* **Proposition 4.3 (repetition)** — the degenerate case of 4.2 with
  ``U = V``: ``{R[XY] c S[TU], R[XZ] c S[TU], S: T -> U} |= R[Y = Z]``
  — a *repeating dependency*, a genuinely new kind of sentence.

Each function below detects the required shape in its arguments,
raises :class:`DependencyError` when the shape is absent, and returns
the derived dependency.  Soundness is property-tested against random
databases and cross-checked against the chase.
"""

from __future__ import annotations

from repro.exceptions import DependencyError
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.core.fd_closure import fd_implies


def _t_positions(ind: IND, fd: FD) -> list[int]:
    """Positions of ``ind``'s right side that spell out ``fd``'s lhs.

    The FD's left-hand side must be entirely covered by the IND's
    right side for the interaction to fire.
    """
    if ind.rhs_relation != fd.relation:
        raise DependencyError(
            f"FD {fd} is over {fd.relation}, but IND {ind} targets {ind.rhs_relation}"
        )
    positions = []
    rhs = ind.rhs_attributes
    for attr in fd.lhs:
        try:
            positions.append(rhs.index(attr))
        except ValueError:
            raise DependencyError(
                f"FD lhs attribute {attr!r} does not occur on the right of {ind}"
            ) from None
    return positions


def pullback_fd(ind: IND, fd: FD) -> FD:
    """Proposition 4.1: derive ``R: X -> Y`` from ``R[XY] c S[TU]``
    and ``S: T -> U``.

    Generalized soundly: with IND ``R[W] c S[V]``, ``T`` a subset of
    ``V``, the derived FD maps the ``T``-positions of ``W`` to the
    positions of ``W`` whose images lie in ``U`` (within ``V``).
    """
    t_positions = set(_t_positions(ind, fd))
    u_set = fd.rhs_set
    x_attrs = [ind.lhs_attributes[i] for i in sorted(t_positions)]
    y_attrs = [
        ind.lhs_attributes[i]
        for i in range(ind.arity)
        if i not in t_positions and ind.rhs_attributes[i] in u_set
    ]
    if not y_attrs:
        raise DependencyError(
            f"no image attributes of {ind} fall inside the rhs of {fd}"
        )
    return FD(ind.lhs_relation, x_attrs or None, y_attrs)


def _split_by_t(ind: IND, fd: FD) -> tuple[list[str], list[int], list[int]]:
    """Split ``ind``'s positions into the T-part (matching ``fd.lhs``
    *in order*) and the remainder.

    Returns ``(x_attrs, t_positions, rest_positions)`` where
    ``x_attrs`` are the left-side attributes over the T-part.
    """
    positions = _t_positions(ind, fd)
    t_set = set(positions)
    if len(t_set) != len(positions):
        raise DependencyError(f"FD lhs repeats positions inside {ind}")
    rest = [i for i in range(ind.arity) if i not in t_set]
    x_attrs = [ind.lhs_attributes[i] for i in positions]
    return x_attrs, positions, rest


def merge_inds(first: IND, second: IND, fd: FD) -> IND:
    """Proposition 4.2: derive ``R[XYZ] c S[TUV]`` from
    ``R[XY] c S[TU]``, ``R[XZ] c S[TV]``, and ``S: T -> U``.

    Shape requirements checked here:

    * both INDs share source and target relations;
    * both right sides contain ``fd``'s lhs ``T``, and the two INDs
      agree on the source attributes ``X`` paired with ``T``;
    * the first IND's non-``T`` image attributes are functionally
      determined: ``{fd} |= S: T -> U`` for its ``U``-part;
    * the concatenations ``XYZ`` and ``TUV`` are duplicate-free (the
      paper's implicit disjointness convention).
    """
    if first.lhs_relation != second.lhs_relation or (
        first.rhs_relation != second.rhs_relation
    ):
        raise DependencyError(
            f"INDs {first} and {second} do not share relations"
        )
    x_first, t_first, rest_first = _split_by_t(first, fd)
    x_second, t_second, rest_second = _split_by_t(second, fd)
    if x_first != x_second:
        raise DependencyError(
            f"INDs disagree on the X-part: {x_first} vs {x_second}"
        )
    u_part = [first.rhs_attributes[i] for i in rest_first]
    if u_part and not fd_implies([fd], FD(fd.relation, fd.lhs, u_part)):
        raise DependencyError(
            f"{fd} does not determine the U-part {u_part} of {first}"
        )
    lhs = (
        x_first
        + [first.lhs_attributes[i] for i in rest_first]
        + [second.lhs_attributes[i] for i in rest_second]
    )
    rhs = (
        [first.rhs_attributes[i] for i in t_first]
        + u_part
        + [second.rhs_attributes[i] for i in rest_second]
    )
    if len(set(lhs)) != len(lhs) or len(set(rhs)) != len(rhs):
        raise DependencyError(
            "merged IND would repeat attributes; Proposition 4.2 needs "
            "disjoint Y/Z and U/V parts (use derive_rd for the "
            "coincident case)"
        )
    return IND(first.lhs_relation, lhs, first.rhs_relation, rhs)


def derive_rd(first: IND, second: IND, fd: FD) -> RD:
    """Proposition 4.3: derive the RD ``R[Y = Z]`` from
    ``R[XY] c S[TU]``, ``R[XZ] c S[TU]``, and ``S: T -> U``.

    The two INDs must have the *same* right side (per position) with
    the ``U``-part determined by the FD; the derived RD equates the
    corresponding source attributes.
    """
    if first.lhs_relation != second.lhs_relation or (
        first.rhs_relation != second.rhs_relation
    ):
        raise DependencyError(f"INDs {first} and {second} do not share relations")
    x_first, t_first, rest_first = _split_by_t(first, fd)
    x_second, t_second, rest_second = _split_by_t(second, fd)
    if x_first != x_second:
        raise DependencyError(
            f"INDs disagree on the X-part: {x_first} vs {x_second}"
        )
    u_first = [first.rhs_attributes[i] for i in rest_first]
    u_second = [second.rhs_attributes[i] for i in rest_second]
    if u_first != u_second:
        raise DependencyError(
            f"INDs target different image attributes: {u_first} vs {u_second}"
        )
    if u_first and not fd_implies([fd], FD(fd.relation, fd.lhs, u_first)):
        raise DependencyError(
            f"{fd} does not determine the U-part {u_first}"
        )
    y_attrs = [first.lhs_attributes[i] for i in rest_first]
    z_attrs = [second.lhs_attributes[i] for i in rest_second]
    if not y_attrs:
        raise DependencyError("INDs have no non-T part; nothing to equate")
    return RD(first.lhs_relation, y_attrs, z_attrs)
