"""The Rule (*) construction from the proof of Theorem 3.1.

To prove completeness, the paper builds a canonical *finite* database:
start with a single tuple ``p`` in ``Ra`` whose entry in column ``Ai``
is ``i`` (and ``0`` elsewhere), then saturate under

    **Rule (*)** — if ``Ri[C1..Ck] c Rj[D1..Dk]`` is a premise and
    ``u`` is a tuple of ``ri``, add to ``rj`` the tuple ``t`` with
    ``t[Du] = u[Cu]`` and ``0`` in every other column.

Unlike the standard chase, a fixed constant ``0`` plays the role of
every "new" value, so the construction terminates with entries in
``{0, 1, ..., m}``.  The resulting database satisfies the premises,
and it satisfies the target IND iff the target is provable — giving
completeness *and* the coincidence of finite and unrestricted
implication for INDs in one stroke.

This module implements the construction with provenance tracking, a
decision procedure on top of it, and the extraction of a Corollary 3.2
chain from the provenance of the witness tuple (mirroring the
corollary's proof).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.exceptions import DependencyError, SearchBudgetExceeded
from repro.deps.ind import IND
from repro.model.database import Database
from repro.model.relation import Relation
from repro.model.schema import DatabaseSchema

Row = tuple[int, ...]


@dataclass
class RuleStarResult:
    """The saturated database plus provenance.

    ``provenance`` maps ``(relation, tuple)`` to the
    ``(source_relation, source_tuple, premise)`` that created it;
    the initial tuple ``p`` has no entry.
    """

    database: Database
    initial: tuple[str, Row]
    provenance: dict[tuple[str, Row], tuple[str, Row, IND]]
    rounds: int


def _initial_tuple(target: IND, schema: DatabaseSchema) -> Row:
    """The paper's tuple ``p``: ``p[Ai] = i`` (1-based), else 0."""
    rel_schema = schema.relation(target.lhs_relation)
    row = [0] * rel_schema.arity
    for index, attr in enumerate(target.lhs_attributes, start=1):
        row[rel_schema.position(attr)] = index
    return tuple(row)


def rule_star_database(
    target: IND,
    premises: Iterable[IND],
    schema: DatabaseSchema,
    max_tuples: int = 500_000,
) -> RuleStarResult:
    """Saturate Rule (*) starting from the canonical tuple of ``target``.

    Terminates because every entry lies in ``{0..m}`` where ``m`` is the
    target's arity; ``max_tuples`` guards against combinatorially large
    (but still finite) saturations.
    """
    premise_list = list(premises)
    target.validate(schema)
    for premise in premise_list:
        premise.validate(schema)

    contents: dict[str, set[Row]] = {rel.name: set() for rel in schema}
    provenance: dict[tuple[str, Row], tuple[str, Row, IND]] = {}

    start_row = _initial_tuple(target, schema)
    start_rel = target.lhs_relation
    contents[start_rel].add(start_row)

    queue: deque[tuple[str, Row]] = deque([(start_rel, start_row)])
    rounds = 0
    total = 1
    while queue:
        rel_name, row = queue.popleft()
        rounds += 1
        for premise in premise_list:
            if premise.lhs_relation != rel_name:
                continue
            src_schema = schema.relation(premise.lhs_relation)
            dst_schema = schema.relation(premise.rhs_relation)
            new_row = [0] * dst_schema.arity
            for c_attr, d_attr in zip(
                premise.lhs_attributes, premise.rhs_attributes
            ):
                new_row[dst_schema.position(d_attr)] = row[src_schema.position(c_attr)]
            candidate = tuple(new_row)
            if candidate in contents[premise.rhs_relation]:
                continue
            contents[premise.rhs_relation].add(candidate)
            provenance[(premise.rhs_relation, candidate)] = (rel_name, row, premise)
            queue.append((premise.rhs_relation, candidate))
            total += 1
            if total > max_tuples:
                raise SearchBudgetExceeded(
                    f"Rule (*) saturation exceeded {max_tuples} tuples",
                    explored=total,
                )

    relations = {
        name: Relation(schema.relation(name), rows)
        for name, rows in contents.items()
    }
    database = Database(schema, relations)
    return RuleStarResult(
        database=database,
        initial=(start_rel, start_row),
        provenance=provenance,
        rounds=rounds,
    )


def witness_tuple(target: IND, schema: DatabaseSchema) -> Row:
    """The tuple ``p'`` whose presence in ``rb`` certifies implication:
    ``p'[Bi] = i`` with 0 elsewhere."""
    rel_schema = schema.relation(target.rhs_relation)
    row = [0] * rel_schema.arity
    for index, attr in enumerate(target.rhs_attributes, start=1):
        row[rel_schema.position(attr)] = index
    return tuple(row)


def decide_by_rule_star(
    target: IND,
    premises: Iterable[IND],
    schema: DatabaseSchema,
    max_tuples: int = 500_000,
) -> bool:
    """Decide ``premises |= target`` semantically via Rule (*).

    By the proof of Theorem 3.1 the saturated database satisfies the
    premises and contains the witness ``p'`` in ``rb`` iff the target
    is implied.  This is an independent decision procedure used to
    cross-validate the syntactic BFS in tests and benchmarks.
    """
    result = rule_star_database(target, premises, schema, max_tuples=max_tuples)
    goal = witness_tuple(target, schema)
    candidate_rows = result.database.relation(target.rhs_relation).tuples
    # The witness needs p'[Bi] = i; other columns of p' are whatever
    # Rule (*) produced, so membership is tested positionally on the
    # B-columns only.
    rel_schema = schema.relation(target.rhs_relation)
    positions = [
        (rel_schema.position(attr), index)
        for index, attr in enumerate(target.rhs_attributes, start=1)
    ]
    for row in candidate_rows:
        if all(row[pos] == value for pos, value in positions):
            return True
    return False


def _is_special(row: Row, arity: int) -> bool:
    """A tuple is *special* when it contains each of 1..m exactly once
    (Corollary 3.2's proof)."""
    counts = [0] * (arity + 1)
    for value in row:
        if 1 <= value <= arity:
            counts[value] += 1
    return all(count == 1 for count in counts[1:])


def chain_from_provenance(
    target: IND,
    result: RuleStarResult,
    schema: DatabaseSchema,
) -> Optional[list[tuple[str, tuple[str, ...]]]]:
    """Extract a Corollary 3.2 expression chain from Rule (*) provenance.

    Finds the witness tuple ``p'`` in ``rb``, walks provenance back to
    the initial tuple ``p``, and converts each special tuple to the
    expression it corresponds to (``(ti, si)`` corresponds to
    ``Rj[C1..Cm]`` when ``ti[Ck] = k``).  Returns ``None`` when the
    target is not implied.
    """
    arity = target.arity
    rel_schema = schema.relation(target.rhs_relation)
    positions = [
        (rel_schema.position(attr), index)
        for index, attr in enumerate(target.rhs_attributes, start=1)
    ]
    witness: Optional[Row] = None
    for row in result.database.relation(target.rhs_relation).tuples:
        if all(row[pos] == value for pos, value in positions):
            witness = row
            break
    if witness is None:
        return None

    path: list[tuple[str, Row]] = [(target.rhs_relation, witness)]
    while path[-1] != result.initial:
        entry = result.provenance.get(path[-1])
        if entry is None:
            raise DependencyError("provenance chain broken; cannot extract")
        src_rel, src_row, _premise = entry
        path.append((src_rel, src_row))
    path.reverse()

    chain: list[tuple[str, tuple[str, ...]]] = []
    for rel_name, row in path:
        row_schema = schema.relation(rel_name)
        if not _is_special(row, arity):
            raise DependencyError(
                f"non-special tuple {row} on provenance path (corollary violated)"
            )
        attrs: list[str] = [""] * arity
        for position, value in enumerate(row):
            if 1 <= value <= arity:
                attrs[value - 1] = row_schema.attributes[position]
        chain.append((rel_name, tuple(attrs)))
    return chain
