"""Observability primitives: metrics registry and request tracing.

Stdlib-only.  See :mod:`repro.obs.metrics` for the counter / gauge /
histogram registry behind ``GET /metrics`` and :mod:`repro.obs.tracing`
for the per-request span model behind ``?trace=1`` and
``/debug/traces``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_buckets,
)
from repro.obs.tracing import Trace, TraceRing, new_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Trace",
    "TraceRing",
    "default_buckets",
    "new_trace_id",
]
