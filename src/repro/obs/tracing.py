"""Per-request tracing for the serving stack.

A :class:`Trace` is minted per HTTP request (the id comes from the
client's ``X-Trace-Id`` header when present, so distributed callers
can stitch waterfalls across hops) and threaded *explicitly* through
the layers that do work on the request's behalf: protocol parse, the
coalescer (which records which trace *paid* for a shared decide),
``Tenant.mutate``, the WAL append/fsync, and per-follower replication
shipping.  Every instrumented site guards with ``if trace is not
None`` so un-traced paths — the bench harness drives the coalescer
directly — pay nothing.

Spans are flat ``(name, offset, duration, meta)`` records relative to
the trace's start; :meth:`Trace.to_json` renders the waterfall the
``?trace=1`` echo and ``/debug/traces`` return.  The trace id also
rides the WAL record and the replication envelope, so a follower's
applied record links back to the originating request — that link is
cross-process, by id, not by object.

:class:`TraceRing` keeps the last N finished traces; ``/debug/traces``
serves the slowest of them.
"""

from __future__ import annotations

import time
import uuid
from collections import deque
from typing import Optional

__all__ = ["Trace", "TraceRing", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


class _SpanTimer:
    """Context manager recording one span into its trace."""

    __slots__ = ("_trace", "_name", "_meta", "_start")

    def __init__(self, trace: "Trace", name: str, meta: dict):
        self._trace = trace
        self._name = name
        self._meta = meta

    def __enter__(self) -> "_SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._trace.add_span(
            self._name,
            time.perf_counter() - self._start,
            offset=self._start - self._trace.t0,
            **self._meta,
        )


class Trace:
    """One request's id, clock origin, and recorded spans.

    The id is minted *lazily*: a request that carries no
    ``X-Trace-Id`` header only pays the uuid cost (the single most
    expensive part of constructing a trace) if something actually
    reads the id — the ``?trace=1`` echo, a WAL record stamp, a
    replication envelope, or the debug ring's JSON rendering.
    """

    __slots__ = ("_trace_id", "started", "t0", "duration", "spans", "meta")

    def __init__(self, trace_id: Optional[str] = None):
        self._trace_id = trace_id or None
        self.started = time.time()
        self.t0 = time.perf_counter()
        self.duration: Optional[float] = None
        self.spans: list[tuple[str, float, float, dict]] = []
        self.meta: dict = {}

    @property
    def trace_id(self) -> str:
        if self._trace_id is None:
            self._trace_id = new_trace_id()
        return self._trace_id

    def span(self, name: str, **meta) -> _SpanTimer:
        """``with trace.span("decide"): ...`` — times the block."""
        return _SpanTimer(self, name, meta)

    def add_span(
        self,
        name: str,
        seconds: float,
        offset: Optional[float] = None,
        **meta,
    ) -> None:
        """Record an externally timed span ``seconds`` long.

        ``offset`` is seconds since the trace started; when omitted the
        span is assumed to have just ended.
        """
        if offset is None:
            offset = max(0.0, time.perf_counter() - self.t0 - seconds)
        self.spans.append((name, offset, seconds, meta))

    def finish(self) -> "Trace":
        self.duration = time.perf_counter() - self.t0
        return self

    def to_json(self) -> dict:
        """The span waterfall (offsets/durations in milliseconds)."""
        duration = (
            self.duration
            if self.duration is not None
            else time.perf_counter() - self.t0
        )
        return {
            "trace_id": self.trace_id,
            "started": self.started,
            "duration_ms": duration * 1e3,
            **({"meta": self.meta} if self.meta else {}),
            "spans": [
                {
                    "span": name,
                    "offset_ms": offset * 1e3,
                    "duration_ms": seconds * 1e3,
                    **meta,
                }
                for name, offset, seconds, meta in self.spans
            ],
        }


class TraceRing:
    """The last N finished traces, served slowest-first."""

    def __init__(self, capacity: int = 256):
        self._ring: deque[Trace] = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, trace: Trace) -> None:
        if trace.duration is None:
            trace.finish()
        self._ring.append(trace)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def slowest(self, limit: int = 10) -> list[Trace]:
        return sorted(
            self._ring, key=lambda trace: trace.duration or 0.0, reverse=True
        )[:limit]

    def to_json(self, limit: int = 10) -> dict:
        return {
            "recorded": self.recorded,
            "capacity": self._ring.maxlen,
            "traces": [trace.to_json() for trace in self.slowest(limit)],
        }
