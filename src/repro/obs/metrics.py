"""A stdlib-only metrics registry for the serving stack.

Three instrument kinds, all usable standalone or through a
:class:`MetricsRegistry`:

* :class:`Counter` — a monotonically increasing total.  ``inc()`` is a
  single attribute add, cheap enough for per-request hot paths.
* :class:`Gauge` — a point-in-time value (``set``/``inc``/``dec``).
  Most gauges in the server are never touched on the request path:
  they are written by *collectors* (callbacks run at scrape time) that
  read the engine's existing ``stats()`` dicts, so instrumenting a
  subsystem costs nothing until someone actually scrapes ``/metrics``.
* :class:`Histogram` — fixed log-spaced buckets (default 10µs..~5min,
  factor 2) with p50/p95/p99 readout.  ``observe()`` is one bisect
  over 26 floats; merging two histograms preserves per-bucket counts
  exactly (the property the bucket-math tests pin).

The registry renders two wire forms:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition 0.0.4 (``# HELP``/``# TYPE`` once per family, label
  children, ``_bucket``/``_sum``/``_count`` series for histograms).
* :meth:`MetricsRegistry.render_json` — the same data as one JSON
  object, which is what ``repro top`` polls.

Label sets are immutable per instrument: ``registry.counter(name,
follower="b")`` returns the one child for that label combination, so
call sites can cache the instrument object and skip the dict lookup.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_buckets",
]


def default_buckets(
    start: float = 1e-5, factor: float = 2.0, count: int = 26
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds: 10µs, 20µs, ... ~5.6 minutes.

    One fixed ladder for every latency histogram keeps histograms
    mergeable (identical bounds) and the exposition size constant.
    """
    return tuple(start * factor**i for i in range(count))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str = "", help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = labels or {}
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def to_json(self) -> int | float:
        return self.value


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str = "", help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = labels or {}
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def to_json(self) -> int | float:
        return self.value


class Histogram:
    """Fixed log-bucket latency histogram with quantile readout.

    ``observe`` places a sample in the first bucket whose upper bound
    is >= the value; samples beyond the last bound land in the
    overflow (+Inf) bucket.  :meth:`quantile` returns the upper bound
    of the bucket holding the nearest-rank sample — an estimate that
    always *brackets* the true quantile (true <= estimate <= true *
    factor), which is the contract the property tests check.
    """

    __slots__ = (
        "name", "help", "labels", "bounds", "counts", "sum", "count", "max",
    )

    def __init__(
        self,
        name: str = "",
        help: str = "",
        labels: dict | None = None,
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.help = help
        self.labels = labels or {}
        self.bounds = tuple(buckets) if buckets is not None else default_buckets()
        self.counts = [0] * (len(self.bounds) + 1)  # last slot == +Inf
        self.sum = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value > self.max:
            self.max = value

    def quantile(self, fraction: float) -> float:
        """Nearest-rank quantile estimate (upper bucket bound)."""
        if self.count == 0:
            return 0.0
        rank = max(1, min(self.count, int(fraction * self.count) + 1))
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max  # overflow bucket: the observed max
        return self.max

    def bracket(self, fraction: float) -> tuple[float, float]:
        """The ``(lower, upper]`` bounds of the quantile's bucket."""
        upper = self.quantile(fraction)
        if self.count == 0:
            return (0.0, 0.0)
        index = bisect_left(self.bounds, upper)
        lower = self.bounds[index - 1] if index > 0 else 0.0
        if index >= len(self.bounds):  # overflow: upper is the max
            lower = self.bounds[-1]
        return (lower, upper)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (identical bounds only)."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, bucket_count in enumerate(other.counts):
            self.counts[i] += bucket_count
        self.sum += other.sum
        self.count += other.count
        if other.max > self.max:
            self.max = other.max
        return self

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


_TYPES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


def _format_value(value: int | float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{str(val)}"' for key, val in sorted(merged.items())
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Get-or-create instrument registry with scrape-time collectors.

    A *collector* is a zero-argument callable registered with
    :meth:`register_collector`; every scrape (either renderer) runs
    all collectors first, so gauges derived from engine ``stats()``
    dicts are refreshed only when someone looks.
    """

    def __init__(self):
        self._instruments: dict[tuple[str, tuple], object] = {}
        self._families: dict[str, type] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- instrument creation ---------------------------------------------

    def _get(self, cls, name: str, help: str, labels: dict, **kwargs):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if type(instrument) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{_TYPES[type(instrument)]}"
                )
            return instrument
        family = self._families.get(name)
        if family is not None and family is not cls:
            raise ValueError(
                f"metric family {name!r} already registered as {_TYPES[family]}"
            )
        instrument = cls(name, help, labels, **kwargs)
        self._instruments[key] = instrument
        self._families[name] = cls
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def register(self, instrument):
        """Adopt an already-built instrument into this registry.

        Used when a component created standalone instruments before the
        server's registry existed (e.g. a :class:`TenantRegistry` built
        ahead of its :class:`ReasoningServer`) — the live objects keep
        their accumulated values and become scrapeable.
        """
        key = (instrument.name, tuple(sorted(instrument.labels.items())))
        existing = self._instruments.get(key)
        if existing is instrument:
            return instrument
        if existing is not None:
            raise ValueError(
                f"metric {instrument.name!r} already registered"
            )
        family = self._families.get(instrument.name)
        if family is not None and family is not type(instrument):
            raise ValueError(
                f"metric family {instrument.name!r} already registered as "
                f"{_TYPES[family]}"
            )
        self._instruments[key] = instrument
        self._families[instrument.name] = type(instrument)
        return instrument

    def register_collector(self, collector: Callable[[], None]) -> None:
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector()

    # -- rendering --------------------------------------------------------

    def _grouped(self) -> dict[str, list]:
        """Instruments grouped by family name, label-sorted within."""
        groups: dict[str, list] = {}
        for (name, _labels), instrument in sorted(self._instruments.items()):
            groups.setdefault(name, []).append(instrument)
        return groups

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        self.collect()
        lines: list[str] = []
        for name, instruments in self._grouped().items():
            kind = _TYPES[type(instruments[0])]
            help_text = next(
                (inst.help for inst in instruments if inst.help), ""
            )
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for inst in instruments:
                if isinstance(inst, Histogram):
                    cumulative = 0
                    for bound, bucket_count in zip(inst.bounds, inst.counts):
                        cumulative += bucket_count
                        labels = _label_str(
                            inst.labels, {"le": _format_value(bound)}
                        )
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _label_str(inst.labels, {"le": "+Inf"})
                    lines.append(f"{name}_bucket{labels} {inst.count}")
                    lines.append(
                        f"{name}_sum{_label_str(inst.labels)} "
                        f"{_format_value(inst.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_label_str(inst.labels)} {inst.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_label_str(inst.labels)} "
                        f"{_format_value(inst.value)}"
                    )
        return "\n".join(lines) + "\n"

    def render_json(self) -> dict:
        """The same metrics as one JSON object (what ``repro top`` polls)."""
        self.collect()
        payload: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, instruments in self._grouped().items():
            for inst in instruments:
                key = f"{name}{_label_str(inst.labels)}"
                section = {
                    Counter: "counters", Gauge: "gauges", Histogram: "histograms",
                }[type(inst)]
                payload[section][key] = inst.to_json()
        return payload
