"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro check   bundle.json       # database vs dependencies
    python -m repro implies bundle.json "MGR[NAME] <= PERSON[NAME]"
    python -m repro implies bundle.json --finite "R[B] <= R[A]"
    python -m repro implies bundle.json --json "MGR[NAME] <= PERSON[NAME]"
    python -m repro prove   bundle.json "MGR[NAME] <= PERSON[NAME]"
    python -m repro batch   bundle.json targets.txt   # many questions, one load
    python -m repro whatif  bundle.json targets.txt --add "R[A] <= S[A]"
    python -m repro discover bundle.json --json   # mine FDs/INDs from data
    python -m repro shell   bundle.json       # interactive lifecycle REPL
    python -m repro keys    bundle.json       # candidate keys per relation
    python -m repro summary bundle.json       # structural profile
    python -m repro bench   --out BENCH_e22.json --trajectory BENCH_trajectory.json
    python -m repro serve   --port 8765 --tenant app=bundle.json
    python -m repro call    /tenants/app/implies '{"target": "MGR[NAME] <= PERSON[NAME]"}'
    python -m repro top     --port 8765       # live /metrics table

``bundle.json`` follows the :mod:`repro.io` format: a schema, a list
of dependencies in the text DSL, and optionally a database instance.
Every subcommand loads the bundle into one
:class:`~repro.engine.session.ReasoningSession`, which indexes the
premises once and routes each question to the right engine.  The
lifecycle subcommands (``shell``, ``whatif``) then evolve that session
in place — add/retract premises, compare verdicts across versions —
instead of reloading per question.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from repro.engine.answer import Semantics
from repro.engine.session import ReasoningSession
from repro.exceptions import ReproError
from repro.io import bundle_from_json, load_session, patch_from_json


def _load(path: str) -> ReasoningSession:
    with open(path, encoding="utf-8") as fp:
        return load_session(fp)


def _semantics(args: argparse.Namespace) -> Semantics:
    return Semantics.FINITE if getattr(args, "finite", False) else Semantics.UNRESTRICTED


def _read_targets(path: str) -> list[str]:
    with open(path, encoding="utf-8") as fp:
        lines = [line.strip() for line in fp]
    return [line for line in lines if line and not line.startswith("#")]


def _cmd_check(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    if session.db is None:
        print("bundle has no database to check", file=sys.stderr)
        return 2
    report = session.check()
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        return 0 if report.ok else 1
    for dep, holds in report.results:
        if holds:
            print(f"OK        {dep}")
        else:
            print(f"VIOLATED  {dep}")
            for witness in report.witnesses[dep][:3]:
                print(f"          witness: {witness}")
    total = len(report.results)
    print(f"\n{report.satisfied_count}/{total} dependencies hold")
    return 0 if report.ok else 1


def _cmd_implies(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    answer = session.implies(args.dependency, semantics=_semantics(args))
    if args.json:
        print(json.dumps(answer.to_json(), indent=2))
    else:
        print(answer.describe())
    return 0 if answer.verdict else 1


def _cmd_prove(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    answer = session.prove(args.dependency)
    if not answer.verdict:
        if answer.stats.get("subset_complete", True):
            print(f"{answer.target} is NOT implied by the premises")
        else:
            # The proof calculus only saw the class-matching premises;
            # mixed sets can imply more (Section 4), so don't overclaim.
            kind = "IND" if answer.engine.value == "corollary-3.2" else "FD"
            print(f"{answer.target} is NOT provable from the {kind} premises "
                  f"alone (premises are mixed; 'implies' decides via the "
                  f"chase)")
        return 1
    print(answer.proof)
    print("\nproof verified by the independent checker")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    targets = _read_targets(args.targets)
    if not targets:
        print("targets file has no dependencies to decide", file=sys.stderr)
        return 2
    answers = session.implies_all(targets, semantics=_semantics(args))
    implied = sum(answer.verdict for answer in answers)
    if args.json:
        stats = session.stats()
        print(json.dumps({
            "answers": [answer.to_json() for answer in answers],
            "implied": implied,
            "total": len(answers),
            "reach_cache_hits": stats["reach_cache_hits"],
        }, indent=2))
        return 0 if implied == len(answers) else 1
    width = max(len(str(answer.target)) for answer in answers)
    for answer in answers:
        print(f"{str(answer.target):<{width}}  {answer.verdict_word:<12} "
              f"{answer.engine.value}")
    stats = session.stats()
    print(f"\n{implied}/{len(answers)} implied "
          f"(premises indexed once; {stats['reach_cache_hits']} "
          f"exploration cache hit(s))")
    return 0 if implied == len(answers) else 1


def _cmd_discover(args: argparse.Namespace) -> int:
    """Mine the bundle database's FDs/INDs and reduce them to a cover."""
    from repro.discovery import discover

    with open(args.bundle, encoding="utf-8") as fp:
        _schema, _deps, db = bundle_from_json(fp.read())
    if db is None:
        print("bundle has no database to profile", file=sys.stderr)
        return 2
    classes = tuple(
        part.strip() for part in args.classes.split(",") if part.strip()
    )
    try:
        report = discover(
            db,
            classes=classes,
            max_lhs=args.max_lhs,
            max_ind_arity=args.max_ind_arity,
            prune=not args.no_prune,
            reduce=not args.no_reduce,
            reduce_strategy=args.strategy,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.describe())
    if args.bundle_out:
        with open(args.bundle_out, "w", encoding="utf-8") as fp:
            fp.write(report.bundle_json())
        print(
            f"cover bundle written to {args.bundle_out}",
            file=sys.stderr if args.json else sys.stdout,
        )
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    """Diff verdicts across a hypothetical premise change."""
    session = _load(args.bundle)
    targets = _read_targets(args.targets)
    if not targets:
        print("targets file has no dependencies to decide", file=sys.stderr)
        return 2
    add = list(args.add or [])
    retract = list(args.retract or [])
    if args.patch:
        with open(args.patch, encoding="utf-8") as fp:
            patch_add, patch_retract = patch_from_json(fp.read(), session.schema)
        add.extend(patch_add)
        retract.extend(patch_retract)
    if not add and not retract:
        print("whatif needs --add, --retract, or --patch", file=sys.stderr)
        return 2
    flips = session.whatif(
        targets, add=add, retract=retract, semantics=_semantics(args)
    )
    flipped = sum(flip.flipped for flip in flips)
    if args.json:
        print(json.dumps({
            "flips": [
                {
                    "target": str(flip.target),
                    "before": flip.before.to_json(),
                    "after": flip.after.to_json(),
                    "flipped": flip.flipped,
                }
                for flip in flips
            ],
            "flipped": flipped,
            "total": len(flips),
        }, indent=2))
        return 1 if flipped else 0
    width = max(len(str(flip.target)) for flip in flips)
    for flip in flips:
        marker = "  FLIPPED" if flip.flipped else ""
        print(f"{str(flip.target):<{width}}  {flip.before.verdict_word:<12} "
              f"-> {flip.after.verdict_word:<12}{marker}")
    base = flips[0].before.version if flips else 0
    variant = flips[0].after.version if flips else 0
    print(f"\n{flipped}/{len(flips)} verdicts flipped "
          f"(base v{base} -> variant v{variant})")
    return 1 if flipped else 0


_SHELL_HELP = """\
commands:
  implies [-f] <dep>   decide Sigma |= dep (-f: finite semantics)
  prove <dep>          formal checked proof for dep
  add <dep>            assert a premise (bumps the version)
  retract <dep>        withdraw a premise (bumps the version)
  keys [REL]           candidate keys (one relation or all)
  closure REL A,B      attribute closure X+ within REL
  deps                 list the current premises
  discover             mine FDs/INDs from the bundled database
  stats                session cache/workload counters
  version              current session version
  help                 this text
  quit                 leave the shell (also: exit, Ctrl-D)"""


def _shell_dispatch(session: ReasoningSession, line: str) -> bool:
    """Run one shell command; returns False when the shell should exit."""
    words = line.split(None, 1)
    command, rest = words[0], (words[1].strip() if len(words) > 1 else "")
    if command in ("quit", "exit"):
        return False
    if command == "help":
        print(_SHELL_HELP)
    elif command == "version":
        print(f"v{session.version}")
    elif command == "stats":
        for key, value in session.stats().items():
            print(f"  {key}: {value}")
    elif command == "deps":
        for dep in session.dependencies:
            print(f"  {dep}")
        print(f"({len(session.dependencies)} premises, v{session.version})")
    elif command == "discover":
        if session.db is None:
            print("bundle has no database to profile", file=sys.stderr)
        else:
            from repro.discovery import discover

            print(discover(session.db).describe())
    elif command == "add":
        delta = session.add(rest)
        print(f"v{session.version}: +{len(delta.added)} premise")
    elif command == "retract":
        delta = session.retract(rest)
        print(f"v{session.version}: -{len(delta.removed)} premise")
    elif command == "implies":
        semantics = Semantics.UNRESTRICTED
        for flag in ("-f", "--finite"):
            if rest.startswith(flag + " "):
                semantics = Semantics.FINITE
                rest = rest[len(flag):].strip()
                break
        print(session.implies(rest, semantics=semantics).describe())
    elif command == "prove":
        answer = session.prove(rest)
        print(answer.proof if answer.verdict
              else f"{answer.target} is not provable here")
    elif command == "keys":
        for name, keys in session.keys(rest or None).items():
            rendered = ", ".join(
                "{" + ",".join(sorted(key)) + "}" for key in keys
            )
            print(f"  {name}: {rendered}")
    elif command == "closure":
        parts = rest.split(None, 1)
        if len(parts) != 2:
            print("usage: closure REL A,B", file=sys.stderr)
        else:
            attrs = [a.strip() for a in parts[1].split(",") if a.strip()]
            closed = session.closure(parts[0], attrs)
            print("{" + ",".join(sorted(closed)) + "}")
    else:
        print(f"unknown command {command!r} (try 'help')", file=sys.stderr)
    return True


def _cmd_shell(args: argparse.Namespace) -> int:
    """Interactive premise-lifecycle REPL over one bundle."""
    session = _load(args.bundle)
    print(f"repro shell — {session!r}")
    print("type 'help' for commands, 'quit' to leave")
    interactive = sys.stdin.isatty()
    while True:
        if interactive:
            sys.stdout.write("repro> ")
            sys.stdout.flush()
        line = sys.stdin.readline()
        if not line:  # EOF
            break
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if not _shell_dispatch(session, line):
                break
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the recorded benchmark workloads; optionally gate on a baseline."""
    from repro import bench

    if args.list:
        for name in sorted(bench.WORKLOADS):
            print(name)
        return 0
    names = list(args.workload or [])
    for group in args.workloads or []:
        names.extend(
            name.strip() for name in group.split(",") if name.strip()
        )
    try:
        report = bench.run_benchmarks(
            names=names or None, repeats=args.repeats
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # With --json, stdout carries exactly one JSON document; the
    # progress/verdict chatter moves to stderr so pipelines can parse.
    def info(message: str) -> None:
        print(message, file=sys.stderr if args.json else sys.stdout)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(bench.format_report(report))
    if args.out:
        bench.write_report(report, args.out)
        info(f"report written to {args.out}")
    # Resolve the baseline BEFORE appending to the trajectory: CI points
    # both flags at the same file, and appending first would make the
    # gate compare the current run against itself (always passing).
    baseline = None
    if args.baseline:
        baseline = bench.baseline_from(bench.load_report(args.baseline))
    if args.trajectory:
        entries = bench.append_trajectory(report, args.trajectory)
        info(f"trajectory {args.trajectory} now has {len(entries)} run(s)")
    if baseline is not None:
        regressions = bench.compare_reports(
            report, baseline, threshold=args.threshold
        )
        if regressions:
            # Without --blocking every regression blocks (exit 1); with
            # it, only the named workloads do — the rest are warnings
            # (the CI gate blocks on the decision workloads and keeps
            # the noise-prone chase advisory).
            blocking = set(args.blocking or [])
            hard = [
                r for r in regressions
                if not blocking or r.workload in blocking
            ]
            print(
                f"\n{len(regressions)} workload(s) regressed more than "
                f"{args.threshold:.0%} against {args.baseline}:",
                file=sys.stderr,
            )
            for regression in regressions:
                advisory = (
                    "" if not blocking or regression.workload in blocking
                    else "  [advisory]"
                )
                print(f"  {regression}{advisory}", file=sys.stderr)
            if hard:
                return 1
            info("only advisory workloads regressed; gate passes")
        else:
            info(f"no workload regressed more than {args.threshold:.0%} "
                 f"against {args.baseline}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant reasoning server until drained."""
    import asyncio

    from repro.serve import (
        FaultInjector,
        ReasoningServer,
        StateDir,
        TenantRegistry,
        serve_main,
    )

    try:
        faults = FaultInjector(
            args.faults or "", latency_ms=args.fault_latency_ms
        )
        env_faults = FaultInjector.from_env()
        if env_faults and not faults:
            faults = env_faults
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    state_dir = None
    if args.state_dir:
        state_dir = StateDir(
            args.state_dir, faults=faults,
            snapshot_every=args.snapshot_every,
        )
    registry = TenantRegistry(
        artifact_capacity=args.lru_capacity, state_dir=state_dir
    )
    if registry.recovered_tenants:
        print(
            f"recovered {registry.recovered_tenants} tenant(s) "
            f"({registry.replayed_records} WAL record(s) replayed) "
            f"from {args.state_dir}",
            flush=True,
        )
    for spec in args.tenant or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(
                f"error: --tenant expects NAME=BUNDLE.json, got {spec!r}",
                file=sys.stderr,
            )
            return 2
        if name in registry.tenants:
            continue  # already recovered from --state-dir
        with open(path, encoding="utf-8") as fp:
            schema, dependencies, db = bundle_from_json(fp.read())
        registry.create(name, schema, dependencies, db=db)
    try:
        server = ReasoningServer(
            registry, host=args.host, port=args.port, grace=args.grace,
            default_deadline=args.default_deadline, faults=faults,
            replica_of=args.replica_of, heartbeat=args.heartbeat,
            failover_after=args.failover_after,
            default_max_lag=args.max_lag, advertise=args.advertise,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return asyncio.run(serve_main(server))


def _cmd_call(args: argparse.Namespace) -> int:
    """One request against a running server (scripting/smoke tests)."""
    from repro.serve import ServeClient, ServeError

    payload = None
    if args.body is not None:
        try:
            payload = json.loads(args.body)
        except json.JSONDecodeError as exc:
            print(f"error: body is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(payload, dict):
            print("error: body must be a JSON object", file=sys.stderr)
            return 2
    method = args.method
    if method is None:
        method = "GET" if payload is None else "POST"
    client = ServeClient(host=args.host, port=args.port, timeout=args.timeout)
    try:
        result = client.request(method.upper(), args.path, payload)
    except ServeError as exc:
        refusal = {"error": str(exc), "status": exc.status, **exc.extra}
        print(json.dumps(refusal, indent=2))
        return 2
    finally:
        client.close()
    if args.json:
        # The machine envelope: the payload plus client-side wall time
        # and transport counters (retries, backoff slept).
        print(json.dumps({
            "result": result,
            "call_seconds": client.last_call_seconds,
            "transport": client.transport_stats(),
        }, indent=2))
    else:
        print(json.dumps(result, indent=2))
    # Verdict-style payloads drive shell conditionals: falsy verdict -> 1.
    if isinstance(result, dict) and result.get("verdict") is False:
        return 1
    return 0


def _format_top(metrics: dict, endpoint: str) -> str:
    """One ``repro top`` frame from a ``/metrics?format=json`` payload."""
    counters = sorted(metrics.get("counters", {}).items())
    gauges = sorted(metrics.get("gauges", {}).items())
    histograms = sorted(metrics.get("histograms", {}).items())
    names = [name for name, _ in counters + gauges + histograms]
    width = max([len(name) for name in names] + [24])

    def value_fmt(name: str):
        if "_seconds" in name:
            return lambda v: f"{v * 1e3:.2f}ms"
        return lambda v: f"{v:.6g}" if isinstance(v, float) else str(v)

    lines = [
        f"repro top — {endpoint} — "
        f"{len(counters)} counters, {len(gauges)} gauges, "
        f"{len(histograms)} histograms",
    ]
    if counters:
        lines.append("")
        lines.append(f"{'COUNTER':<{width}}  {'TOTAL':>12}")
        for name, value in counters:
            lines.append(f"{name:<{width}}  {value:>12}")
    if gauges:
        lines.append("")
        lines.append(f"{'GAUGE':<{width}}  {'VALUE':>12}")
        for name, value in gauges:
            lines.append(f"{name:<{width}}  {value_fmt(name)(value):>12}")
    if histograms:
        lines.append("")
        lines.append(
            f"{'HISTOGRAM':<{width}}  {'COUNT':>8} {'P50':>10} "
            f"{'P95':>10} {'P99':>10} {'MAX':>10}"
        )
        for name, hist in histograms:
            fmt = value_fmt(name)
            lines.append(
                f"{name:<{width}}  {hist['count']:>8} "
                f"{fmt(hist['p50']):>10} {fmt(hist['p95']):>10} "
                f"{fmt(hist['p99']):>10} {fmt(hist['max']):>10}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live metrics table polled from a running server's ``/metrics``."""
    from repro.serve import ServeClient, ServeError

    endpoint = f"{args.host}:{args.port}"
    client = ServeClient(host=args.host, port=args.port, timeout=args.timeout)
    try:
        while True:
            try:
                metrics = client.request("GET", "/metrics?format=json")
            except (ServeError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            frame = _format_top(metrics, endpoint)
            if not args.once:
                sys.stdout.write("\x1b[2J\x1b[H")  # clear, home cursor
            print(frame, flush=True)
            if args.once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _cmd_keys(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    for rel in session.schema:
        keys = session.keys(rel.name)[rel.name]
        rendered = ", ".join(
            "{" + ",".join(sorted(key)) + "}" for key in keys
        )
        print(f"{rel}: {rendered}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.analysis.ind_graph import summarize_ind_set

    session = _load(args.bundle)
    inds, fds = session.index.inds, session.index.fds
    total = len(session.dependencies)
    print(f"schema: {session.schema}")
    print(f"dependencies: {len(inds)} INDs, {len(fds)} FDs, "
          f"{total - len(inds) - len(fds)} other")
    if inds:
        print(f"IND profile: {summarize_ind_set(inds)}")
    if session.db is not None:
        print(f"database: {session.db.total_tuples()} tuples, "
              f"{len(session.db.active_domain())} distinct values")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Inclusion/functional dependency tooling "
            "(Casanova-Fagin-Papadimitriou, PODS 1982)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="check a database against its dependencies")
    p_check.add_argument("bundle", help="path to a bundle JSON file")
    p_check.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    p_check.set_defaults(func=_cmd_check)

    p_implies = sub.add_parser("implies", help="decide an implication question")
    p_implies.add_argument("bundle")
    p_implies.add_argument("dependency", help="target in the text DSL")
    p_implies.add_argument(
        "--finite", action="store_true",
        help="finite implication (unary FD/IND fragment)",
    )
    p_implies.add_argument(
        "--json", action="store_true", help="machine-readable JSON answer"
    )
    p_implies.set_defaults(func=_cmd_implies)

    p_prove = sub.add_parser("prove", help="produce a formal checked proof")
    p_prove.add_argument("bundle")
    p_prove.add_argument("dependency")
    p_prove.set_defaults(func=_cmd_prove)

    p_batch = sub.add_parser(
        "batch",
        help="decide many implication questions in one session",
    )
    p_batch.add_argument("bundle")
    p_batch.add_argument(
        "targets",
        help="file with one DSL dependency per line ('#' comments allowed)",
    )
    p_batch.add_argument(
        "--finite", action="store_true",
        help="finite implication (unary FD/IND fragment)",
    )
    p_batch.add_argument(
        "--json", action="store_true", help="machine-readable JSON answers"
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_discover = sub.add_parser(
        "discover",
        help="mine the FDs/INDs the bundle's database satisfies",
    )
    p_discover.add_argument("bundle", help="bundle JSON with a 'database' section")
    p_discover.add_argument(
        "--classes", default="fd,ind", metavar="KINDS",
        help="comma-separated classes to mine (default: fd,ind)",
    )
    p_discover.add_argument(
        "--max-lhs", type=int, default=None, metavar="K",
        help="cap FD left-hand-side size (default: full lattice)",
    )
    p_discover.add_argument(
        "--max-ind-arity", type=int, default=None, metavar="K",
        help="cap IND arity (default: unbounded)",
    )
    p_discover.add_argument(
        "--no-prune", action="store_true",
        help="disable implication pruning (validate every candidate)",
    )
    p_discover.add_argument(
        "--no-reduce", action="store_true",
        help="report all satisfied dependencies, not a minimal cover",
    )
    p_discover.add_argument(
        "--strategy", default="auto",
        choices=("auto", "full", "class-local"),
        help="minimal-cover reduction strategy (default: auto)",
    )
    p_discover.add_argument(
        "--bundle-out", metavar="BUNDLE_JSON",
        help="write the schema + cover as a loadable bundle",
    )
    p_discover.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    p_discover.set_defaults(func=_cmd_discover)

    p_whatif = sub.add_parser(
        "whatif",
        help="diff verdicts across a hypothetical premise change",
    )
    p_whatif.add_argument("bundle")
    p_whatif.add_argument(
        "targets",
        help="file with one DSL dependency per line ('#' comments allowed)",
    )
    p_whatif.add_argument(
        "--add", action="append", metavar="DEP",
        help="premise to add in the variant (repeatable)",
    )
    p_whatif.add_argument(
        "--retract", action="append", metavar="DEP",
        help="premise to retract in the variant (repeatable)",
    )
    p_whatif.add_argument(
        "--patch", metavar="PATCH_JSON",
        help="JSON patch file with 'add'/'retract' sections (repro.io)",
    )
    p_whatif.add_argument(
        "--finite", action="store_true",
        help="finite implication (unary FD/IND fragment)",
    )
    p_whatif.add_argument(
        "--json", action="store_true", help="machine-readable JSON diff"
    )
    p_whatif.set_defaults(func=_cmd_whatif)

    p_shell = sub.add_parser(
        "shell",
        help="interactive add/retract/implies REPL over one bundle",
    )
    p_shell.add_argument("bundle")
    p_shell.set_defaults(func=_cmd_shell)

    p_bench = sub.add_parser(
        "bench",
        help="run the recorded benchmark workloads (BENCH_*.json trajectory)",
    )
    p_bench.add_argument(
        "--out", metavar="REPORT_JSON",
        help="write the report JSON here (e.g. BENCH_e21.json)",
    )
    p_bench.add_argument(
        "--workload", action="append", metavar="NAME",
        help="run only this workload (repeatable; default: all)",
    )
    p_bench.add_argument(
        "--workloads", action="append", metavar="NAME[,NAME...]",
        help="comma-separated workload filter (merged with --workload; "
             "gate semantics unchanged)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=15,
        help="timed repetitions per workload; the best is recorded",
    )
    p_bench.add_argument(
        "--baseline", metavar="BASELINE_JSON",
        help="compare against this report or trajectory (its last entry); "
             "exit 1 on regression",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative slowdown tolerated against the baseline (default 0.25)",
    )
    p_bench.add_argument(
        "--trajectory", metavar="TRAJECTORY_JSON",
        help="append this run (with the current commit) to a trajectory file",
    )
    p_bench.add_argument(
        "--blocking", action="append", metavar="NAME",
        help="with --baseline: only these workloads' regressions exit 1, "
             "others are advisory (repeatable; default: all block)",
    )
    p_bench.add_argument(
        "--list", action="store_true", help="list workload names and exit"
    )
    p_bench.add_argument(
        "--json", action="store_true", help="print the report JSON to stdout"
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant HTTP reasoning server",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8765,
        help="listen port; 0 picks a free one (default 8765)",
    )
    p_serve.add_argument(
        "--tenant", action="append", metavar="NAME=BUNDLE.json",
        help="pre-load a tenant from a bundle file (repeatable)",
    )
    p_serve.add_argument(
        "--grace", type=float, default=10.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    p_serve.add_argument(
        "--lru-capacity", type=int, default=32,
        help="shared compiled-artifact LRU size (default 32)",
    )
    p_serve.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable tenant state: WAL + snapshots here; recovered on boot",
    )
    p_serve.add_argument(
        "--snapshot-every", type=int, default=64, metavar="N",
        help="checkpoint a tenant after N WAL appends (default 64)",
    )
    p_serve.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="per-request compute deadline when the request sets none; "
             "expiry yields a degraded 'unknown' answer, not an error",
    )
    p_serve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="arm fault-injection points (comma list, ':once' suffix "
             "supported); overrides REPRO_FAULTS (testing only)",
    )
    p_serve.add_argument(
        "--fault-latency-ms", type=float, default=0.0, metavar="MS",
        help="injected per-dispatch latency for the 'latency' fault point",
    )
    p_serve.add_argument(
        "--replica-of", default=None, metavar="HOST:PORT",
        help="boot as a read-only follower of this primary: bootstrap "
             "every tenant, apply its WAL stream, redirect mutations",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=1.0, metavar="SECONDS",
        help="follower heartbeat interval to the primary (default 1.0)",
    )
    p_serve.add_argument(
        "--failover-after", type=int, default=3, metavar="N",
        help="promote after N consecutive missed heartbeats; 0 never "
             "promotes (default 3)",
    )
    p_serve.add_argument(
        "--max-lag", type=int, default=None, metavar="N",
        help="default bounded-staleness for follower reads: reject a "
             "read more than N records behind the primary with a 503 "
             "(requests may override with their own 'max_lag')",
    )
    p_serve.add_argument(
        "--advertise", default=None, metavar="HOST:PORT",
        help="the address peers and redirected clients should dial "
             "(default: the bound host:port)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_call = sub.add_parser(
        "call",
        help="send one request to a running reasoning server",
    )
    p_call.add_argument("path", help="route, e.g. /health or /tenants/app/implies")
    p_call.add_argument(
        "body", nargs="?", default=None,
        help="JSON object body (implies POST; omit for GET)",
    )
    p_call.add_argument("--host", default="127.0.0.1")
    p_call.add_argument("--port", type=int, default=8765)
    p_call.add_argument(
        "--method", default=None, metavar="VERB",
        help="override the HTTP method (default: GET, or POST with a body)",
    )
    p_call.add_argument(
        "--timeout", type=float, default=30.0,
        help="socket timeout in seconds (default 30)",
    )
    p_call.add_argument(
        "--json", action="store_true",
        help="wrap the payload in a machine envelope with per-call wall "
             "time and client transport counters",
    )
    p_call.set_defaults(func=_cmd_call)

    p_top = sub.add_parser(
        "top",
        help="live metrics table polled from a running server",
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=8765)
    p_top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval (default 2.0)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (scripting/smoke tests)",
    )
    p_top.add_argument(
        "--timeout", type=float, default=30.0,
        help="socket timeout in seconds (default 30)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_keys = sub.add_parser("keys", help="candidate keys per relation")
    p_keys.add_argument("bundle")
    p_keys.set_defaults(func=_cmd_keys)

    p_summary = sub.add_parser("summary", help="structural profile of the bundle")
    p_summary.add_argument("bundle")
    p_summary.set_defaults(func=_cmd_summary)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
