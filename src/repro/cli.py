"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro check   bundle.json       # database vs dependencies
    python -m repro implies bundle.json "MGR[NAME] <= PERSON[NAME]"
    python -m repro implies bundle.json --finite "R[B] <= R[A]"
    python -m repro prove   bundle.json "MGR[NAME] <= PERSON[NAME]"
    python -m repro batch   bundle.json targets.txt   # many questions, one load
    python -m repro keys    bundle.json       # candidate keys per relation
    python -m repro summary bundle.json       # structural profile

``bundle.json`` follows the :mod:`repro.io` format: a schema, a list
of dependencies in the text DSL, and optionally a database instance.
Every subcommand loads the bundle into one
:class:`~repro.engine.session.ReasoningSession`, which indexes the
premises once and routes each question to the right engine.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.engine.answer import Semantics
from repro.engine.session import ReasoningSession
from repro.exceptions import ReproError
from repro.io import load_session


def _load(path: str) -> ReasoningSession:
    with open(path, encoding="utf-8") as fp:
        return load_session(fp)


def _semantics(args: argparse.Namespace) -> Semantics:
    return Semantics.FINITE if getattr(args, "finite", False) else Semantics.UNRESTRICTED


def _cmd_check(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    if session.db is None:
        print("bundle has no database to check", file=sys.stderr)
        return 2
    report = session.check()
    for dep, holds in report.results:
        if holds:
            print(f"OK        {dep}")
        else:
            print(f"VIOLATED  {dep}")
            for witness in report.witnesses[dep][:3]:
                print(f"          witness: {witness}")
    total = len(report.results)
    print(f"\n{report.satisfied_count}/{total} dependencies hold")
    return 0 if report.ok else 1


def _cmd_implies(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    answer = session.implies(args.dependency, semantics=_semantics(args))
    print(answer.describe())
    return 0 if answer.verdict else 1


def _cmd_prove(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    answer = session.prove(args.dependency)
    if not answer.verdict:
        if answer.stats.get("subset_complete", True):
            print(f"{answer.target} is NOT implied by the premises")
        else:
            # The proof calculus only saw the class-matching premises;
            # mixed sets can imply more (Section 4), so don't overclaim.
            kind = "IND" if answer.engine.value == "corollary-3.2" else "FD"
            print(f"{answer.target} is NOT provable from the {kind} premises "
                  f"alone (premises are mixed; 'implies' decides via the "
                  f"chase)")
        return 1
    print(answer.proof)
    print("\nproof verified by the independent checker")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    with open(args.targets, encoding="utf-8") as fp:
        lines = [line.strip() for line in fp]
    targets = [line for line in lines if line and not line.startswith("#")]
    if not targets:
        print("targets file has no dependencies to decide", file=sys.stderr)
        return 2
    answers = session.implies_all(targets, semantics=_semantics(args))
    width = max(len(str(answer.target)) for answer in answers)
    implied = 0
    for answer in answers:
        implied += answer.verdict
        print(f"{str(answer.target):<{width}}  {answer.verdict_word:<12} "
              f"{answer.engine.value}")
    stats = session.stats()
    print(f"\n{implied}/{len(answers)} implied "
          f"(premises indexed once; {stats['reach_cache_hits']} "
          f"exploration cache hit(s))")
    return 0 if implied == len(answers) else 1


def _cmd_keys(args: argparse.Namespace) -> int:
    session = _load(args.bundle)
    for rel in session.schema:
        keys = session.keys(rel.name)[rel.name]
        rendered = ", ".join(
            "{" + ",".join(sorted(key)) + "}" for key in keys
        )
        print(f"{rel}: {rendered}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.analysis.ind_graph import summarize_ind_set

    session = _load(args.bundle)
    inds, fds = session.index.inds, session.index.fds
    total = len(session.dependencies)
    print(f"schema: {session.schema}")
    print(f"dependencies: {len(inds)} INDs, {len(fds)} FDs, "
          f"{total - len(inds) - len(fds)} other")
    if inds:
        print(f"IND profile: {summarize_ind_set(inds)}")
    if session.db is not None:
        print(f"database: {session.db.total_tuples()} tuples, "
              f"{len(session.db.active_domain())} distinct values")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Inclusion/functional dependency tooling "
            "(Casanova-Fagin-Papadimitriou, PODS 1982)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="check a database against its dependencies")
    p_check.add_argument("bundle", help="path to a bundle JSON file")
    p_check.set_defaults(func=_cmd_check)

    p_implies = sub.add_parser("implies", help="decide an implication question")
    p_implies.add_argument("bundle")
    p_implies.add_argument("dependency", help="target in the text DSL")
    p_implies.add_argument(
        "--finite", action="store_true",
        help="finite implication (unary FD/IND fragment)",
    )
    p_implies.set_defaults(func=_cmd_implies)

    p_prove = sub.add_parser("prove", help="produce a formal checked proof")
    p_prove.add_argument("bundle")
    p_prove.add_argument("dependency")
    p_prove.set_defaults(func=_cmd_prove)

    p_batch = sub.add_parser(
        "batch",
        help="decide many implication questions in one session",
    )
    p_batch.add_argument("bundle")
    p_batch.add_argument(
        "targets",
        help="file with one DSL dependency per line ('#' comments allowed)",
    )
    p_batch.add_argument(
        "--finite", action="store_true",
        help="finite implication (unary FD/IND fragment)",
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_keys = sub.add_parser("keys", help="candidate keys per relation")
    p_keys.add_argument("bundle")
    p_keys.set_defaults(func=_cmd_keys)

    p_summary = sub.add_parser("summary", help="structural profile of the bundle")
    p_summary.add_argument("bundle")
    p_summary.set_defaults(func=_cmd_summary)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
