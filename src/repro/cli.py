"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro check  bundle.json        # database vs dependencies
    python -m repro implies bundle.json "MGR[NAME] <= PERSON[NAME]"
    python -m repro prove   bundle.json "MGR[NAME] <= PERSON[NAME]"
    python -m repro keys    bundle.json       # candidate keys per relation
    python -m repro summary bundle.json       # structural profile

``bundle.json`` follows the :mod:`repro.io` format: a schema, a list
of dependencies in the text DSL, and optionally a database instance.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.fd_closure import candidate_keys
from repro.core.ind_axioms import check_proof
from repro.core.ind_decision import decide_ind
from repro.core.ind_prover import prove_ind
from repro.core.fdind_chase import chase_implies
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.parser import parse_dependency
from repro.exceptions import ReproError
from repro.io import bundle_from_json


def _load(path: str):
    with open(path, encoding="utf-8") as fp:
        return bundle_from_json(fp.read())


def _cmd_check(args: argparse.Namespace) -> int:
    schema, dependencies, db = _load(args.bundle)
    if db is None:
        print("bundle has no database to check", file=sys.stderr)
        return 2
    failures = 0
    for dep in dependencies:
        if db.satisfies(dep):
            print(f"OK        {dep}")
        else:
            failures += 1
            witnesses = dep.violations(db)
            print(f"VIOLATED  {dep}")
            for witness in witnesses[:3]:
                print(f"          witness: {witness}")
    print(f"\n{len(dependencies) - failures}/{len(dependencies)} dependencies hold")
    return 1 if failures else 0


def _cmd_implies(args: argparse.Namespace) -> int:
    schema, dependencies, _db = _load(args.bundle)
    target = parse_dependency(args.dependency)
    target.validate(schema)
    inds = [d for d in dependencies if isinstance(d, IND)]
    if isinstance(target, IND) and len(inds) == len(dependencies):
        result = decide_ind(target, inds)
        print(result.describe())
        return 0 if result.implied else 1
    # Mixed premises: fall back to the (budgeted) chase.
    certificate = chase_implies(schema, dependencies, target)
    verdict = "IMPLIED" if certificate.implied else "NOT implied"
    print(f"{target}: {verdict} (via chase, "
          f"{certificate.outcome.rounds} rounds)")
    return 0 if certificate.implied else 1


def _cmd_prove(args: argparse.Namespace) -> int:
    schema, dependencies, _db = _load(args.bundle)
    target = parse_dependency(args.dependency)
    target.validate(schema)
    inds = [d for d in dependencies if isinstance(d, IND)]
    if not isinstance(target, IND):
        print("prove handles IND targets; use 'implies' for FDs/RDs",
              file=sys.stderr)
        return 2
    proof = prove_ind(target, inds)
    if proof is None:
        print(f"{target} is NOT implied by the IND premises")
        return 1
    check_proof(proof, schema, target)
    print(proof)
    print("\nproof verified by the independent checker")
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    schema, dependencies, _db = _load(args.bundle)
    fds = [d for d in dependencies if isinstance(d, FD)]
    for rel in schema:
        keys = candidate_keys(rel, fds)
        rendered = ", ".join(
            "{" + ",".join(sorted(key)) + "}" for key in keys
        )
        print(f"{rel}: {rendered}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.analysis.ind_graph import summarize_ind_set

    schema, dependencies, db = _load(args.bundle)
    inds = [d for d in dependencies if isinstance(d, IND)]
    fds = [d for d in dependencies if isinstance(d, FD)]
    print(f"schema: {schema}")
    print(f"dependencies: {len(inds)} INDs, {len(fds)} FDs, "
          f"{len(dependencies) - len(inds) - len(fds)} other")
    if inds:
        print(f"IND profile: {summarize_ind_set(inds)}")
    if db is not None:
        print(f"database: {db.total_tuples()} tuples, "
              f"{len(db.active_domain())} distinct values")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Inclusion/functional dependency tooling "
            "(Casanova-Fagin-Papadimitriou, PODS 1982)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="check a database against its dependencies")
    p_check.add_argument("bundle", help="path to a bundle JSON file")
    p_check.set_defaults(func=_cmd_check)

    p_implies = sub.add_parser("implies", help="decide an implication question")
    p_implies.add_argument("bundle")
    p_implies.add_argument("dependency", help="target in the text DSL")
    p_implies.set_defaults(func=_cmd_implies)

    p_prove = sub.add_parser("prove", help="produce a formal IND1-3 proof")
    p_prove.add_argument("bundle")
    p_prove.add_argument("dependency")
    p_prove.set_defaults(func=_cmd_prove)

    p_keys = sub.add_parser("keys", help="candidate keys per relation")
    p_keys.add_argument("bundle")
    p_keys.set_defaults(func=_cmd_keys)

    p_summary = sub.add_parser("summary", help="structural profile of the bundle")
    p_summary.add_argument("bundle")
    p_summary.set_defaults(func=_cmd_summary)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
