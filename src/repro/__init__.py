"""repro — Inclusion Dependencies and Their Interaction with
Functional Dependencies.

A complete, executable reproduction of Casanova, Fagin &
Papadimitriou's PODS 1982 / JCSS 1984 paper:

* the relational model with attribute *sequences* (Section 2);
* FDs, INDs, repeating dependencies, and EMVDs as first-class,
  satisfaction-checkable sentences;
* the complete axiomatization IND1-IND3 with formal proof objects and
  an independent checker (Theorem 3.1);
* the Corollary 3.2 decision procedure, the Rule (*) chase, and the
  PSPACE machinery of Theorem 3.3 (with a from-scratch LBA substrate);
* the superpolynomial permutation example with Landau's function, and
  the O(log p) repeated-squaring proofs;
* FD/IND interaction (Propositions 4.1-4.3) and the finite vs
  unrestricted implication split (Theorem 4.4, with symbolic infinite
  witnesses);
* the k-ary axiomatizability characterization (Theorem 5.1), the
  Sagiv-Walecka EMVD family (Theorem 5.3), and the negative results of
  Sections 6 and 7, each verified mechanically down to the paper's
  figures.

Quickstart::

    from repro import DatabaseSchema, ReasoningSession, parse_dependencies

    schema = DatabaseSchema.from_dict(
        {"MGR": ("NAME", "DEPT"), "EMP": ("NAME", "DEPT"),
         "PERSON": ("NAME",)})
    session = ReasoningSession(schema, parse_dependencies(
        "MGR[NAME,DEPT] <= EMP[NAME,DEPT]\\nEMP[NAME] <= PERSON[NAME]"))
    answer = session.implies("MGR[NAME] <= PERSON[NAME]")
    print(answer.verdict, answer.engine)          # True corollary-3.2
    print(session.prove("MGR[NAME] <= PERSON[NAME]").proof)

The session facade indexes premises once and routes each question to
the optimal engine; the individual procedures remain available as free
functions (``decide_ind``, ``fd_implies``, ``chase_implies``, ...).
"""

from repro.exceptions import (
    ChaseBudgetExceeded,
    DeadlineExceeded,
    DependencyError,
    ParseError,
    ProofError,
    ReproError,
    SchemaError,
    SearchBudgetExceeded,
    SymbolicLimitationError,
    UnsupportedDependencyError,
)
from repro.model import (
    Database,
    DatabaseSchema,
    InfiniteRelation,
    Relation,
    RelationSchema,
    SymbolicDatabase,
    TupleFamily,
    database,
    relation,
)
from repro.deps import (
    EMVD,
    FD,
    IND,
    MVD,
    RD,
    Dependency,
    parse_dependencies,
    parse_dependency,
)
from repro.core import (
    DecisionResult,
    Proof,
    attribute_closure,
    candidate_keys,
    check_proof,
    decide_by_rule_star,
    decide_ind,
    fd_implies,
    implies_ind,
    minimal_cover,
    prove_ind,
)
from repro.core.fdind_chase import chase_database, chase_implies
from repro.discovery import DiscoveryReport, discover
from repro.core.finite_unary import (
    finitely_implies_unary,
    unrestricted_implies_unary,
)
from repro.engine import (
    Answer,
    CheckReport,
    Deadline,
    Engine,
    MutationDelta,
    PremiseIndex,
    ReasoningSession,
    Semantics,
    VerdictFlip,
)
from repro.io import (
    apply_patch,
    bundle_from_json,
    bundle_to_json,
    load_bundle,
    load_patch,
    load_session,
    patch_from_json,
    patch_to_json,
    session_from_json,
)

__version__ = "1.1.0"

__all__ = [
    # exceptions
    "ReproError",
    "SchemaError",
    "DependencyError",
    "ParseError",
    "ProofError",
    "ChaseBudgetExceeded",
    "DeadlineExceeded",
    "SearchBudgetExceeded",
    "UnsupportedDependencyError",
    "SymbolicLimitationError",
    # model
    "Database",
    "DatabaseSchema",
    "Relation",
    "RelationSchema",
    "InfiniteRelation",
    "SymbolicDatabase",
    "TupleFamily",
    "database",
    "relation",
    # dependencies
    "Dependency",
    "FD",
    "IND",
    "RD",
    "EMVD",
    "MVD",
    "parse_dependency",
    "parse_dependencies",
    # engines
    "DecisionResult",
    "Proof",
    "decide_ind",
    "prove_ind",
    "check_proof",
    "implies_ind",
    "decide_by_rule_star",
    "attribute_closure",
    "fd_implies",
    "minimal_cover",
    "candidate_keys",
    "chase_implies",
    "chase_database",
    "finitely_implies_unary",
    "unrestricted_implies_unary",
    # discovery
    "DiscoveryReport",
    "discover",
    # session facade
    "Answer",
    "CheckReport",
    "Deadline",
    "Engine",
    "MutationDelta",
    "PremiseIndex",
    "ReasoningSession",
    "Semantics",
    "VerdictFlip",
    # bundle io
    "apply_patch",
    "bundle_from_json",
    "bundle_to_json",
    "load_bundle",
    "load_patch",
    "load_session",
    "patch_from_json",
    "patch_to_json",
    "session_from_json",
    "__version__",
]
