"""Engine routing: dependency-class analysis of premises and target.

The paper's results carve the implication problem into fragments with
very different procedures and complexities:

========================  =========================  ==================
premises + target         unrestricted implication   finite implication
========================  =========================  ==================
INDs only                 Corollary 3.2 (PSPACE)     same (they coincide)
FDs only                  attribute closure (linear) same (they coincide)
unary FDs + INDs          transitive closure         cycle rule ([KCV])
general FDs + INDs        chase (semi-decision)      not even r.e.
========================  =========================  ==================

:func:`choose_engine` places one question into this table.  The chase
row is budgeted; the bottom-right cell raises — no sound procedure
exists to route to (Theorem 4.4 is exactly the news that the two
columns differ once FDs and INDs mix).
"""

from __future__ import annotations

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.exceptions import UnsupportedDependencyError
from repro.engine.answer import Engine, Semantics
from repro.engine.index import PremiseIndex


def _is_unary(dep: Dependency) -> bool:
    return isinstance(dep, (FD, IND)) and dep.is_unary()


def choose_engine(
    index: PremiseIndex,
    target: Dependency,
    semantics: Semantics = Semantics.UNRESTRICTED,
) -> Engine:
    """The optimal sound-and-complete engine for one question.

    Raises :class:`UnsupportedDependencyError` when no implemented
    procedure is sound for the premise/target mix (finite implication
    of non-unary mixed sets, or dependency classes outside FD/IND/RD).
    """
    if index.others:
        raise UnsupportedDependencyError(
            f"no engine handles premise {index.others[0]} "
            "(FDs, INDs and RDs are supported)"
        )
    if not isinstance(target, (FD, IND, RD)):
        raise UnsupportedDependencyError(
            f"no engine decides targets of type {type(target).__name__}"
        )

    # Single-class questions: finite and unrestricted implication
    # coincide (Theorem 3.1 for INDs; classical for FDs), so the exact
    # polynomial/PSPACE procedures serve both semantics.
    if isinstance(target, IND) and index.pure_ind:
        return Engine.COROLLARY_32
    if isinstance(target, FD) and index.pure_fd:
        return Engine.FD_CLOSURE

    unary_fragment = index.all_unary and not index.rds and _is_unary(target)

    if semantics is Semantics.FINITE:
        if unary_fragment:
            return Engine.FINITE_UNARY
        raise UnsupportedDependencyError(
            "finite implication for mixed FD/IND sets is only decidable "
            f"in the unary fragment (Theorem 4.4); cannot decide {target}"
        )

    # Unary mixed sets have an exact polynomial procedure for the
    # unrestricted column too (transitive closure, no cycle rule);
    # preferring it over the chase matters because the chase diverges
    # on exactly the cyclic instances this fragment is famous for.
    if unary_fragment:
        return Engine.UNARY_UNRESTRICTED

    # Mixed premises (or a target crossing classes), unrestricted
    # semantics: the chase is the only (semi-)decision procedure.
    return Engine.CHASE


def routing_profile(index: PremiseIndex) -> dict[str, bool]:
    """The structural facts :func:`choose_engine` reads, as a stats dict.

    Surfaced through ``ReasoningSession.stats()`` so serving dashboards
    can see *why* questions land on a given engine — e.g. a premise set
    that silently stopped being pure-IND routes every IND question to
    the chase, a very different cost profile.
    """
    return {
        "pure_ind": index.pure_ind,
        "pure_fd": index.pure_fd,
        "all_unary": index.all_unary,
        "mixed": not (index.pure_ind or index.pure_fd),
    }


def classify(dependencies) -> dict[str, int]:
    """Counts per dependency class, for summaries and diagnostics."""
    counts = {"ind": 0, "fd": 0, "rd": 0, "other": 0}
    for dep in dependencies:
        if isinstance(dep, IND):
            counts["ind"] += 1
        elif isinstance(dep, FD):
            counts["fd"] += 1
        elif isinstance(dep, RD):
            counts["rd"] += 1
        else:
            counts["other"] += 1
    return counts
