"""Unified reasoning facade over the paper's decision procedures.

* ``answer`` — the uniform :class:`Answer` result type and the
  :class:`Engine` / :class:`Semantics` vocabularies.
* ``index`` — :class:`PremiseIndex`: premises bucketed by relation,
  incrementally maintained across mutations, with memoized attribute
  closures and candidate keys.
* ``routing`` — dependency-class analysis placing each question into
  the paper's fragment table.
* ``session`` — :class:`ReasoningSession`: construct once per premise
  set, then ``implies`` / ``implies_all`` / ``prove`` / ``check`` /
  ``keys`` / ``closure``; evolve the premises with ``add`` /
  ``retract`` / ``fork`` / ``whatif`` (every answer is stamped with
  the session ``version`` it was computed against).
"""

from repro.engine.answer import Answer, Engine, Semantics
from repro.engine.deadline import Deadline, coerce_deadline
from repro.engine.index import MutationDelta, PremiseIndex
from repro.engine.routing import choose_engine, classify, routing_profile
from repro.engine.session import CheckReport, ReasoningSession, VerdictFlip

__all__ = [
    "Answer",
    "CheckReport",
    "Deadline",
    "coerce_deadline",
    "Engine",
    "MutationDelta",
    "PremiseIndex",
    "ReasoningSession",
    "Semantics",
    "VerdictFlip",
    "choose_engine",
    "classify",
    "routing_profile",
]
