"""Unified reasoning facade over the paper's decision procedures.

* ``answer`` — the uniform :class:`Answer` result type and the
  :class:`Engine` / :class:`Semantics` vocabularies.
* ``index`` — :class:`PremiseIndex`: premises bucketed by relation,
  with memoized attribute closures.
* ``routing`` — dependency-class analysis placing each question into
  the paper's fragment table.
* ``session`` — :class:`ReasoningSession`: construct once per premise
  set, then ``implies`` / ``implies_all`` / ``prove`` / ``check`` /
  ``keys`` / ``closure``.
"""

from repro.engine.answer import Answer, Engine, Semantics
from repro.engine.index import PremiseIndex
from repro.engine.routing import choose_engine, classify
from repro.engine.session import CheckReport, ReasoningSession

__all__ = [
    "Answer",
    "CheckReport",
    "Engine",
    "PremiseIndex",
    "ReasoningSession",
    "Semantics",
    "choose_engine",
    "classify",
]
