"""Premise indexing for :class:`~repro.engine.session.ReasoningSession`.

A session classifies and buckets its dependency set exactly once, at
construction:

* INDs bucketed by left-hand relation (what ``successors`` consumes)
  and by right-hand relation (backward search);
* FDs bucketed by relation, with memoized attribute closures — every
  FD question over the same premises reuses closures already computed;
* the structural facts routing needs (which classes are present,
  whether everything is unary) computed up front.

``PremiseIndex.builds_total`` counts constructions process-wide so
tests can assert that a batch of N queries indexes the premises
exactly once.
"""

from __future__ import annotations

from typing import ClassVar, Iterable, Optional

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.model.schema import DatabaseSchema
from repro.core.fd_closure import attribute_closure
from repro.core.ind_decision import index_by_lhs, index_by_rhs


class PremiseIndex:
    """A dependency set, pre-bucketed for engine dispatch and search."""

    builds_total: ClassVar[int] = 0
    """Process-wide construction counter (for amortization tests)."""

    def __init__(
        self,
        schema: DatabaseSchema,
        dependencies: Iterable[Dependency] = (),
        validate: bool = True,
    ):
        PremiseIndex.builds_total += 1
        self.schema = schema
        self.dependencies: tuple[Dependency, ...] = tuple(dependencies)
        inds: list[IND] = []
        fds: list[FD] = []
        rds: list[RD] = []
        others: list[Dependency] = []
        for dep in self.dependencies:
            if validate:
                dep.validate(schema)
            if isinstance(dep, IND):
                inds.append(dep)
            elif isinstance(dep, FD):
                fds.append(dep)
            elif isinstance(dep, RD):
                rds.append(dep)
            else:
                others.append(dep)
        self.inds: tuple[IND, ...] = tuple(inds)
        self.fds: tuple[FD, ...] = tuple(fds)
        self.rds: tuple[RD, ...] = tuple(rds)
        self.others: tuple[Dependency, ...] = tuple(others)

        self.inds_by_lhs: dict[str, tuple[IND, ...]] = index_by_lhs(inds)
        self.inds_by_rhs: dict[str, tuple[IND, ...]] = index_by_rhs(inds)
        fd_buckets: dict[str, list[FD]] = {}
        for fd in fds:
            fd_buckets.setdefault(fd.relation, []).append(fd)
        self.fds_by_relation: dict[str, tuple[FD, ...]] = {
            name: tuple(bucket) for name, bucket in fd_buckets.items()
        }

        self.all_unary: bool = all(d.is_unary() for d in inds) and all(
            d.is_unary() for d in fds
        )
        self._closure_cache: dict[tuple[str, frozenset[str]], frozenset[str]] = {}

    # -- structural profile ----------------------------------------------

    @property
    def pure_ind(self) -> bool:
        """Only IND premises (the Corollary 3.2 fragment)."""
        return not (self.fds or self.rds or self.others)

    @property
    def pure_fd(self) -> bool:
        """Only FD premises (the attribute-closure fragment)."""
        return not (self.inds or self.rds or self.others)

    def fds_of(self, relation: str) -> tuple[FD, ...]:
        return self.fds_by_relation.get(relation, ())

    def inds_from(self, relation: str) -> tuple[IND, ...]:
        return self.inds_by_lhs.get(relation, ())

    # -- memoized FD reasoning ---------------------------------------------

    def closure(self, relation: str, attrs: Iterable[str]) -> frozenset[str]:
        """Memoized attribute closure ``X+`` over this index's FDs."""
        key = (relation, frozenset(attrs))
        cached = self._closure_cache.get(key)
        if cached is None:
            cached = attribute_closure(key[1], self.fds_of(relation))
            self._closure_cache[key] = cached
        return cached

    def fd_implied(self, fd: FD) -> bool:
        """Closure-based FD implication using the memo."""
        return fd.rhs_set <= self.closure(fd.relation, fd.lhs_set)

    @property
    def closure_cache_size(self) -> int:
        return len(self._closure_cache)

    def stats(self) -> dict[str, int]:
        """Headline sizes, reported in :class:`Answer` stats."""
        return {
            "inds": len(self.inds),
            "fds": len(self.fds),
            "rds": len(self.rds),
            "relations_with_outgoing_inds": len(self.inds_by_lhs),
            "closures_memoized": len(self._closure_cache),
        }
