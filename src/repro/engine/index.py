"""Premise indexing for :class:`~repro.engine.session.ReasoningSession`.

A session classifies and buckets its dependency set at construction
and then maintains the buckets *incrementally* through the premise
lifecycle (:meth:`PremiseIndex.add` / :meth:`PremiseIndex.retract`):

* INDs bucketed by left-hand relation (what ``successors`` consumes)
  and by right-hand relation (backward search), with the compiled
  :class:`~repro.core.reach_index.ReachIndex` on top — the
  SCC-condensed bitset closure the session's hot IND path queries —
  maintained through an epoch/dirty policy (mutations outside the
  materialized footprint are free; others recompile lazily);
* FDs bucketed by relation, with memoized attribute closures and
  candidate keys — both invalidated per affected relation only, never
  wholesale;
* the structural facts routing needs (which classes are present,
  whether everything is unary) maintained as counters and per-class
  lists, with the flat tuple views (what the chase, the unary engine,
  and ``prove`` consume) materialized lazily per class — a mutation
  that only touches INDs never rebuilds the FD view, and the
  Corollary 3.2 query path never rebuilds any of them.

Each mutation returns a :class:`MutationDelta` describing exactly
which relation buckets changed, which is what the session's scoped
cache invalidation consumes.

``PremiseIndex.builds_total`` counts constructions process-wide so
tests can assert that a batch of N queries indexes the premises
exactly once; :meth:`clone` (copy-on-write forking) does not count as
a build because it copies buckets instead of rebuilding them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import ClassVar, Iterable, Optional

from repro.exceptions import DependencyError
from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.model.schema import DatabaseSchema
from repro.core.fd_closure import FDClosureKernel, candidate_keys
from repro.core.ind_kernel import KernelIndex
from repro.core.reach_index import ReachIndex


@dataclass(frozen=True)
class MutationDelta:
    """What one :meth:`PremiseIndex.add` / ``retract`` call changed.

    ``ind_lhs_relations`` are the left-hand relations of every mutated
    IND (the buckets the Corollary 3.2 search reads); ``fd_relations``
    are the relations of every mutated FD.  The session's scoped cache
    invalidation is driven entirely by these two sets.
    """

    added: tuple[Dependency, ...] = ()
    removed: tuple[Dependency, ...] = ()
    ind_lhs_relations: frozenset[str] = frozenset()
    fd_relations: frozenset[str] = frozenset()

    @property
    def mutated_inds(self) -> bool:
        return bool(self.ind_lhs_relations)

    @property
    def mutated_fds(self) -> bool:
        return bool(self.fd_relations)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


def _class_of(dep: Dependency) -> str:
    if isinstance(dep, IND):
        return "ind"
    if isinstance(dep, FD):
        return "fd"
    if isinstance(dep, RD):
        return "rd"
    return "other"


class PremiseIndex:
    """A dependency set, pre-bucketed for engine dispatch and search."""

    builds_total: ClassVar[int] = 0
    """Process-wide construction counter (for amortization tests)."""

    def __init__(
        self,
        schema: DatabaseSchema,
        dependencies: Iterable[Dependency] = (),
        validate: bool = True,
    ):
        PremiseIndex.builds_total += 1
        self.schema = schema
        self._deps: list[Dependency] = list(dependencies)
        if validate:
            for dep in self._deps:
                dep.validate(schema)

        self._counts: dict[str, int] = {"ind": 0, "fd": 0, "rd": 0, "other": 0}
        self._views: dict[str, tuple] = {}  # lazily rebuilt per class
        self._deps_view: Optional[tuple[Dependency, ...]] = None
        self._non_unary = 0
        self.inds_by_lhs: dict[str, tuple[IND, ...]] = {}
        self.inds_by_rhs: dict[str, tuple[IND, ...]] = {}
        self.fds_by_relation: dict[str, tuple[FD, ...]] = {}
        self.ind_kernels = KernelIndex()
        for dep in self._deps:
            self._classify_insert(dep)
        self.reach_index = ReachIndex(self.ind_kernels)

        self._fd_kernels: dict[str, FDClosureKernel] = {}
        self._closure_cache: dict[tuple[str, frozenset[str]], frozenset[str]] = {}
        self._keys_cache: dict[str, list[frozenset[str]]] = {}
        self.closure_hits = 0
        self.closure_misses = 0
        self._hash_memo: Optional[str] = None

    # -- bucket maintenance ------------------------------------------------

    def _classify_insert(self, dep: Dependency) -> None:
        kind = _class_of(dep)
        self._counts[kind] += 1
        self._views.pop(kind, None)
        self._deps_view = None
        if isinstance(dep, IND):
            self.inds_by_lhs[dep.lhs_relation] = (
                self.inds_by_lhs.get(dep.lhs_relation, ()) + (dep,)
            )
            self.inds_by_rhs[dep.rhs_relation] = (
                self.inds_by_rhs.get(dep.rhs_relation, ()) + (dep,)
            )
            self.ind_kernels.add(dep)
            self._non_unary += not dep.is_unary()
        elif isinstance(dep, FD):
            self.fds_by_relation[dep.relation] = (
                self.fds_by_relation.get(dep.relation, ()) + (dep,)
            )
            self._non_unary += not dep.is_unary()

    def _classify_remove(self, dep: Dependency) -> None:
        kind = _class_of(dep)
        self._counts[kind] -= 1
        self._views.pop(kind, None)
        self._deps_view = None
        if isinstance(dep, IND):
            self._bucket_remove(self.inds_by_lhs, dep.lhs_relation, dep)
            self._bucket_remove(self.inds_by_rhs, dep.rhs_relation, dep)
            self.ind_kernels.discard(dep)
            self._non_unary -= not dep.is_unary()
        elif isinstance(dep, FD):
            self._bucket_remove(self.fds_by_relation, dep.relation, dep)
            self._non_unary -= not dep.is_unary()

    @staticmethod
    def _bucket_remove(
        buckets: dict[str, tuple], key: str, dep: Dependency
    ) -> None:
        bucket = list(buckets.get(key, ()))
        bucket.remove(dep)
        if bucket:
            buckets[key] = tuple(bucket)
        else:
            del buckets[key]

    def _view(self, kind: str) -> tuple:
        view = self._views.get(kind)
        if view is None:
            view = tuple(
                dep for dep in self._deps if _class_of(dep) == kind
            )
            self._views[kind] = view
        return view

    # -- flat views (lazy, per class) --------------------------------------

    @property
    def dependencies(self) -> tuple[Dependency, ...]:
        if self._deps_view is None:
            self._deps_view = tuple(self._deps)
        return self._deps_view

    @property
    def inds(self) -> tuple[IND, ...]:
        return self._view("ind")

    @property
    def fds(self) -> tuple[FD, ...]:
        return self._view("fd")

    @property
    def rds(self) -> tuple[RD, ...]:
        return self._view("rd")

    @property
    def others(self) -> tuple[Dependency, ...]:
        return self._view("other")

    @property
    def all_unary(self) -> bool:
        """Whether every FD and IND premise is unary (counter-maintained)."""
        return self._non_unary == 0

    # -- the premise lifecycle ---------------------------------------------

    def add(
        self, dependencies: Iterable[Dependency], validate: bool = True
    ) -> MutationDelta:
        """Insert premises in place, updating buckets incrementally.

        Returns the :class:`MutationDelta` naming the touched buckets.
        Affected memoized closures and candidate keys are dropped here
        (per relation); reachability/unary caches live in the session,
        which scopes its own invalidation from the returned delta.
        """
        added = tuple(dependencies)
        if validate:
            for dep in added:
                dep.validate(self.schema)
        for dep in added:
            self._deps.append(dep)
            self._classify_insert(dep)
        delta = self._delta(added=added, removed=())
        if delta:
            self._hash_memo = None
        self._apply_fd_invalidation(delta)
        self._apply_reach_policy(delta)
        return delta

    def retract(self, dependencies: Iterable[Dependency]) -> MutationDelta:
        """Remove premises in place (one occurrence each).

        Raises :class:`~repro.exceptions.DependencyError` when a
        dependency is not among the premises — retracting something
        that was never asserted is a caller bug worth surfacing — and
        the whole batch is checked before anything is removed, so a
        failed retract leaves the index unchanged.
        """
        removed = tuple(dependencies)
        # One scan per dependency to locate its position; the whole
        # batch is resolved before anything is mutated, so a failed
        # retract leaves the index unchanged.
        taken: set[int] = set()
        for dep in removed:
            position = -1
            for i, existing in enumerate(self._deps):
                if i not in taken and existing == dep:
                    position = i
                    break
            if position < 0:
                raise DependencyError(
                    f"cannot retract {dep}: not among the premises"
                )
            taken.add(position)
        for position in sorted(taken, reverse=True):
            dep = self._deps.pop(position)
            self._classify_remove(dep)
        delta = self._delta(added=(), removed=removed)
        if delta:
            self._hash_memo = None
        self._apply_fd_invalidation(delta)
        self._apply_reach_policy(delta)
        return delta

    @staticmethod
    def _delta(
        added: tuple[Dependency, ...], removed: tuple[Dependency, ...]
    ) -> MutationDelta:
        ind_lhs: set[str] = set()
        fd_rels: set[str] = set()
        for dep in added + removed:
            if isinstance(dep, IND):
                ind_lhs.add(dep.lhs_relation)
            elif isinstance(dep, FD):
                fd_rels.add(dep.relation)
        return MutationDelta(
            added=added,
            removed=removed,
            ind_lhs_relations=frozenset(ind_lhs),
            fd_relations=frozenset(fd_rels),
        )

    def _apply_fd_invalidation(self, delta: MutationDelta) -> None:
        """Drop only the mutated relations' closure/key memos and
        compiled closure kernels."""
        for relation in delta.fd_relations:
            self._keys_cache.pop(relation, None)
            self._fd_kernels.pop(relation, None)
        if delta.fd_relations and self._closure_cache:
            for key in [
                k for k in self._closure_cache if k[0] in delta.fd_relations
            ]:
                del self._closure_cache[key]

    def _apply_reach_policy(self, delta: MutationDelta) -> None:
        """Feed one mutation to the reach index's epoch/dirty policy.

        The index decides for itself whether the mutation is a free
        monotone extension (every mutated IND's left relation is
        outside the materialized footprint) or marks it dirty for a
        lazy recompile on the next query.
        """
        self.reach_index.note_mutation(
            added_lhs=[
                dep.lhs_relation for dep in delta.added if isinstance(dep, IND)
            ],
            removed_lhs=[
                dep.lhs_relation for dep in delta.removed if isinstance(dep, IND)
            ],
        )

    def clone(self) -> "PremiseIndex":
        """A copy-on-write twin for :meth:`ReasoningSession.fork`.

        Bucket *dicts* are copied; the bucket tuples, memoized closures
        and key lists are shared (mutations replace whole tuples and
        evict whole entries, so sharing is safe).  Does not count as a
        build — nothing is re-validated or re-bucketed.
        """
        twin = PremiseIndex.__new__(PremiseIndex)
        twin.schema = self.schema
        twin._deps = list(self._deps)
        twin._counts = dict(self._counts)
        twin._views = dict(self._views)
        twin._deps_view = self._deps_view
        twin._non_unary = self._non_unary
        twin.inds_by_lhs = dict(self.inds_by_lhs)
        twin.inds_by_rhs = dict(self.inds_by_rhs)
        twin.fds_by_relation = dict(self.fds_by_relation)
        twin.ind_kernels = self.ind_kernels.copy()
        twin.reach_index = self.reach_index.copy(twin.ind_kernels)
        twin._fd_kernels = dict(self._fd_kernels)
        twin._closure_cache = dict(self._closure_cache)
        twin._keys_cache = dict(self._keys_cache)
        twin.closure_hits = 0
        twin.closure_misses = 0
        twin._hash_memo = self._hash_memo
        return twin

    # -- structural identity and compiled-artifact sharing -----------------

    @property
    def premise_hash(self) -> str:
        """Structural hash of (schema, premise multiset), order-independent.

        Two indexes hash identically exactly when they hold the same
        relation schemes (names, attribute sequences) and the same
        multiset of premises — regardless of insertion order — which is
        when every compiled artifact (IND kernels, reach index, FD
        closure kernels, memoized closures and keys) computed by one is
        valid for the other.  That makes the hash the sharing key of
        the serving layer's structural LRU and the natural invalidation
        key for any persisted artifact.  Memoized; any mutation drops
        the memo.
        """
        memo = self._hash_memo
        if memo is None:
            digest = hashlib.sha256()
            for rel in sorted(self.schema, key=lambda r: r.name):
                digest.update(
                    f"{rel.name}({','.join(rel.attributes)})".encode()
                )
            digest.update(b"|")
            for line in sorted(str(dep) for dep in self._deps):
                digest.update(line.encode())
                digest.update(b";")
            memo = digest.hexdigest()[:16]
            self._hash_memo = memo
        return memo

    def adopt_compiled(self, donor: "PremiseIndex") -> None:
        """Share a structurally identical index's compiled artifacts.

        Replaces this index's IND kernels, reach index, FD closure
        kernels, and closure/key memos with copy-on-write twins of the
        donor's — the same sharing :meth:`clone` performs, but grafted
        onto an independently constructed index.  N tenants with equal
        premise sets thus pay one compilation; afterwards the two
        indexes evolve independently (mutations replace buckets and
        containers, never shared values).

        Raises :class:`ValueError` unless the structural hashes match —
        adopting foreign artifacts would serve wrong verdicts.
        """
        if donor is self:
            return
        if donor.premise_hash != self.premise_hash:
            raise ValueError(
                f"cannot adopt compiled artifacts across structurally "
                f"different premise sets ({donor.premise_hash} != "
                f"{self.premise_hash})"
            )
        self.ind_kernels = donor.ind_kernels.copy()
        self.reach_index = donor.reach_index.copy(self.ind_kernels)
        self._fd_kernels = dict(donor._fd_kernels)
        self._closure_cache = dict(donor._closure_cache)
        self._keys_cache = dict(donor._keys_cache)

    # -- structural profile ----------------------------------------------

    @property
    def pure_ind(self) -> bool:
        """Only IND premises (the Corollary 3.2 fragment)."""
        counts = self._counts
        return not (counts["fd"] or counts["rd"] or counts["other"])

    @property
    def pure_fd(self) -> bool:
        """Only FD premises (the attribute-closure fragment)."""
        counts = self._counts
        return not (counts["ind"] or counts["rd"] or counts["other"])

    def fds_of(self, relation: str) -> tuple[FD, ...]:
        return self.fds_by_relation.get(relation, ())

    def inds_from(self, relation: str) -> tuple[IND, ...]:
        return self.inds_by_lhs.get(relation, ())

    # -- memoized FD reasoning ---------------------------------------------

    def fd_kernel(self, relation: str) -> FDClosureKernel:
        """The relation's FDs compiled for linear-time closure.

        Compiled lazily, once per relation, and evicted exactly when
        that relation's FDs mutate — every closure, implication, and
        candidate-key query in between reuses the compilation.
        """
        kernel = self._fd_kernels.get(relation)
        if kernel is None:
            kernel = FDClosureKernel(self.fds_of(relation))
            self._fd_kernels[relation] = kernel
        return kernel

    def closure(self, relation: str, attrs: Iterable[str]) -> frozenset[str]:
        """Memoized attribute closure ``X+`` over this index's FDs."""
        key = (relation, frozenset(attrs))
        cached = self._closure_cache.get(key)
        if cached is None:
            self.closure_misses += 1
            cached = self.fd_kernel(relation).closure(key[1])
            self._closure_cache[key] = cached
        else:
            self.closure_hits += 1
        return cached

    def fd_implied(self, fd: FD) -> bool:
        """Closure-based FD implication using the memo."""
        return fd.rhs_set <= self.closure(fd.relation, fd.lhs_set)

    def keys_of(self, relation: str) -> list[frozenset[str]]:
        """Memoized candidate keys of ``relation`` under this index's FDs.

        Candidate-key search is exponential in the worst case, so the
        memo matters for any session that asks repeatedly; the
        FD-mutation path evicts exactly this relation's entry.
        """
        cached = self._keys_cache.get(relation)
        if cached is None:
            cached = candidate_keys(
                self.schema.relation(relation),
                self.fds_of(relation),
                kernel=self.fd_kernel(relation),
            )
            self._keys_cache[relation] = cached
        return list(cached)

    @property
    def closure_cache_size(self) -> int:
        return len(self._closure_cache)

    @property
    def keys_cache_size(self) -> int:
        return len(self._keys_cache)

    def stats(self) -> dict[str, int]:
        """Headline sizes, reported in :class:`Answer` stats.

        The ``reach_*`` keys surface the reach index's compiled state:
        ``reach_compiles`` counts label recompilations (a hot query
        stream holds this constant), ``reach_epoch`` counts
        invalidation generations, ``reach_label_bits`` is the total
        density of the SCC closure bitsets.
        """
        reach = self.reach_index.stats()
        return {
            "inds": self._counts["ind"],
            "fds": self._counts["fd"],
            "rds": self._counts["rd"],
            "relations_with_outgoing_inds": len(self.inds_by_lhs),
            "closures_memoized": len(self._closure_cache),
            "closure_hits": self.closure_hits,
            "closure_misses": self.closure_misses,
            "keys_memoized": len(self._keys_cache),
            "fd_kernels_compiled": len(self._fd_kernels),
            **{f"reach_{key}": value for key, value in reach.items()},
        }
