"""The :class:`ReasoningSession` facade.

One object per (schema, dependency set) that answers every question
the library knows how to answer, routing each to the optimal engine:

>>> from repro import ReasoningSession, parse_dependencies
>>> from repro.model.schema import DatabaseSchema
>>> schema = DatabaseSchema.from_dict(
...     {"MGR": ("NAME", "DEPT"), "EMP": ("NAME", "DEPT"), "PERSON": ("NAME",)})
>>> session = ReasoningSession(schema, parse_dependencies(
...     "MGR[NAME,DEPT] <= EMP[NAME,DEPT]\\nEMP[NAME] <= PERSON[NAME]"))
>>> answer = session.implies("MGR[NAME] <= PERSON[NAME]")
>>> answer.verdict, answer.engine.value
(True, 'corollary-3.2')

Premises are indexed once at construction (see
:class:`~repro.engine.index.PremiseIndex`); the expression-graph
exploration behind IND answers is cached per left expression, so a
batch of queries (:meth:`ReasoningSession.implies_all`) shares both
the index and the explorations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.parser import parse_dependency
from repro.exceptions import UnsupportedDependencyError
from repro.model.database import Database
from repro.model.schema import DatabaseSchema
from repro.core.fd_closure import candidate_keys, closure_derivation
from repro.core.fd_axioms import check_fd_proof, prove_fd
from repro.core.fdind_chase import chase_implies
from repro.core.finite_unary import UnaryClosure, unary_closure
from repro.core.ind_axioms import check_proof
from repro.core.ind_decision import (
    DecisionResult,
    Expression,
    decide_ind,
    decision_from_exploration,
    expression_of_lhs,
    explore_expressions,
)
from repro.core.ind_prover import proof_from_decision
from repro.engine.answer import Answer, Engine, Semantics
from repro.engine.index import PremiseIndex
from repro.engine.routing import choose_engine

Target = Union[Dependency, str]
"""A question: a dependency object or its text-DSL rendering."""


@dataclass
class CheckReport:
    """Outcome of checking a database against the session's premises."""

    results: list[tuple[Dependency, bool]]
    witnesses: dict[Dependency, list[tuple]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(holds for _dep, holds in self.results)

    @property
    def violated(self) -> list[Dependency]:
        return [dep for dep, holds in self.results if not holds]

    @property
    def satisfied_count(self) -> int:
        return sum(1 for _dep, holds in self.results if holds)

    def __bool__(self) -> bool:
        return self.ok


class ReasoningSession:
    """Facade over the paper's four decision procedures.

    Parameters
    ----------
    schema:
        The database scheme every dependency must be well-formed over.
    dependencies:
        The premise set Sigma.  Indexed once, here.
    db:
        Optional bundled instance (used by :meth:`check` when no
        explicit database is passed).
    max_nodes / max_rounds / max_tuples:
        Budgets forwarded to the exact search and to the chase.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        dependencies: Iterable[Dependency] = (),
        db: Optional[Database] = None,
        *,
        max_nodes: int = 2_000_000,
        max_rounds: int = 200,
        max_tuples: int = 100_000,
    ):
        self.schema = schema
        self.index = PremiseIndex(schema, dependencies)
        self.db = db
        self.max_nodes = max_nodes
        self.max_rounds = max_rounds
        self.max_tuples = max_tuples
        self._reach_cache: dict[Expression, tuple[set, dict]] = {}
        self._unary_cache: dict[Semantics, UnaryClosure] = {}
        self.queries = 0
        self.cache_hits = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def dependencies(self) -> tuple[Dependency, ...]:
        return self.index.dependencies

    def _coerce(self, target: Target) -> Dependency:
        if isinstance(target, str):
            target = parse_dependency(target)
        target.validate(self.schema)
        return target

    def route(self, target: Target,
              semantics: Union[Semantics, str] = Semantics.UNRESTRICTED) -> Engine:
        """Which engine :meth:`implies` would use, without running it."""
        return choose_engine(self.index, self._coerce(target), Semantics(semantics))

    def _decide_ind(
        self, target: IND, exhaustive: bool = False
    ) -> tuple[DecisionResult, bool]:
        """Decide one IND question, via the exploration cache.

        A cache entry answers instantly.  On a miss, ``exhaustive``
        selects between the early-exit BFS of :func:`decide_ind` (right
        for one-off questions — it can stop after a handful of nodes in
        graphs whose full closure would blow the budget) and a full
        :func:`explore_expressions` whose result is cached for every
        later question sharing the same left expression (right when a
        batch is known to revisit it).
        """
        start = expression_of_lhs(target)
        entry = self._reach_cache.get(start)
        if entry is not None:
            self.cache_hits += 1
            return decision_from_exploration(target, entry[0], entry[1]), True
        if exhaustive:
            visited, parents = explore_expressions(
                start, self.index.inds_by_lhs, max_nodes=self.max_nodes
            )
            self._reach_cache[start] = (visited, parents)
            return decision_from_exploration(target, visited, parents), False
        return decide_ind(
            target, self.index.inds_by_lhs, max_nodes=self.max_nodes
        ), False

    def _unary_closure(self, semantics: Semantics) -> UnaryClosure:
        closure = self._unary_cache.get(semantics)
        if closure is None:
            closure = unary_closure(
                list(self.index.inds) + list(self.index.fds),
                finite=semantics is Semantics.FINITE,
            )
            self._unary_cache[semantics] = closure
        return closure

    # -- implication -------------------------------------------------------

    def implies(
        self,
        target: Target,
        semantics: Union[Semantics, str] = Semantics.UNRESTRICTED,
        _exhaustive: bool = False,
    ) -> Answer:
        """Decide ``Sigma |= target`` with the optimal engine.

        ``semantics`` selects unrestricted (default) or finite
        implication; the two coincide on pure-IND and pure-FD
        questions, differ on unary mixed sets (Theorem 4.4), and finite
        implication of non-unary mixed sets raises — it is not even
        recursively enumerable, so there is nothing sound to route to.
        """
        semantics = Semantics(semantics)
        target = self._coerce(target)
        engine = choose_engine(self.index, target, semantics)
        self.queries += 1

        if engine is Engine.COROLLARY_32:
            assert isinstance(target, IND)
            result, cached = self._decide_ind(target, exhaustive=_exhaustive)
            return Answer(
                verdict=result.implied,
                target=target,
                engine=engine,
                semantics=semantics,
                certificate=result,
                cached=cached,
                stats={"explored": result.explored,
                       "chain_length": result.chain_length},
            )

        if engine is Engine.FD_CLOSURE:
            assert isinstance(target, FD)
            closure = self.index.closure(target.relation, target.lhs_set)
            implied = target.rhs_set <= closure
            derivation = closure_derivation(
                target.lhs_set, self.index.fds_of(target.relation)
            ) if implied else None
            return Answer(
                verdict=implied,
                target=target,
                engine=engine,
                semantics=semantics,
                certificate=derivation,
                stats={"closure_size": len(closure),
                       "closures_memoized": self.index.closure_cache_size},
            )

        if engine in (Engine.FINITE_UNARY, Engine.UNARY_UNRESTRICTED):
            closure = self._unary_closure(semantics)
            return Answer(
                verdict=closure.implies(target),
                target=target,
                engine=engine,
                semantics=semantics,
                certificate=closure,
                stats={"derived_fds": len(closure.fds),
                       "derived_inds": len(closure.inds)},
            )

        certificate = chase_implies(
            self.schema,
            self.dependencies,
            target,
            max_rounds=self.max_rounds,
            max_tuples=self.max_tuples,
        )
        return Answer(
            verdict=certificate.implied,
            target=target,
            engine=Engine.CHASE,
            semantics=semantics,
            certificate=certificate,
            stats={"rounds": certificate.outcome.rounds,
                   "tuples": certificate.outcome.instance.total_tuples()},
        )

    def implies_all(
        self,
        targets: Iterable[Target],
        semantics: Union[Semantics, str] = Semantics.UNRESTRICTED,
    ) -> list[Answer]:
        """Batch implication: one answer per target, in order.

        The premise index was built once at construction, and when
        several targets share a left expression their expression-graph
        exploration runs exhaustively once and is served from the
        reachability cache afterwards, so asking N questions costs far
        less than N independent calls to the free functions.  Targets
        whose left expression occurs only once keep the early-exit
        search of :func:`~repro.core.ind_decision.decide_ind`.
        """
        coerced = [self._coerce(target) for target in targets]
        start_counts: dict[Expression, int] = {}
        for target in coerced:
            if isinstance(target, IND):
                start = expression_of_lhs(target)
                start_counts[start] = start_counts.get(start, 0) + 1
        return [
            self.implies(
                target,
                semantics,
                _exhaustive=isinstance(target, IND)
                and start_counts[expression_of_lhs(target)] > 1,
            )
            for target in coerced
        ]

    # -- proofs ------------------------------------------------------------

    def prove(self, target: Target) -> Answer:
        """A formal, independently checked proof for ``target``.

        IND targets get an IND1-IND3
        :class:`~repro.core.ind_axioms.Proof` from the IND premises; FD
        targets get an Armstrong
        :class:`~repro.core.fd_axioms.FdProof` from the FD premises.
        Both are run through their independent checkers before being
        returned.  A proof from the class-matching premise *subset* is
        a sound proof from the whole set; when the premises are mixed a
        *negative* answer is only "not provable in this calculus" (the
        interaction results of Section 4 mean the subset can be
        incomplete), which the answer flags with
        ``stats["subset_complete"] = False``.
        """
        target = self._coerce(target)

        if isinstance(target, IND):
            self.queries += 1
            result, cached = self._decide_ind(target)
            subset_complete = self.index.pure_ind
            answer = Answer(
                verdict=result.implied,
                target=target,
                engine=Engine.COROLLARY_32,
                certificate=result,
                cached=cached,
                stats={"explored": result.explored,
                       "subset_complete": subset_complete},
            )
            if result.implied:
                proof = proof_from_decision(result, list(self.index.inds))
                check_proof(proof, self.schema, target)
                answer.proof = proof
            return answer

        if isinstance(target, FD):
            self.queries += 1
            implied = self.index.fd_implied(target)
            subset_complete = self.index.pure_fd
            answer = Answer(
                verdict=implied,
                target=target,
                engine=Engine.FD_CLOSURE,
                stats={"subset_complete": subset_complete},
            )
            if implied:
                proof = prove_fd(target, list(self.index.fds_of(target.relation)))
                check_fd_proof(proof, target)
                answer.proof = proof
            return answer

        raise UnsupportedDependencyError(
            f"no proof calculus for targets of type {type(target).__name__} "
            "(IND1-IND3 proves INDs, Armstrong's axioms prove FDs)"
        )

    # -- database-level questions -----------------------------------------

    def check(self, db: Optional[Database] = None) -> CheckReport:
        """Check a database (or the bundled one) against the premises."""
        instance = db if db is not None else self.db
        if instance is None:
            raise ValueError("session has no database to check")
        results: list[tuple[Dependency, bool]] = []
        witnesses: dict[Dependency, list[tuple]] = {}
        for dep in self.dependencies:
            holds = instance.satisfies(dep)
            results.append((dep, holds))
            if not holds:
                witnesses[dep] = dep.violations(instance)
        return CheckReport(results=results, witnesses=witnesses)

    def keys(self, relation: Optional[str] = None) -> dict[str, list[frozenset[str]]]:
        """Candidate keys per relation under the session's FDs."""
        if relation is not None:
            rel = self.schema.relation(relation)
            return {rel.name: candidate_keys(rel, self.index.fds_of(rel.name))}
        return {
            rel.name: candidate_keys(rel, self.index.fds_of(rel.name))
            for rel in self.schema
        }

    def closure(self, relation: str, attrs: Iterable[str]) -> frozenset[str]:
        """Memoized attribute closure ``X+`` in ``relation``."""
        self.schema.relation(relation)  # validate the name
        return self.index.closure(relation, attrs)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counters for the session's caches and workload."""
        return {
            "queries": self.queries,
            "reach_cache_entries": len(self._reach_cache),
            "reach_cache_hits": self.cache_hits,
            **self.index.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"ReasoningSession({len(self.schema)} relations, "
            f"{len(self.index.inds)} INDs, {len(self.index.fds)} FDs, "
            f"{len(self.index.rds)} RDs)"
        )
