"""The :class:`ReasoningSession` facade.

One object per (schema, dependency set) that answers every question
the library knows how to answer, routing each to the optimal engine:

>>> from repro import ReasoningSession, parse_dependencies
>>> from repro.model.schema import DatabaseSchema
>>> schema = DatabaseSchema.from_dict(
...     {"MGR": ("NAME", "DEPT"), "EMP": ("NAME", "DEPT"), "PERSON": ("NAME",)})
>>> session = ReasoningSession(schema, parse_dependencies(
...     "MGR[NAME,DEPT] <= EMP[NAME,DEPT]\\nEMP[NAME] <= PERSON[NAME]"))
>>> answer = session.implies("MGR[NAME] <= PERSON[NAME]")
>>> answer.verdict, answer.engine.value
(True, 'corollary-3.2')

Premises are indexed at construction (see
:class:`~repro.engine.index.PremiseIndex`) and then follow a
*lifecycle*: :meth:`ReasoningSession.add` and
:meth:`ReasoningSession.retract` mutate the premise set in place,
bumping the monotonically increasing :attr:`ReasoningSession.version`
that every :class:`~repro.engine.answer.Answer` is stamped with.
Mutations invalidate caches *scoped to what actually changed*:

* IND questions are served by the premise index's compiled
  :class:`~repro.core.reach_index.ReachIndex` (SCC-condensed bitset
  closure, amortized O(1) per decision); an IND mutation whose left
  relation is outside the index's materialized footprint is a free
  monotone extension, anything else bumps the index epoch and
  recompiles lazily on the next query;
* an FD mutation drops only that relation's memoized attribute
  closures and candidate keys;
* any mutation drops the unary-closure cache (its fixpoint mixes every
  premise, so there is no sound narrower scope).

:meth:`ReasoningSession.fork` gives a copy-on-write child for what-if
comparison — mutate the child, and :meth:`ReasoningSession.whatif`
reports which target verdicts flip — without the parent giving up any
of its warmed caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.parser import parse_dependency
from repro.exceptions import (
    ChaseBudgetExceeded,
    DeadlineExceeded,
    SearchBudgetExceeded,
    UnsupportedDependencyError,
)
from repro.model.database import Database
from repro.model.schema import DatabaseSchema
from repro.core.fd_closure import closure_derivation
from repro.core.fd_axioms import check_fd_proof, prove_fd
from repro.core.fdind_chase import chase_implies
from repro.core.finite_unary import UnaryClosure, unary_closure
from repro.core.ind_axioms import check_proof
from repro.core.ind_decision import DecisionResult, decide_ind, expression_of_lhs
from repro.core.ind_prover import proof_from_decision
from repro.engine.answer import Answer, Engine, Semantics, jsonify
from repro.engine.deadline import DeadlineLike, coerce_deadline
from repro.engine.index import MutationDelta, PremiseIndex
from repro.engine.routing import choose_engine, routing_profile

Target = Union[Dependency, str]
"""A question: a dependency object or its text-DSL rendering."""

Targets = Union[Target, Iterable[Target]]
"""One target or many (what the mutation API accepts)."""


@dataclass
class CheckReport:
    """Outcome of checking a database against the session's premises."""

    results: list[tuple[Dependency, bool]]
    witnesses: dict[Dependency, list[tuple]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(holds for _dep, holds in self.results)

    @property
    def violated(self) -> list[Dependency]:
        return [dep for dep, holds in self.results if not holds]

    @property
    def satisfied_count(self) -> int:
        return sum(1 for _dep, holds in self.results if holds)

    def __bool__(self) -> bool:
        return self.ok

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict for machine consumers (the CLI ``--json``)."""
        return {
            "ok": self.ok,
            "satisfied": self.satisfied_count,
            "total": len(self.results),
            "results": [
                {
                    "dependency": str(dep),
                    "holds": holds,
                    "witnesses": [
                        jsonify(witness)
                        for witness in self.witnesses.get(dep, ())
                    ],
                }
                for dep, holds in self.results
            ],
        }


@dataclass
class VerdictFlip:
    """One target's before/after verdicts across a premise change."""

    target: Dependency
    before: Answer
    after: Answer

    @property
    def flipped(self) -> bool:
        return self.before.verdict != self.after.verdict


class ReasoningSession:
    """Facade over the paper's four decision procedures.

    Parameters
    ----------
    schema:
        The database scheme every dependency must be well-formed over.
    dependencies:
        The initial premise set Sigma.  Indexed here; evolved in place
        afterwards through :meth:`add` / :meth:`retract`.
    db:
        Optional bundled instance (used by :meth:`check` when no
        explicit database is passed).
    max_nodes / max_rounds / max_tuples:
        Budgets forwarded to the exact search and to the chase.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        dependencies: Iterable[Dependency] = (),
        db: Optional[Database] = None,
        *,
        max_nodes: int = 2_000_000,
        max_rounds: int = 200,
        max_tuples: int = 100_000,
    ):
        self.schema = schema
        self.index = PremiseIndex(schema, dependencies)
        self.db = db
        self.max_nodes = max_nodes
        self.max_rounds = max_rounds
        self.max_tuples = max_tuples
        self.version = 0
        self._unary_cache: dict[Semantics, UnaryClosure] = {}
        self.queries = 0
        self.cache_hits = 0
        self.reach_fallbacks = 0
        self.degraded_answers = 0
        self.engine_counts: dict[str, int] = {}
        self.chase_runs = 0
        self.chase_rounds = 0
        self.chase_rows_scanned = 0
        self.discovery = None

    @classmethod
    def from_database(
        cls,
        db: Database,
        *,
        classes: Iterable[str] = ("fd", "ind"),
        max_lhs: Optional[int] = None,
        max_ind_arity: Optional[int] = None,
        prune: bool = True,
        reduce: bool = True,
        reduce_strategy: str = "auto",
        **session_options: Any,
    ) -> "ReasoningSession":
        """A session whose premises are *mined from the data*.

        Runs the :mod:`repro.discovery` pipeline over ``db`` (FD
        lattice walk, implication-pruned IND apriori lift, minimal
        cover), then builds a session over the reduced cover with
        ``db`` bundled for :meth:`check`.  The full
        :class:`~repro.discovery.report.DiscoveryReport` — per-phase
        candidate/pruning/validation counters included — is kept on
        :attr:`discovery`.

        >>> from repro.model.builders import database
        >>> db = database({"R": ("A", "B"), "S": ("B",)},
        ...               {"R": [(1, 2), (2, 2)], "S": [(2,), (3,)]})
        >>> session = ReasoningSession.from_database(db)
        >>> session.implies("R: A -> B").verdict
        True
        """
        from repro.discovery.pipeline import discover

        report = discover(
            db,
            classes=classes,
            max_lhs=max_lhs,
            max_ind_arity=max_ind_arity,
            prune=prune,
            reduce=reduce,
            reduce_strategy=reduce_strategy,
        )
        if (
            report.session is not None
            and type(report.session) is cls
            and not session_options
        ):
            # The reduction already built this exact session (premises
            # == cover, db bundled, kernels and reach index warm from
            # the reduction queries) — adopt it instead of re-indexing.
            session = report.session
        else:
            session = cls(db.schema, report.cover, db=db, **session_options)
        session.discovery = report
        return session

    # -- plumbing ----------------------------------------------------------

    @property
    def dependencies(self) -> tuple[Dependency, ...]:
        return self.index.dependencies

    @property
    def premise_hash(self) -> str:
        """Structural hash of (schema, premise multiset) — see
        :attr:`PremiseIndex.premise_hash`.  Stable across processes and
        premise insertion orders; the serving layer's artifact-sharing
        key."""
        return self.index.premise_hash

    def adopt_compiled_from(self, donor: "ReasoningSession") -> None:
        """Share a structurally identical session's compiled artifacts.

        Grafts copy-on-write twins of the donor's compiled IND kernels,
        reach index, FD closure kernels, closure/key memos, and unary
        closures onto this session, so a freshly built session with the
        same (schema, premises) skips every compilation the donor
        already paid.  Verdicts are unaffected — only warm state moves.
        Raises :class:`ValueError` when the premise hashes differ.
        """
        if donor is self:
            return
        self.index.adopt_compiled(donor.index)
        self._unary_cache = dict(donor._unary_cache)

    def _coerce(self, target: Target) -> Dependency:
        if isinstance(target, str):
            target = parse_dependency(target)
        target.validate(self.schema)
        return target

    def _coerce_many(self, targets: Targets) -> list[Dependency]:
        if isinstance(targets, (str, Dependency)):
            targets = [targets]
        return [self._coerce(target) for target in targets]

    def route(self, target: Target,
              semantics: Union[Semantics, str] = Semantics.UNRESTRICTED) -> Engine:
        """Which engine :meth:`implies` would use, without running it."""
        return choose_engine(self.index, self._coerce(target), Semantics(semantics))

    # -- the premise lifecycle ---------------------------------------------

    def add(self, dependencies: Targets) -> MutationDelta:
        """Assert new premises: ``Sigma := Sigma + deps``.

        Accepts one target or an iterable, each a dependency object or
        its DSL rendering.  Bumps :attr:`version` and invalidates only
        the caches the mutation can actually affect (see the module
        docstring).  Returns the :class:`MutationDelta`.
        """
        delta = self.index.add(self._coerce_many(dependencies), validate=False)
        self._apply_delta(delta)
        return delta

    def retract(self, dependencies: Targets) -> MutationDelta:
        """Withdraw premises: ``Sigma := Sigma - deps``.

        Each dependency must currently be a premise (one occurrence is
        removed per mention); otherwise
        :class:`~repro.exceptions.DependencyError` is raised and the
        session is left unchanged.
        """
        delta = self.index.retract(self._coerce_many(dependencies))
        self._apply_delta(delta)
        return delta

    def _apply_delta(self, delta: MutationDelta) -> None:
        """Version bump + scoped cache invalidation for one mutation.

        The index has already evicted the affected closure/key memos
        and fed the reach index's epoch/dirty policy (free monotone
        extension vs lazy recompile); here the session drops the
        unary-closure cache (whole-set fixpoint) on any mutation.
        An empty mutation is a no-op: no version bump, no eviction.
        """
        if not delta:
            return
        self.version += 1
        self._unary_cache.clear()

    def fork(self) -> "ReasoningSession":
        """A copy-on-write child session for what-if exploration.

        The child starts with the parent's premises, version, and
        warmed caches — cloning copies dict skeletons (including the
        compiled reach index's node/label arrays), never re-indexes or
        recompiles — and the two evolve independently afterwards:
        mutations on either side replace buckets and evict cache
        entries rather than mutating shared values.
        """
        child = ReasoningSession.__new__(ReasoningSession)
        child.schema = self.schema
        child.index = self.index.clone()
        child.db = self.db
        child.max_nodes = self.max_nodes
        child.max_rounds = self.max_rounds
        child.max_tuples = self.max_tuples
        child.version = self.version
        child._unary_cache = dict(self._unary_cache)
        child.queries = 0
        child.cache_hits = 0
        child.reach_fallbacks = 0
        child.degraded_answers = 0
        child.engine_counts = {}
        child.chase_runs = 0
        child.chase_rounds = 0
        child.chase_rows_scanned = 0
        child.discovery = self.discovery
        return child

    def whatif(
        self,
        targets: Iterable[Target],
        add: Targets = (),
        retract: Targets = (),
        semantics: Union[Semantics, str] = Semantics.UNRESTRICTED,
    ) -> list[VerdictFlip]:
        """Which targets change verdict under a hypothetical change?

        Answers every target against the current premises, forks a
        child, applies ``retract`` then ``add`` to the child, and
        answers again — ``repro diff`` style.  The parent session is
        untouched (and keeps any exploration warmed along the way).
        """
        coerced = [self._coerce(target) for target in targets]
        before = self.implies_all(coerced, semantics)
        child = self.fork()
        retractions = child._coerce_many(retract)
        if retractions:
            child.retract(retractions)
        additions = child._coerce_many(add)
        if additions:
            child.add(additions)
        after = child.implies_all(coerced, semantics)
        return [
            VerdictFlip(target=target, before=b, after=a)
            for target, b, a in zip(coerced, before, after)
        ]

    def _decide_ind(self, target: IND, tick=None) -> tuple[DecisionResult, bool]:
        """Decide one IND question from the compiled reach index.

        An already-compiled source answers with a bitset membership
        test (amortized O(1)); a fresh source materializes its
        reachable component into the shared index first, so every
        later question from (or through) it is a hit.  The second
        element reports whether the answer was a pure hit — no
        materialization, no recompile.
        """
        reach = self.index.reach_index
        if reach.is_hot(expression_of_lhs(target)):
            self.cache_hits += 1
            return reach.decide(target, max_nodes=self.max_nodes, tick=tick), True
        try:
            return reach.decide(target, max_nodes=self.max_nodes, tick=tick), False
        except SearchBudgetExceeded:
            # The source's full closure blows the budget, but the
            # early-exit BFS may still find the goal within it — e.g. a
            # one-hop implication inside a combinatorial expression
            # graph.  The failed expansion was rolled back, so the
            # compiled components other sources rely on are intact.
            self.reach_fallbacks += 1
            return decide_ind(
                target, self.index.ind_kernels, max_nodes=self.max_nodes,
                tick=tick,
            ), False

    def _unary_closure(self, semantics: Semantics) -> UnaryClosure:
        closure = self._unary_cache.get(semantics)
        if closure is None:
            closure = unary_closure(
                list(self.index.inds) + list(self.index.fds),
                finite=semantics is Semantics.FINITE,
            )
            self._unary_cache[semantics] = closure
        return closure

    # -- implication -------------------------------------------------------

    def implies(
        self,
        target: Target,
        semantics: Union[Semantics, str] = Semantics.UNRESTRICTED,
        _coerced: bool = False,
        *,
        deadline: DeadlineLike = None,
        degrade: bool = False,
    ) -> Answer:
        """Decide ``Sigma |= target`` with the optimal engine.

        ``semantics`` selects unrestricted (default) or finite
        implication; the two coincide on pure-IND and pure-FD
        questions, differ on unary mixed sets (Theorem 4.4), and finite
        implication of non-unary mixed sets raises — it is not even
        recursively enumerable, so there is nothing sound to route to.

        ``deadline`` (a :class:`~repro.engine.deadline.Deadline` or a
        number of seconds) bounds the wall-clock time the engines may
        spend: the chase polls it before every rule application, the
        reach/kernel BFS paths every 256 expansions.  ``degrade``
        selects what happens when the deadline expires *or* a
        work budget (chase rounds/tuples, search nodes) runs out:
        ``False`` (the default, the library contract) re-raises the
        exception; ``True`` (the serving contract) returns an
        :class:`Answer` with ``verdict=None``/``degraded=True`` and
        partial stats instead.
        """
        semantics = Semantics(semantics)
        if not _coerced:
            target = self._coerce(target)
        engine = choose_engine(self.index, target, semantics)
        self.queries += 1
        self.engine_counts[engine.value] = (
            self.engine_counts.get(engine.value, 0) + 1
        )
        deadline = coerce_deadline(deadline)
        tick = deadline.check if deadline is not None else None
        try:
            if tick is not None:
                tick()
            return self._dispatch(target, semantics, engine, tick)
        except (DeadlineExceeded, ChaseBudgetExceeded,
                SearchBudgetExceeded) as exc:
            if not degrade:
                raise
            return self._degraded_answer(target, semantics, engine, exc,
                                         deadline)

    def _degraded_answer(
        self,
        target: Dependency,
        semantics: Semantics,
        engine: Engine,
        exc: Exception,
        deadline,
    ) -> Answer:
        """The unknown-verdict answer a cut-short question degrades to.

        Carries the partial progress the failed engine reported — how
        far the chase or search got — so callers can distinguish "barely
        started" from "almost converged" timeouts.
        """
        stats: dict[str, Any]
        if isinstance(exc, DeadlineExceeded):
            stats = {"reason": "deadline",
                     "elapsed_ms": round(exc.elapsed * 1000, 3)}
        elif isinstance(exc, ChaseBudgetExceeded):
            stats = {"reason": "chase-budget",
                     "rounds": exc.rounds, "tuples": exc.tuples}
        else:
            assert isinstance(exc, SearchBudgetExceeded)
            stats = {"reason": "search-budget", "explored": exc.explored}
        if deadline is not None and "elapsed_ms" not in stats:
            stats["elapsed_ms"] = round(deadline.elapsed() * 1000, 3)
        self.degraded_answers += 1
        return Answer(
            verdict=None,
            target=target,
            engine=engine,
            semantics=semantics,
            degraded=True,
            version=self.version,
            stats=stats,
        )

    def _dispatch(
        self,
        target: Dependency,
        semantics: Semantics,
        engine: Engine,
        tick,
    ) -> Answer:
        if engine is Engine.COROLLARY_32:
            assert isinstance(target, IND)
            result, cached = self._decide_ind(target, tick)
            return Answer(
                verdict=result.implied,
                target=target,
                engine=engine,
                semantics=semantics,
                certificate=result,
                cached=cached,
                version=self.version,
                stats={"explored": result.explored,
                       "frontier_peak": result.frontier_peak,
                       "chain_length": result.chain_length},
            )

        if engine is Engine.FD_CLOSURE:
            assert isinstance(target, FD)
            closure = self.index.closure(target.relation, target.lhs_set)
            implied = target.rhs_set <= closure
            derivation = closure_derivation(
                target.lhs_set, self.index.fds_of(target.relation)
            ) if implied else None
            return Answer(
                verdict=implied,
                target=target,
                engine=engine,
                semantics=semantics,
                certificate=derivation,
                version=self.version,
                stats={"closure_size": len(closure),
                       "closures_memoized": self.index.closure_cache_size},
            )

        if engine in (Engine.FINITE_UNARY, Engine.UNARY_UNRESTRICTED):
            closure = self._unary_closure(semantics)
            return Answer(
                verdict=closure.implies(target),
                target=target,
                engine=engine,
                semantics=semantics,
                certificate=closure,
                version=self.version,
                stats={"derived_fds": len(closure.fds),
                       "derived_inds": len(closure.inds)},
            )

        certificate = chase_implies(
            self.schema,
            self.dependencies,
            target,
            max_rounds=self.max_rounds,
            max_tuples=self.max_tuples,
            tick=tick,
        )
        self.chase_runs += 1
        self.chase_rounds += certificate.outcome.rounds
        self.chase_rows_scanned += certificate.outcome.rows_scanned
        return Answer(
            verdict=certificate.implied,
            target=target,
            engine=Engine.CHASE,
            semantics=semantics,
            certificate=certificate,
            version=self.version,
            stats={"rounds": certificate.outcome.rounds,
                   "tuples": certificate.outcome.instance.total_tuples(),
                   "rows_scanned": certificate.outcome.rows_scanned},
        )

    def implies_all(
        self,
        targets: Iterable[Target],
        semantics: Union[Semantics, str] = Semantics.UNRESTRICTED,
        *,
        deadline: DeadlineLike = None,
        degrade: bool = False,
    ) -> list[Answer]:
        """Batch implication: one answer per target, in order.

        Each target is coerced and validated exactly once, and every
        IND question shares the session's compiled reach index: the
        first target from a source materializes its component, and
        every later target from (or through) that component — grouped
        or not — is a bitset hit.  Asking N questions therefore costs
        one compilation plus N O(1) lookups, far less than N
        independent calls to the free functions.

        ``deadline`` is shared by the whole batch (one clock, not one
        per target); with ``degrade=True`` the targets the clock ran
        out on come back as unknown-verdict answers while already
        decided ones keep their real verdicts.
        """
        coerced = [self._coerce(target) for target in targets]
        deadline = coerce_deadline(deadline)
        return [
            self.implies(target, semantics, _coerced=True,
                         deadline=deadline, degrade=degrade)
            for target in coerced
        ]

    # -- proofs ------------------------------------------------------------

    def prove(self, target: Target) -> Answer:
        """A formal, independently checked proof for ``target``.

        IND targets get an IND1-IND3
        :class:`~repro.core.ind_axioms.Proof` from the IND premises; FD
        targets get an Armstrong
        :class:`~repro.core.fd_axioms.FdProof` from the FD premises.
        Both are run through their independent checkers before being
        returned.  A proof from the class-matching premise *subset* is
        a sound proof from the whole set; when the premises are mixed a
        *negative* answer is only "not provable in this calculus" (the
        interaction results of Section 4 mean the subset can be
        incomplete), which the answer flags with
        ``stats["subset_complete"] = False``.
        """
        target = self._coerce(target)

        if isinstance(target, IND):
            self.queries += 1
            result, cached = self._decide_ind(target)
            subset_complete = self.index.pure_ind
            answer = Answer(
                verdict=result.implied,
                target=target,
                engine=Engine.COROLLARY_32,
                certificate=result,
                cached=cached,
                version=self.version,
                stats={"explored": result.explored,
                       "subset_complete": subset_complete},
            )
            if result.implied:
                proof = proof_from_decision(result, list(self.index.inds))
                check_proof(proof, self.schema, target)
                answer.proof = proof
            return answer

        if isinstance(target, FD):
            self.queries += 1
            implied = self.index.fd_implied(target)
            subset_complete = self.index.pure_fd
            answer = Answer(
                verdict=implied,
                target=target,
                engine=Engine.FD_CLOSURE,
                version=self.version,
                stats={"subset_complete": subset_complete},
            )
            if implied:
                proof = prove_fd(target, list(self.index.fds_of(target.relation)))
                check_fd_proof(proof, target)
                answer.proof = proof
            return answer

        raise UnsupportedDependencyError(
            f"no proof calculus for targets of type {type(target).__name__} "
            "(IND1-IND3 proves INDs, Armstrong's axioms prove FDs)"
        )

    # -- database-level questions -----------------------------------------

    def check(self, db: Optional[Database] = None) -> CheckReport:
        """Check a database (or the bundled one) against the premises."""
        instance = db if db is not None else self.db
        if instance is None:
            raise ValueError("session has no database to check")
        results: list[tuple[Dependency, bool]] = []
        witnesses: dict[Dependency, list[tuple]] = {}
        for dep in self.dependencies:
            holds = instance.satisfies(dep)
            results.append((dep, holds))
            if not holds:
                witnesses[dep] = dep.violations(instance)
        return CheckReport(results=results, witnesses=witnesses)

    def keys(self, relation: Optional[str] = None) -> dict[str, list[frozenset[str]]]:
        """Candidate keys per relation under the session's FDs.

        Memoized in the premise index; the FD-mutation path evicts
        exactly the mutated relation's entry.
        """
        if relation is not None:
            rel = self.schema.relation(relation)
            return {rel.name: self.index.keys_of(rel.name)}
        return {rel.name: self.index.keys_of(rel.name) for rel in self.schema}

    def closure(self, relation: str, attrs: Iterable[str]) -> frozenset[str]:
        """Memoized attribute closure ``X+`` in ``relation``."""
        self.schema.relation(relation)  # validate the name
        return self.index.closure(relation, attrs)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Counters for the session's caches and workload.

        ``reach_cache_hits`` counts IND answers served without any
        materialization or recompile; the ``reach_*`` keys from the
        premise index expose the compiled closure itself (nodes, SCCs,
        label bits, epoch, compile count).  ``engines`` is the routing
        histogram of every ``implies`` call this session answered.
        ``premise_hash`` and ``version`` identify the premise set
        structurally and temporally — what a remote caller needs to
        tell two tenants (or two snapshots of one) apart.
        """
        return {
            "version": self.version,
            "premise_hash": self.premise_hash,
            "queries": self.queries,
            "reach_cache_hits": self.cache_hits,
            "reach_fallbacks": self.reach_fallbacks,
            "degraded_answers": self.degraded_answers,
            "engines": dict(self.engine_counts),
            "chase_runs": self.chase_runs,
            "chase_rounds": self.chase_rounds,
            "chase_rows_scanned": self.chase_rows_scanned,
            "routing": routing_profile(self.index),
            **self.index.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"ReasoningSession({len(self.schema)} relations, "
            f"{len(self.index.inds)} INDs, {len(self.index.fds)} FDs, "
            f"{len(self.index.rds)} RDs, v{self.version})"
        )
