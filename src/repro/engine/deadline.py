"""Cooperative per-request deadlines.

Mixed FD+IND implication is undecidable, so a chase-routed question is
bounded only by its round/tuple budgets — which count *work*, not
*time*.  A :class:`Deadline` adds the wall-clock bound: engines accept
an optional zero-argument ``tick`` callable and invoke it between
units of work (chase rule applications, batches of BFS expansions);
:meth:`Deadline.check` is that callable, raising
:class:`~repro.exceptions.DeadlineExceeded` once the clock runs out.

The check is deliberately cheap (one ``time.monotonic()`` call and a
comparison) so engines can afford to poll it often; the engines
themselves choose granularities coarse enough that polling never shows
up in profiles (per chase rule application, per 256 BFS pops).
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.exceptions import DeadlineExceeded


class Deadline:
    """A monotonic-clock expiry shared by everything one request does."""

    __slots__ = ("started_at", "expires_at")

    def __init__(self, seconds: float):
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        self.started_at = time.monotonic()
        self.expires_at = self.started_at + seconds

    @classmethod
    def from_ms(cls, milliseconds: float) -> "Deadline":
        return cls(milliseconds / 1000.0)

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def remaining(self) -> float:
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """The tick callable engines poll; raises when expired."""
        now = time.monotonic()
        if now >= self.expires_at:
            raise DeadlineExceeded(
                f"deadline of {self.expires_at - self.started_at:.3f}s "
                f"exceeded after {now - self.started_at:.3f}s",
                elapsed=now - self.started_at,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


DeadlineLike = Optional[Union["Deadline", int, float]]
"""What deadline-accepting APIs take: a Deadline, seconds, or None."""


def coerce_deadline(deadline: DeadlineLike) -> Optional[Deadline]:
    """``None`` passes through; numbers become seconds-from-now."""
    if deadline is None or isinstance(deadline, Deadline):
        return deadline
    return Deadline(float(deadline))
