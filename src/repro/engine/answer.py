"""The uniform answer type shared by every reasoning engine.

The paper's four decision procedures return four unrelated result
shapes (a :class:`~repro.core.ind_decision.DecisionResult`, a bare
bool with a closure derivation, an
:class:`~repro.core.fdind_chase.ImplicationCertificate`, a
:class:`~repro.core.finite_unary.UnaryClosure`).  The session facade
normalizes all of them into :class:`Answer` so callers can treat an
implication question uniformly regardless of which engine answered it,
while keeping the engine-native certificate attached for inspection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.deps.base import Dependency


class Engine(str, enum.Enum):
    """Which decision procedure produced an :class:`Answer`.

    The members are the paper's four procedures; the string values are
    stable identifiers used by the CLI and the routing tests.
    """

    COROLLARY_32 = "corollary-3.2"
    """Expression-graph reachability for pure-IND implication
    (Corollary 3.2; finite and unrestricted implication coincide)."""

    FD_CLOSURE = "fd-closure"
    """Attribute-set closure for pure-FD implication (the classical
    procedure the paper cites as its template)."""

    CHASE = "chase"
    """The FD+IND(+RD) chase — semi-decision for unrestricted
    implication of mixed sets (budgeted; the problem is undecidable)."""

    FINITE_UNARY = "finite-unary"
    """The cycle-rule closure for *finite* implication of unary FDs and
    INDs (Theorem 4.4 / the [KCV] axiomatization)."""

    UNARY_UNRESTRICTED = "unary-unrestricted"
    """Transitive closure for *unrestricted* implication of unary FDs
    and INDs — the cycle-free half of [KCV], exact where the general
    chase may diverge."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Semantics(str, enum.Enum):
    """Which notion of implication a question asked about."""

    UNRESTRICTED = "unrestricted"
    FINITE = "finite"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Answer:
    """One decided question, whatever engine decided it.

    ``certificate`` holds the engine-native evidence: a
    ``DecisionResult`` (witness chain) for ``corollary-3.2``, a closure
    derivation for ``fd-closure``, an ``ImplicationCertificate`` for
    ``chase``, a ``UnaryClosure`` for ``finite-unary``, and a formal
    ``Proof``/``FdProof`` for :meth:`ReasoningSession.prove`.

    ``verdict`` is three-valued: ``True``/``False`` are decisions;
    ``None`` means *unknown* — the question was cut short by a deadline
    or a resource budget before either answer was certified.  Unknown
    answers always carry ``degraded=True`` and partial stats describing
    how far the engine got.
    """

    verdict: Optional[bool]
    target: Dependency
    engine: Engine
    semantics: Semantics = Semantics.UNRESTRICTED
    certificate: Any = None
    proof: Any = None
    cached: bool = False
    degraded: bool = False
    version: int = 0
    stats: dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.verdict)

    @property
    def verdict_word(self) -> str:
        if self.verdict is None:
            return "UNKNOWN"
        return "IMPLIED" if self.verdict else "NOT implied"

    def describe(self) -> str:
        """Human-readable account, uniform across engines."""
        from repro.core.ind_decision import DecisionResult

        if isinstance(self.certificate, DecisionResult):
            body = self.certificate.describe()
        else:
            body = f"{self.target}: {self.verdict_word}"
        extras = [f"engine={self.engine.value}"]
        if self.semantics is Semantics.FINITE:
            extras.append("finite semantics")
        if self.cached:
            extras.append("cached")
        if self.degraded:
            extras.append("degraded")
        extras.extend(f"{key}={value}" for key, value in self.stats.items())
        return f"{body}\n  [{', '.join(extras)}]"

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict for machine consumers (the CLI ``--json``).

        Engine-native certificates stay Python objects on the answer;
        the JSON view carries their portable core — the witness chain
        for ``corollary-3.2`` answers — plus the verdict, routing, the
        session version the answer was computed against, and stats.
        """
        from repro.core.ind_decision import DecisionResult

        payload: dict[str, Any] = {
            "target": str(self.target),
            "verdict": "unknown" if self.verdict is None else self.verdict,
            "engine": self.engine.value,
            "semantics": self.semantics.value,
            "cached": self.cached,
            "degraded": self.degraded,
            "version": self.version,
            "stats": {key: jsonify(value) for key, value in self.stats.items()},
        }
        if isinstance(self.certificate, DecisionResult) and self.certificate.chain:
            payload["chain"] = [
                {"relation": relation, "attributes": list(attrs)}
                for relation, attrs in self.certificate.chain
            ]
        return payload

    def __str__(self) -> str:
        return self.describe()


def jsonify(value: Any) -> Any:
    """Best-effort conversion to JSON-representable values.

    Tuples (database rows, witness pairs) become lists recursively;
    JSON scalars pass through; anything exotic falls back to ``str``.
    """
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    return str(value)
