"""The recorded benchmark harness behind ``repro bench``.

Runs named workloads over the three decision engines and writes a
``BENCH_*.json`` report — the repo's performance trajectory.  Each
workload times the *kernel/semi-naive* production path and, where a
retained naive reference exists, the reference too, so the recorded
speedup is measured against real code in the same process, not a
remembered number.

Workloads (all deterministic, seeded):

* ``single_decide`` — one Corollary 3.2 decision over a 500-premise,
  100-relation chain+noise workload, premises pre-compiled (the
  steady-state serving shape).  Reference: :func:`decide_ind_naive`.
* ``batch_implies_all`` — a 39-target ``implies_all`` batch on a fresh
  session (cold caches; indexing outside the clock).
* ``chase_fixpoint`` — FD+IND chase to fixpoint on a 40-relation chain
  ordered adversarially (one propagation hop per round).  Reference:
  the naive rescan strategy.
* ``incremental_add_requery`` — premise ``add`` plus batch re-query on
  a warmed session (the PR 2 lifecycle path).
* ``repeated_decide_hot`` — 10k ``implies`` calls, mixed hit/miss,
  against one long-lived session (the reach-index serving shape).
  Reference: the PR-3 kernel BFS over the same queries.
* ``implies_all_grouped`` — a warm batch whose targets are grouped by
  source expression, all served from one compiled closure.
* ``discovery_mine`` — full FD+IND discovery (implication-pruned) on a
  6-relation replicated-content database.  Reference: the
  validate-everything lift (``prune=False``) over the same data.
* ``serving_mixed`` — simulated concurrent clients against one tenant
  through the :mod:`repro.serve` coalescer: a read-heavy phase measured
  both coalesced and per-request-dispatched (the recorded speedup), and
  a mixed read/mutate phase with p50/p95/p99 request latency.  Also
  records the artifact-LRU evidence: a second structurally identical
  tenant adopting the first's compiled indexes.
* ``cold_start_recovery`` — boot a durable tenant from its snapshot
  plus WAL tail (the crash-recovery path of :mod:`repro.serve.wal`)
  versus rebuilding the same state by replaying the entire mutation
  history from the original bundle.  The recorded speedup is the
  acceptance evidence for checkpointing.
* ``observability_overhead`` — the coalesced read-heavy stream run
  twice, bare (every instrumentation site sees ``trace is None``) and
  fully traced+metered (per-request :class:`~repro.obs.tracing.Trace`,
  coalescer span attribution, batch-size and latency histograms, the
  debug trace ring), isolating the per-request instrumentation cost;
  plus the same stream over real HTTP for the per-request cost that
  overhead is honestly measured against.  The workload *asserts* the
  recorded fraction stays under :data:`OBS_OVERHEAD_BUDGET`, so an
  instrumentation path that grows a hot-path cost fails the bench run
  loudly.
* ``replicated_serving`` — aggregate read throughput of a primary
  plus two bootstrapped followers versus the primary alone, with
  per-request service time emulated by the ``latency:hold`` fault so
  the recorded scale-out measures the *architecture* (read offload
  across nodes) rather than this machine's core count; plus the
  failover-to-first-answer time of a :class:`FailoverClient` mutation
  issued the instant the primary vanishes.  The recorded speedup is
  the acceptance evidence for replication.

The report format is one JSON object::

    {"suite": "...", "schema_version": 1, "created": "...",
     "calibration_seconds": c,
     "workloads": {name: {"seconds": s, "ops_per_sec": r, "meta": {...}}}}

``seconds`` is the best wall-time of one timed repetition and is
what :func:`compare_reports` checks against a committed baseline (a
workload regresses when its ``seconds`` grows more than ``threshold``
relative); ``meta`` carries workload sizes and measured naive/kernel
speedups for human trend-reading.

Besides per-run reports, every ``repro bench --trajectory`` run
appends a ``{commit, created, calibration_seconds, workloads}`` entry
to the committed ``BENCH_trajectory.json`` — the repo's perf history —
and the regression gate reads its *last* entry as the baseline
(:func:`baseline_from` accepts either format).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import subprocess
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, Iterable, Optional, Union

from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.session import ReasoningSession
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.core.fdind_chase import ChaseEngine, ChaseInstance
from repro.core.ind_decision import decide_ind, decide_ind_naive, index_by_lhs
from repro.core.ind_kernel import KernelIndex

SCHEMA_VERSION = 1
SUITE = "e23-observability"
DEFAULT_REPEATS = 15

COMMITTED_BASELINE = "BENCH_e23.json"
"""The committed single-report snapshot of the current suite."""

COMMITTED_TRAJECTORY = "BENCH_trajectory.json"
"""The committed multi-run history (list of trajectory entries)."""

HOT_CALLS = 10_000
"""``implies`` calls per ``repeated_decide_hot`` repetition."""

SEED = 19841982
"""One seed for every workload: reports are comparable across runs."""


def best_seconds(
    fn: Callable[[], object],
    repeats: int = DEFAULT_REPEATS,
    setup: Optional[Callable[[], object]] = None,
) -> float:
    """Best (minimum) wall-clock of ``fn`` over ``repeats`` runs.

    The minimum is the stablest point estimate for sub-millisecond
    workloads — every slower sample is the same code plus scheduler or
    allocator noise — which is what a cross-run regression gate needs.
    ``setup`` runs outside the clock.
    """
    best = float("inf")
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def calibrate(repeats: int = 5) -> float:
    """Best wall-time of a fixed pure-Python spin loop.

    Recorded into every report as ``calibration_seconds`` and used by
    :func:`compare_reports` to normalize away machine speed: a report
    recorded on a laptop and one recorded on a throttled CI runner
    disagree on every absolute time but agree on time *relative to the
    spin loop*, which is what a cross-run regression gate needs.
    """
    def spin():
        total = 0
        for i in range(200_000):
            total += i * i
        return total

    return best_seconds(spin, repeats=repeats)


@dataclass
class WorkloadResult:
    """One workload's recorded measurement."""

    name: str
    seconds: float
    ops: int
    meta: dict = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.seconds if self.seconds > 0 else float("inf")

    def to_json(self) -> dict:
        return {
            "seconds": self.seconds,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec,
            "meta": self.meta,
        }


# ---------------------------------------------------------------------------
# Workload fixtures
# ---------------------------------------------------------------------------


def decision_workload():
    """500 premises over 100 chained relations plus a quiet target.

    The chain keeps the reachable expression set deep; the seeded
    noise keeps the buckets busy.  The target is *not* implied, so a
    decision explores the whole reachable set — the worst, and most
    stable, case for the BFS.
    """
    from repro.workloads.random_deps import random_inds

    rng = random.Random(SEED)
    relations = 100
    schema = DatabaseSchema(
        [RelationSchema(f"R{i}", ("A", "B", "C")) for i in range(relations)]
        + [RelationSchema("QUIET", ("A", "B"))]
    )
    chain = [
        IND(f"R{i}", ("A", "B"), f"R{i+1}", ("A", "B"))
        for i in range(relations - 1)
    ]
    busy = DatabaseSchema(
        RelationSchema(f"R{i}", ("A", "B", "C")) for i in range(relations)
    )
    noise = random_inds(rng, busy, count=500 - len(chain), max_arity=2)
    premises = chain + noise
    target = IND("R0", ("A",), "QUIET", ("A",))
    targets = [
        IND("R0", ("A",), f"R{i}", ("A",)) for i in range(1, 40)
    ]
    return schema, premises, target, targets


def serving_workload():
    """The decision workload plus a mixed hit/miss serving target pool.

    The pool mixes shallow and deep chain hits (cheap vs expensive for
    a per-query BFS, identical for the compiled index), misses into the
    quiet relation (the BFS worst case: full exploration), and a
    handful of distinct source expressions so the index amortizes
    across more than one compiled component.
    """
    schema, premises, _target, _targets = decision_workload()
    pool = [
        IND("R0", ("A",), f"R{i}", ("A",)) for i in (1, 5, 20, 40, 60, 80, 99)
    ]
    pool += [
        IND("R10", ("A",), "R70", ("A",)),
        IND("R25", ("B",), "R90", ("B",)),
        IND("R0", ("B",), "R50", ("B",)),
        IND("R0", ("A",), "QUIET", ("A",)),
        IND("R0", ("B",), "QUIET", ("B",)),
        IND("R40", ("A",), "QUIET", ("A",)),
        IND("R99", ("A",), "R0", ("A",)),
        IND("R99", ("B",), "QUIET", ("B",)),
    ]
    return schema, premises, pool


def grouped_targets():
    """Batch targets grouped by source expression (the serving batch
    shape ``implies_all`` amortizes best: one compiled component per
    group, every member an O(1) lookup)."""
    sources = [("R0", "A"), ("R10", "A"), ("R30", "B"), ("R60", "A")]
    targets = []
    for relation, attr in sources:
        targets.extend(
            IND(relation, (attr,), f"R{j}", (attr,)) for j in range(0, 100, 2)
        )
        targets.append(IND(relation, (attr,), "QUIET", (attr,)))
    return targets


def chase_workload():
    """A 40-relation chain ordered against the application order.

    Each round propagates the frontier exactly one hop, so the run
    takes ~40 rounds — the regime where per-round rescans dominate the
    naive engine.
    """
    relations = 40
    schema = DatabaseSchema(
        [RelationSchema(f"R{i}", ("A", "B")) for i in range(relations)]
    )
    deps = [
        IND(f"R{i}", ("A", "B"), f"R{i+1}", ("A", "B"))
        for i in reversed(range(relations - 1))
    ]
    deps += [FD(f"R{i}", ("A",), ("B",)) for i in range(relations)]

    def build_instance() -> ChaseInstance:
        instance = ChaseInstance(schema)
        values = [instance.fresh_null() for _ in range(6)]
        instance.add_row("R0", [values[0], values[1]])
        instance.add_row("R0", [values[2], values[3]])
        instance.add_row("R0", [values[0], values[4]])
        return instance

    return schema, deps, build_instance


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def bench_single_decide(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    schema, premises, target, _targets = decision_workload()
    kernels = KernelIndex(premises)
    naive_index = index_by_lhs(premises)
    decide_ind(target, kernels)  # warm the kernel edge memos

    # One decision is a few hundred microseconds; a sample of several
    # keeps the recorded per-op time out of timer-noise territory.
    inner = 10

    def kernel_sample():
        for _ in range(inner):
            decide_ind(target, kernels)

    def naive_sample():
        for _ in range(inner):
            decide_ind_naive(target, naive_index)

    kernel_seconds = best_seconds(kernel_sample, repeats=repeats) / inner
    naive_seconds = best_seconds(naive_sample, repeats=repeats) / inner
    explored = decide_ind(target, kernels).explored
    return WorkloadResult(
        name="single_decide",
        seconds=kernel_seconds,
        ops=1,
        meta={
            "premises": len(premises),
            "explored": explored,
            "naive_seconds": naive_seconds,
            "speedup_vs_naive": naive_seconds / kernel_seconds,
        },
    )


def bench_batch_implies_all(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    schema, premises, _target, targets = decision_workload()
    session_box: list[ReasoningSession] = []

    def setup():
        session_box.clear()
        session_box.append(ReasoningSession(schema, premises))

    seconds = best_seconds(
        lambda: session_box[0].implies_all(targets),
        repeats=repeats,
        setup=setup,
    )
    return WorkloadResult(
        name="batch_implies_all",
        seconds=seconds,
        ops=len(targets),
        meta={"premises": len(premises), "targets": len(targets)},
    )


def bench_chase_fixpoint(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    schema, deps, build_instance = chase_workload()
    semi = ChaseEngine(schema, deps, strategy="semi-naive")
    naive = ChaseEngine(schema, deps, strategy="naive")

    semi_seconds = best_seconds(
        lambda: semi.run(build_instance()), repeats=repeats
    )
    naive_seconds = best_seconds(
        lambda: naive.run(build_instance()), repeats=repeats
    )
    outcome = semi.run(build_instance())
    return WorkloadResult(
        name="chase_fixpoint",
        seconds=semi_seconds,
        ops=1,
        meta={
            "dependencies": len(deps),
            "rounds": outcome.rounds,
            "tuples": outcome.instance.total_tuples(),
            "rows_scanned": outcome.rows_scanned,
            "naive_seconds": naive_seconds,
            "speedup_vs_naive": naive_seconds / semi_seconds,
        },
    )


def bench_incremental_add_requery(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    schema, premises, _target, targets = decision_workload()
    schema = schema.extended_with(RelationSchema("QUIET2", ("A", "B")))
    session = ReasoningSession(schema, premises)
    session.implies_all(targets)  # warm the exploration cache
    quiet = IND("QUIET", ("A",), "QUIET2", ("A",))

    def setup():
        if quiet in session.dependencies:
            session.retract(quiet)

    def add_and_requery():
        session.add(quiet)
        return session.implies_all(targets)

    seconds = best_seconds(add_and_requery, repeats=repeats, setup=setup)
    return WorkloadResult(
        name="incremental_add_requery",
        seconds=seconds,
        ops=len(targets),
        meta={"premises": len(premises), "targets": len(targets)},
    )


def bench_repeated_decide_hot(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    """10k mixed hit/miss ``implies`` calls against one warm session.

    The serving cost model the reach index exists for: the session
    compiles each source's component once, then every call is a bitset
    membership test (plus chain extraction on hits).  The reference is
    the PR-3 kernel BFS over the identical query stream, measured on a
    subsample (a full 10k-query BFS pass costs seconds) and scaled.
    """
    schema, premises, pool = serving_workload()
    session = ReasoningSession(schema, premises)
    queries = [pool[i % len(pool)] for i in range(HOT_CALLS)]
    warm = session.implies_all(pool)  # compile every component once

    def hot():
        implies = session.implies
        for target in queries:
            implies(target)

    seconds = best_seconds(hot, repeats=min(repeats, 5))

    kernels = session.index.ind_kernels
    sample = queries[: max(1, HOT_CALLS // 10)]

    def bfs_sample():
        for target in sample:
            decide_ind(target, kernels)

    bfs_seconds = best_seconds(bfs_sample, repeats=3) * (
        HOT_CALLS / len(sample)
    )
    hits = sum(answer.verdict for answer in warm)
    return WorkloadResult(
        name="repeated_decide_hot",
        seconds=seconds,
        ops=HOT_CALLS,
        meta={
            "premises": len(premises),
            "calls": HOT_CALLS,
            "pool": len(pool),
            "hit_targets": hits,
            "miss_targets": len(pool) - hits,
            "reach_compiles": session.index.reach_index.compiles,
            "bfs_seconds": bfs_seconds,
            "speedup_vs_bfs": bfs_seconds / seconds,
        },
    )


def bench_implies_all_grouped(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    """A warm source-grouped batch served from one compiled closure.

    Reference: one kernel BFS per target (what the batch would cost
    without the shared index)."""
    schema, premises, _pool = serving_workload()
    targets = grouped_targets()
    session = ReasoningSession(schema, premises)
    session.implies_all(targets)  # compile the grouped components

    seconds = best_seconds(
        lambda: session.implies_all(targets), repeats=min(repeats, 7)
    )
    kernels = session.index.ind_kernels

    def bfs():
        for target in targets:
            decide_ind(target, kernels)

    bfs_seconds = best_seconds(bfs, repeats=3)
    return WorkloadResult(
        name="implies_all_grouped",
        seconds=seconds,
        ops=len(targets),
        meta={
            "premises": len(premises),
            "targets": len(targets),
            "source_groups": 4,
            "bfs_seconds": bfs_seconds,
            "speedup_vs_bfs": bfs_seconds / seconds,
        },
    )


def discovery_workload():
    """A 6-relation clique of identical 300-row relations.

    Column value spaces are disjoint, so every cross-relation IND on
    matching attribute sequences holds and nothing else does — the
    regime where the apriori lift generates many n-ary candidates
    whose transitive composites the reasoning session derives from
    already-accepted premises, i.e. the best honest showcase (and the
    recorded evidence) for implication pruning.
    """
    from repro.model.builders import database

    relations = 6
    rows = 300
    schema = {f"R{i}": ("A", "B", "C") for i in range(relations)}
    base = [(j, 10_000 + j, 20_000 + (j % 6)) for j in range(rows)]
    return database(schema, {f"R{i}": base for i in range(relations)})


def bench_discovery_mine(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    """Full discovery (FDs + implication-pruned INDs) vs the
    validate-everything baseline on the same database."""
    from repro.discovery import discover

    db = discovery_workload()
    # Discovery is deterministic, so the reports captured from the
    # last timed repetition carry the same counters every run would.
    runs: dict[bool, object] = {}

    def pruned_run():
        runs[True] = discover(db, reduce=False)

    def baseline_run():
        runs[False] = discover(db, reduce=False, prune=False)

    pruned_seconds = best_seconds(pruned_run, repeats=min(repeats, 5))
    baseline_seconds = best_seconds(baseline_run, repeats=min(repeats, 5))
    report = runs[True]
    baseline = runs[False]
    nary = report.phases["nary_ind"]
    nary_baseline = baseline.phases["nary_ind"]
    return WorkloadResult(
        name="discovery_mine",
        seconds=pruned_seconds,
        ops=1,
        meta={
            "relations": len(db.schema),
            "tuples": db.total_tuples(),
            "fds_found": len(report.fds),
            "inds_found": len(report.inds),
            "nary_candidates": nary.candidates_generated,
            "nary_validated": nary.validated,
            "nary_pruned_by_implication": nary.pruned_by_implication,
            "baseline_validated": nary_baseline.validated,
            "validation_ratio": nary_baseline.validated / nary.validated,
            "rows_scanned": nary.rows_scanned,
            "baseline_rows_scanned": nary_baseline.rows_scanned,
            "baseline_seconds": baseline_seconds,
            "speedup_vs_validate_all": baseline_seconds / pruned_seconds,
        },
    )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty sample."""
    rank = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[rank]


def bench_serving_mixed(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    """Simulated concurrent serving traffic through the coalescer.

    Clients are asyncio tasks against one warm tenant, submitting
    targets as DSL text (the wire shape).  The read-heavy phase is
    measured twice over the identical request stream: *coalesced*
    (clients await :meth:`Coalescer.submit`, so every request pending
    in one event-loop tick lands in one batch and duplicate targets
    are parsed/decided once) and *direct* (each request parsed and
    decided individually, one loop yield per request — per-request
    dispatch).  The recorded ``speedup_read_heavy`` is the acceptance
    evidence for coalescing.

    The mixed phase is the headline number: concurrent clients with a
    rare in-footprint premise toggle ordered through the coalescing
    barrier, recording per-request p50/p95/p99 latency.

    The LRU evidence runs outside the clock: a registry with two
    structurally identical tenants must report one artifact-cache hit,
    and the adoptee must answer the whole pool without recompiling.
    """
    from repro.serve.coalescer import Coalescer
    from repro.serve.registry import TenantRegistry

    schema, premises, pool = serving_workload()
    texts = [str(target) for target in pool]
    toggle = IND("R50", ("C",), "R51", ("C",))

    READ_CLIENTS, READS = 48, 40
    HOT_PHASES = 4  # clients cluster on hot targets (the zipfian shape)
    MIX_CLIENTS, MIX_OPS = 32, 30
    MUTATE_EVERY = 100

    session = ReasoningSession(schema, premises)
    session.implies_all(pool)  # compile every component once

    # -- read-heavy phase: coalesced vs per-request dispatch -------------
    coalescer_box: list[Coalescer] = []

    def read_heavy_coalesced():
        async def main():
            coalescer = Coalescer(session)
            coalescer_box.append(coalescer)

            async def client(offset: int):
                phase = offset % HOT_PHASES
                for i in range(READS):
                    await coalescer.submit(texts[(phase + i) % len(texts)])

            await asyncio.gather(
                *(client(offset) for offset in range(READ_CLIENTS))
            )

        asyncio.run(main())

    def read_heavy_direct():
        async def main():
            async def client(offset: int):
                phase = offset % HOT_PHASES
                for i in range(READS):
                    session.implies(texts[(phase + i) % len(texts)])
                    await asyncio.sleep(0)

            await asyncio.gather(
                *(client(offset) for offset in range(READ_CLIENTS))
            )

        asyncio.run(main())

    read_repeats = min(repeats, 5)
    coalesced_seconds = best_seconds(read_heavy_coalesced, repeats=read_repeats)
    direct_seconds = best_seconds(read_heavy_direct, repeats=read_repeats)
    read_coalescer = coalescer_box[-1]

    # -- mixed phase: concurrent reads with rare premise toggles ----------
    latencies_box: list[list[float]] = []

    def reset_toggle():
        if toggle in session.dependencies:
            session.retract(toggle)

    def mixed_phase():
        latencies: list[float] = []
        latencies_box.append(latencies)

        async def main():
            coalescer = Coalescer(session)
            op_counter = [0]

            async def client(offset: int):
                for i in range(MIX_OPS):
                    op = op_counter[0]
                    op_counter[0] += 1
                    if op % MUTATE_EVERY == MUTATE_EVERY - 1:
                        coalescer.barrier()
                        if toggle in session.dependencies:
                            session.retract(toggle)
                        else:
                            session.add(toggle)
                        await asyncio.sleep(0)
                    else:
                        start = time.perf_counter()
                        await coalescer.submit(
                            texts[(offset + i) % len(texts)]
                        )
                        latencies.append(time.perf_counter() - start)

            await asyncio.gather(
                *(client(offset) for offset in range(MIX_CLIENTS))
            )

        asyncio.run(main())

    mixed_ops = MIX_CLIENTS * MIX_OPS
    mixed_seconds = best_seconds(
        mixed_phase, repeats=min(repeats, 5), setup=reset_toggle
    )
    latencies = sorted(latencies_box[-1])
    reset_toggle()

    # -- LRU evidence: identical tenants share one compile ----------------
    registry = TenantRegistry()
    first = registry.create("bench-a", schema, premises)
    first.session.implies_all(pool)
    shared_compiles = first.session.index.reach_index.compiles
    second = registry.create("bench-b", schema, premises)
    second.session.implies_all(pool)
    adopted_recompiles = (
        second.session.index.reach_index.compiles - shared_compiles
    )

    return WorkloadResult(
        name="serving_mixed",
        seconds=mixed_seconds,
        ops=mixed_ops,
        meta={
            "premises": len(premises),
            "pool": len(texts),
            "read_clients": READ_CLIENTS,
            "reads_per_client": READS,
            "mixed_clients": MIX_CLIENTS,
            "ops_per_client": MIX_OPS,
            "mutate_every": MUTATE_EVERY,
            "direct_seconds": direct_seconds,
            "coalesced_seconds": coalesced_seconds,
            "speedup_read_heavy": direct_seconds / coalesced_seconds,
            "read_batches": read_coalescer.batches,
            "read_unique_decides": read_coalescer.unique_decides,
            "read_deduplicated": read_coalescer.deduplicated,
            "p50_ms": _percentile(latencies, 0.50) * 1e3,
            "p95_ms": _percentile(latencies, 0.95) * 1e3,
            "p99_ms": _percentile(latencies, 0.99) * 1e3,
            "lru_hits": registry.artifacts.stats()["hits"],
            "second_tenant_shared": second.shared_artifacts,
            "shared_compiles": shared_compiles,
            "adopted_recompiles": adopted_recompiles,
        },
    )


OBS_OVERHEAD_BUDGET = 0.05
"""Max fractional slowdown full per-request tracing+metrics may add
to the coalesced serving path (the acceptance bound for the
observability layer riding along on every request)."""


def bench_observability_overhead(
    repeats: int = DEFAULT_REPEATS,
) -> WorkloadResult:
    """What per-request observability costs, against what a request costs.

    Two measurements, one budget:

    * **Instrumentation cost** — the identical read-heavy coalesced
      stream (``serving_mixed``'s shape) driven twice against one warm
      session: *bare*, the way the other workloads drive the coalescer
      (every instrumentation site takes its ``trace is None``
      early-out), and *traced*, paying everything a traced server
      request pays — a :class:`~repro.obs.tracing.Trace` per request,
      coalescer payer/waiter span attribution, batch-size and
      per-request latency histograms, and the finished trace recorded
      into a :class:`~repro.obs.tracing.TraceRing`.  The per-request
      difference of the two best-of-N minima is the pure added cost,
      measured free of HTTP and scheduler noise.
    * **Request cost** — the same target stream served over real HTTP
      by a :class:`BackgroundServer` (parse, dispatch, coalesce,
      respond): the denominator an "overhead" claim is honestly made
      against.

    The recorded ``overhead_fraction`` — added seconds per traced
    request over seconds per served request — must stay under
    :data:`OBS_OVERHEAD_BUDGET`, asserted here so an instrumentation
    path that grows a hot-path cost fails the bench run loudly.  The
    ``?trace=1`` *echo* (building and shipping the waterfall JSON) is
    a per-request debug readout, not always-on overhead; its measured
    fraction rides along in ``trace_echo_fraction``.
    """
    from repro.obs import MetricsRegistry, Trace, TraceRing
    from repro.serve import BackgroundServer
    from repro.serve.client import ServeClient
    from repro.serve.coalescer import _BATCH_SIZE_BUCKETS, Coalescer

    schema, premises, pool = serving_workload()
    texts = [str(target) for target in pool]
    session = ReasoningSession(schema, premises)
    session.implies_all(pool)  # compile every component once

    CLIENTS, READS = 48, 40
    HOT_PHASES = 4
    HTTP_READS = 200

    # -- instrumentation cost: bare vs fully traced coalesced stream ------
    def run_stream(coalescer_factory, on_request):
        async def main():
            coalescer = coalescer_factory()

            async def client(offset: int):
                phase = offset % HOT_PHASES
                for i in range(READS):
                    await on_request(
                        coalescer, texts[(phase + i) % len(texts)]
                    )

            await asyncio.gather(
                *(client(offset) for offset in range(CLIENTS))
            )

        asyncio.run(main())

    async def bare_request(coalescer, text):
        await coalescer.submit(text)

    metrics = MetricsRegistry()
    ring = TraceRing()
    latency = metrics.histogram("repro_request_seconds", op="implies")
    batch_sizes = metrics.histogram(
        "repro_coalescer_batch_size", buckets=_BATCH_SIZE_BUCKETS
    )

    async def traced_request(coalescer, text):
        trace = Trace()
        start = time.perf_counter()
        await coalescer.submit(text, trace=trace)
        latency.observe(time.perf_counter() - start)
        ring.record(trace)

    phase_repeats = min(repeats, 5)
    requests = CLIENTS * READS
    bare_seconds = best_seconds(
        lambda: run_stream(lambda: Coalescer(session), bare_request),
        repeats=phase_repeats,
    )
    traced_seconds = best_seconds(
        lambda: run_stream(
            lambda: Coalescer(session, batch_sizes=batch_sizes),
            traced_request,
        ),
        repeats=phase_repeats,
    )
    added_per_request = (traced_seconds - bare_seconds) / requests

    # -- request cost: the same stream over real HTTP ---------------------
    bundle = {
        "schema": {rel.name: list(rel.attributes) for rel in schema},
        "dependencies": [str(dep) for dep in premises],
    }
    with BackgroundServer() as node:
        http = ServeClient(port=node.port)
        http.create_tenant("bench", bundle)
        http.implies_all("bench", texts)

        def drive_http(suffix: str = ""):
            path = f"/tenants/bench/implies{suffix}"
            for i in range(HTTP_READS):
                http.request(
                    "POST", path, {"target": texts[i % len(texts)]}
                )

        drive_http()  # warm the connection and both code paths
        http_repeats = max(1, min(repeats, 3))
        served_seconds = best_seconds(drive_http, repeats=http_repeats)
        echo_seconds = best_seconds(
            lambda: drive_http("?trace=1"), repeats=http_repeats
        )
        http.close()

    per_served_request = served_seconds / HTTP_READS
    overhead = added_per_request / per_served_request
    assert overhead < OBS_OVERHEAD_BUDGET, (
        f"observability adds {added_per_request*1e6:.2f}us per request "
        f"= {overhead:.1%} of a {per_served_request*1e6:.1f}us served "
        f"request, exceeding the {OBS_OVERHEAD_BUDGET:.0%} budget"
    )
    return WorkloadResult(
        name="observability_overhead",
        seconds=traced_seconds,
        ops=requests,
        meta={
            "premises": len(premises),
            "pool": len(texts),
            "clients": CLIENTS,
            "reads_per_client": READS,
            "bare_seconds": bare_seconds,
            "traced_seconds": traced_seconds,
            "added_us_per_request": added_per_request * 1e6,
            "served_request_us": per_served_request * 1e6,
            "overhead_fraction": overhead,
            "overhead_budget": OBS_OVERHEAD_BUDGET,
            "trace_echo_fraction": echo_seconds / served_seconds - 1.0,
            "latency_observations": latency.count,
            "batches_observed": batch_sizes.count,
            "traces_recorded": ring.recorded,
        },
    )


def bench_cold_start_recovery(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    """Snapshot-plus-tail boot versus full mutation-history replay.

    Setup (outside the clock): a durable tenant is created in a
    temporary ``--state-dir`` and fed a long add/retract mutation
    history (premise toggles — the live-reconfiguration shape), so its
    on-disk state is one checkpoint plus a short WAL tail — exactly
    what a crashed server leaves behind.  The measured *recovery* path
    is what ``repro serve --state-dir`` does on boot: open the state
    dir, rebuild the session from the snapshot bundle, verify its
    ``premise_hash``, replay the bounded tail, and answer the probe
    pool.  The *rebuild* reference reconstructs identical state the
    only way available without checkpoints: load the original bundle
    and re-apply the entire mutation history one version bump at a
    time, then answer the same probes.  Checkpointing is what makes
    boot cost proportional to ``snapshot_every``, not to the history.
    """
    import shutil
    import tempfile

    from repro.io import bundle_from_payload, patch_from_payload
    from repro.serve.registry import TenantRegistry
    from repro.serve.wal import StateDir

    schema, premises, pool = serving_workload()
    SNAPSHOT_EVERY = 16
    toggles = [
        IND("QUIET", ("A",), f"R{i}", ("A",)) for i in range(50)
    ]
    mutation_log = []
    for _round in range(10):
        for dep in toggles:
            mutation_log.append(("add", str(dep)))
            mutation_log.append(("retract", str(dep)))
    MUTATIONS = len(mutation_log)
    base_bundle = {
        "schema": {rel.name: list(rel.attributes) for rel in schema},
        "dependencies": [str(dep) for dep in premises],
    }

    root = tempfile.mkdtemp(prefix="repro-bench-coldstart-")
    try:
        state = StateDir(root, snapshot_every=SNAPSHOT_EVERY)
        registry = TenantRegistry(state_dir=state)
        tenant = registry.create("bench", schema, premises)
        for kind, dep in mutation_log:
            tenant.mutate(kind, [dep])
        tail_records = tenant.store.stats()["appends_since_snapshot"]
        snapshots = tenant.store.stats()["snapshots"]
        expected_hash = tenant.session.premise_hash
        registry.close()

        recovered_box: list[TenantRegistry] = []

        def recover_boot():
            reg = TenantRegistry(
                state_dir=StateDir(root, snapshot_every=SNAPSHOT_EVERY)
            )
            recovered_box.append(reg)
            reg.get("bench").session.implies_all(pool)
            reg.close()

        def full_rebuild():
            loaded_schema, deps, db = bundle_from_payload(base_bundle)
            session = ReasoningSession(loaded_schema, deps, db=db)
            for kind, dep in mutation_log:
                add, retract = patch_from_payload(
                    {kind: [dep]}, loaded_schema
                )
                if retract:
                    session.retract(retract)
                if add:
                    session.add(add)
            session.implies_all(pool)

        boot_repeats = min(repeats, 5)
        recover_seconds = best_seconds(recover_boot, repeats=boot_repeats)
        rebuild_seconds = best_seconds(full_rebuild, repeats=boot_repeats)

        recovered = recovered_box[-1].get("bench").session
        assert recovered.premise_hash == expected_hash
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return WorkloadResult(
        name="cold_start_recovery",
        seconds=recover_seconds,
        ops=1,
        meta={
            "premises": len(premises),
            "mutations": MUTATIONS,
            "snapshot_every": SNAPSHOT_EVERY,
            "snapshots_taken": snapshots,
            "tail_records_replayed": tail_records,
            "probe_pool": len(pool),
            "rebuild_seconds": rebuild_seconds,
            "speedup_vs_full_rebuild": rebuild_seconds / recover_seconds,
        },
    )


def bench_replicated_serving(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    """Follower read scale-out and failover-to-first-answer time.

    Three blocking clients drive ``implies_all`` batches against real
    HTTP servers twice: every client pinned to the lone primary, then
    one client per node across the primary and two snapshot-bootstrapped
    followers.  Every node arms ``latency:hold`` (see
    :mod:`repro.serve.faults`): each request *occupies its node's
    serving loop* for a fixed service time, the way handler compute
    does in production, so one node is a genuine throughput ceiling
    and the recorded ``read_speedup`` measures what replication buys —
    the same requests spread over three loops that wait concurrently —
    independent of how many cores this machine happens to have (the
    real-compute share of each request still runs, and still contends,
    which is why the speedup lands below the 3x ideal).

    The failover phase runs on a separate unfaulted pair: a follower
    heartbeating at 50ms with ``failover_after=2``, a
    :class:`FailoverClient` over both endpoints, and a clock started
    the moment the primary stops — ``failover_ms`` is the gap until
    the client's next mutation is acknowledged by the promoted
    follower (detection + promotion + client re-resolution).
    """
    import threading

    from repro.serve import BackgroundServer, FailoverClient, FaultInjector
    from repro.serve.client import ServeClient
    from repro.serve.faults import LATENCY

    schema, premises, pool = serving_workload()
    bundle = {
        "schema": {rel.name: list(rel.attributes) for rel in schema},
        "dependencies": [str(dep) for dep in premises],
    }
    texts = [str(target) for target in pool]

    CLIENTS, READS = 3, 30
    SERVICE_MS = 10.0
    FOLLOWERS = 2

    def hold_faults() -> FaultInjector:
        return FaultInjector(f"{LATENCY}:hold", latency_ms=SERVICE_MS)

    def await_bootstrap(node: BackgroundServer, budget: float = 30.0) -> None:
        deadline = time.monotonic() + budget
        while "bench" not in node.server.registry.tenants:
            if time.monotonic() > deadline:
                raise RuntimeError("follower bootstrap timed out")
            time.sleep(0.02)

    primary = BackgroundServer(faults=hold_faults()).start()
    followers: list[BackgroundServer] = []
    try:
        ServeClient(port=primary.port).create_tenant("bench", bundle)
        for _ in range(FOLLOWERS):
            followers.append(
                BackgroundServer(
                    replica_of=f"127.0.0.1:{primary.port}",
                    heartbeat=0.1,
                    failover_after=0,  # read replicas; never promote
                    faults=hold_faults(),
                ).start()
            )
        for node in followers:
            await_bootstrap(node)
        ports = [primary.port] + [node.port for node in followers]
        for port in ports:  # compile every component, outside the clock
            with ServeClient(port=port) as warm:
                warm.implies_all("bench", texts)

        def drive(targets_ports: list[int]) -> None:
            def client(port: int) -> None:
                with ServeClient(port=port) as reader:
                    for _ in range(READS):
                        reader.implies_all("bench", texts)

            threads = [
                threading.Thread(
                    target=client,
                    args=(targets_ports[i % len(targets_ports)],),
                )
                for i in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        phase_repeats = max(1, min(repeats, 3))
        single_seconds = best_seconds(
            lambda: drive([primary.port]), repeats=phase_repeats
        )
        fleet_seconds = best_seconds(
            lambda: drive(ports), repeats=phase_repeats
        )
    finally:
        for node in followers:
            node.stop()
        primary.stop()

    # -- failover-to-first-answer, on an unfaulted pair -------------------
    failover_primary = BackgroundServer().start()
    follower = None
    try:
        ServeClient(port=failover_primary.port).create_tenant(
            "bench", bundle
        )
        follower = BackgroundServer(
            replica_of=f"127.0.0.1:{failover_primary.port}",
            heartbeat=0.05,
            failover_after=2,
        ).start()
        await_bootstrap(follower)
        fleet = FailoverClient(
            [
                f"127.0.0.1:{failover_primary.port}",
                f"127.0.0.1:{follower.port}",
            ],
            failover_timeout=30.0,
            poll_interval=0.02,
        )
        fleet.add("bench", ["QUIET[A] <= R0[A]"])  # warm, lands on primary
        failover_primary.stop()  # the primary vanishes
        failover_start = time.perf_counter()
        acked = fleet.retract("bench", ["QUIET[A] <= R0[A]"])
        failover_seconds = time.perf_counter() - failover_start
        promoted_term = follower.server.registry.term
        assert "idempotent_replay" not in acked
        assert follower.server.role == "primary"
        fleet.close()
    finally:
        if follower is not None:
            follower.stop()
        failover_primary.stop()

    reads = CLIENTS * READS
    return WorkloadResult(
        name="replicated_serving",
        seconds=fleet_seconds,
        ops=reads,
        meta={
            "premises": len(premises),
            "batch_targets": len(texts),
            "clients": CLIENTS,
            "reads_per_client": READS,
            "followers": FOLLOWERS,
            "service_ms": SERVICE_MS,
            "cores": os.cpu_count(),
            "single_node_seconds": single_seconds,
            "fleet_seconds": fleet_seconds,
            "read_speedup": single_seconds / fleet_seconds,
            "failover_heartbeat_s": 0.05,
            "failover_after": 2,
            "failover_ms": failover_seconds * 1e3,
            "promoted_term": promoted_term,
        },
    )


WORKLOADS: dict[str, Callable[[int], WorkloadResult]] = {
    "single_decide": bench_single_decide,
    "batch_implies_all": bench_batch_implies_all,
    "chase_fixpoint": bench_chase_fixpoint,
    "incremental_add_requery": bench_incremental_add_requery,
    "repeated_decide_hot": bench_repeated_decide_hot,
    "implies_all_grouped": bench_implies_all_grouped,
    "discovery_mine": bench_discovery_mine,
    "serving_mixed": bench_serving_mixed,
    "observability_overhead": bench_observability_overhead,
    "cold_start_recovery": bench_cold_start_recovery,
    "replicated_serving": bench_replicated_serving,
}

DECISION_WORKLOADS = ("single_decide", "repeated_decide_hot")
"""The workloads whose regressions the CI gate treats as blocking
(the chase workload stays advisory — shared runners are too noisy for
a multi-millisecond fixpoint to gate merges)."""


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def run_benchmarks(
    names: Optional[Iterable[str]] = None,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Run the named workloads (all, by default) into a report dict."""
    selected = list(names) if names else list(WORKLOADS)
    unknown = [name for name in selected if name not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {unknown}; available: {sorted(WORKLOADS)}"
        )
    results = {name: WORKLOADS[name](repeats) for name in selected}
    return {
        "suite": SUITE,
        "schema_version": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "repeats": repeats,
        "calibration_seconds": calibrate(),
        "workloads": {name: result.to_json() for name, result in results.items()},
    }


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")


def load_report(path: str) -> Union[dict, list]:
    """A recorded report (dict) or a trajectory history (list)."""
    with open(path, encoding="utf-8") as fp:
        return json.load(fp)


def git_commit(default: str = "unknown") -> str:
    """The current short commit hash, for trajectory entries."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else default


def trajectory_entry(report: dict, commit: Optional[str] = None) -> dict:
    """One committed-history entry distilled from a report."""
    return {
        "commit": commit if commit is not None else git_commit(),
        "created": report.get("created"),
        "suite": report.get("suite"),
        "calibration_seconds": report.get("calibration_seconds"),
        "workloads": report.get("workloads", {}),
    }


def append_trajectory(
    report: dict, path: str, commit: Optional[str] = None
) -> list[dict]:
    """Append this run to the trajectory file (created if missing).

    Every recorded run lands in the history — regressions included;
    the gate decides what blocks, the trajectory just remembers —
    which is what lets future PRs read a perf *trend* instead of a
    single overwritten snapshot.
    """
    entries: list[dict] = []
    if os.path.exists(path):
        loaded = load_report(path)
        if not isinstance(loaded, list):
            raise ValueError(
                f"{path} is not a trajectory (expected a JSON list)"
            )
        entries = loaded
    entries.append(trajectory_entry(report, commit))
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(entries, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return entries


def baseline_from(data: Union[dict, list]) -> dict:
    """A report-shaped baseline from a report or a trajectory history.

    A trajectory contributes its *last* entry — every entry carries
    ``calibration_seconds`` and ``workloads``, which is all
    :func:`compare_reports` reads — so the gate always compares
    against the most recently recorded run.
    """
    if isinstance(data, list):
        if not data:
            raise ValueError("empty trajectory has no baseline entry")
        return data[-1]
    return data


@dataclass
class Regression:
    """One workload that got slower than the baseline allows."""

    workload: str
    baseline_seconds: float
    current_seconds: float

    @property
    def ratio(self) -> float:
        return self.current_seconds / self.baseline_seconds

    def __str__(self) -> str:
        return (
            f"{self.workload}: {self.current_seconds*1e3:.2f}ms vs baseline "
            f"{self.baseline_seconds*1e3:.2f}ms ({self.ratio:.2f}x)"
        )


def compare_reports(
    current: dict, baseline: dict, threshold: float = 0.25
) -> list[Regression]:
    """Workloads in ``current`` slower than baseline by > ``threshold``.

    When both reports carry ``calibration_seconds``, the baseline is
    first rescaled to the current machine's speed (see
    :func:`calibrate`), so a faster or slower host does not register
    as a perf change.  Workloads absent from either report are skipped
    (adding a workload must not fail the comparison that introduced
    it).
    """
    scale = 1.0
    current_cal = current.get("calibration_seconds")
    baseline_cal = baseline.get("calibration_seconds")
    if current_cal and baseline_cal:
        scale = current_cal / baseline_cal
    regressions = []
    base_workloads = baseline.get("workloads", {})
    for name, entry in current.get("workloads", {}).items():
        base = base_workloads.get(name)
        if base is None:
            continue
        rescaled = base["seconds"] * scale
        if entry["seconds"] > rescaled * (1.0 + threshold):
            regressions.append(Regression(name, rescaled, entry["seconds"]))
    return regressions


def format_report(report: dict) -> str:
    """The human-readable table ``repro bench`` prints."""
    lines = [f"suite {report['suite']} (repeats={report.get('repeats', '?')})"]
    width = max(len(name) for name in report["workloads"]) if report["workloads"] else 0
    for name, entry in report["workloads"].items():
        extras = ""
        references = (
            ("speedup_vs_naive", "vs naive"),
            ("speedup_vs_bfs", "vs per-query BFS"),
            ("speedup_vs_validate_all", "vs validate-everything"),
            ("speedup_read_heavy", "vs per-request dispatch"),
            ("read_speedup", "vs single node"),
        )
        for key, label in references:
            speedup = entry["meta"].get(key)
            if speedup is not None:
                extras = f"  {speedup:.1f}x {label}"
                break
        lines.append(
            f"  {name:<{width}}  {entry['seconds']*1e3:9.2f}ms  "
            f"{entry['ops_per_sec']:12.1f} ops/s{extras}"
        )
    return "\n".join(lines)
