"""The recorded benchmark harness behind ``repro bench``.

Runs named workloads over the three decision engines and writes a
``BENCH_*.json`` report — the repo's performance trajectory.  Each
workload times the *kernel/semi-naive* production path and, where a
retained naive reference exists, the reference too, so the recorded
speedup is measured against real code in the same process, not a
remembered number.

Workloads (all deterministic, seeded):

* ``single_decide`` — one Corollary 3.2 decision over a 500-premise,
  100-relation chain+noise workload, premises pre-compiled (the
  steady-state serving shape).  Reference: :func:`decide_ind_naive`.
* ``batch_implies_all`` — a 39-target ``implies_all`` batch on a fresh
  session (cold caches; indexing outside the clock).
* ``chase_fixpoint`` — FD+IND chase to fixpoint on a 40-relation chain
  ordered adversarially (one propagation hop per round).  Reference:
  the naive rescan strategy.
* ``incremental_add_requery`` — premise ``add`` plus batch re-query on
  a warmed session (the PR 2 lifecycle path).

The report format is one JSON object::

    {"suite": "...", "schema_version": 1, "created": "...",
     "calibration_seconds": c,
     "workloads": {name: {"seconds": s, "ops_per_sec": r, "meta": {...}}}}

``seconds`` is the best wall-time of one timed repetition and is
what :func:`compare_reports` checks against a committed baseline (a
workload regresses when its ``seconds`` grows more than ``threshold``
relative); ``meta`` carries workload sizes and measured naive/kernel
speedups for human trend-reading.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, Iterable, Optional

from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.session import ReasoningSession
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.core.fdind_chase import ChaseEngine, ChaseInstance
from repro.core.ind_decision import decide_ind, decide_ind_naive, index_by_lhs
from repro.core.ind_kernel import KernelIndex

SCHEMA_VERSION = 1
SUITE = "e17-kernels"
DEFAULT_REPEATS = 15

SEED = 19841982
"""One seed for every workload: reports are comparable across runs."""


def best_seconds(
    fn: Callable[[], object],
    repeats: int = DEFAULT_REPEATS,
    setup: Optional[Callable[[], object]] = None,
) -> float:
    """Best (minimum) wall-clock of ``fn`` over ``repeats`` runs.

    The minimum is the stablest point estimate for sub-millisecond
    workloads — every slower sample is the same code plus scheduler or
    allocator noise — which is what a cross-run regression gate needs.
    ``setup`` runs outside the clock.
    """
    best = float("inf")
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def calibrate(repeats: int = 5) -> float:
    """Best wall-time of a fixed pure-Python spin loop.

    Recorded into every report as ``calibration_seconds`` and used by
    :func:`compare_reports` to normalize away machine speed: a report
    recorded on a laptop and one recorded on a throttled CI runner
    disagree on every absolute time but agree on time *relative to the
    spin loop*, which is what a cross-run regression gate needs.
    """
    def spin():
        total = 0
        for i in range(200_000):
            total += i * i
        return total

    return best_seconds(spin, repeats=repeats)


@dataclass
class WorkloadResult:
    """One workload's recorded measurement."""

    name: str
    seconds: float
    ops: int
    meta: dict = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.seconds if self.seconds > 0 else float("inf")

    def to_json(self) -> dict:
        return {
            "seconds": self.seconds,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec,
            "meta": self.meta,
        }


# ---------------------------------------------------------------------------
# Workload fixtures
# ---------------------------------------------------------------------------


def decision_workload():
    """500 premises over 100 chained relations plus a quiet target.

    The chain keeps the reachable expression set deep; the seeded
    noise keeps the buckets busy.  The target is *not* implied, so a
    decision explores the whole reachable set — the worst, and most
    stable, case for the BFS.
    """
    from repro.workloads.random_deps import random_inds

    rng = random.Random(SEED)
    relations = 100
    schema = DatabaseSchema(
        [RelationSchema(f"R{i}", ("A", "B", "C")) for i in range(relations)]
        + [RelationSchema("QUIET", ("A", "B"))]
    )
    chain = [
        IND(f"R{i}", ("A", "B"), f"R{i+1}", ("A", "B"))
        for i in range(relations - 1)
    ]
    busy = DatabaseSchema(
        RelationSchema(f"R{i}", ("A", "B", "C")) for i in range(relations)
    )
    noise = random_inds(rng, busy, count=500 - len(chain), max_arity=2)
    premises = chain + noise
    target = IND("R0", ("A",), "QUIET", ("A",))
    targets = [
        IND("R0", ("A",), f"R{i}", ("A",)) for i in range(1, 40)
    ]
    return schema, premises, target, targets


def chase_workload():
    """A 40-relation chain ordered against the application order.

    Each round propagates the frontier exactly one hop, so the run
    takes ~40 rounds — the regime where per-round rescans dominate the
    naive engine.
    """
    relations = 40
    schema = DatabaseSchema(
        [RelationSchema(f"R{i}", ("A", "B")) for i in range(relations)]
    )
    deps = [
        IND(f"R{i}", ("A", "B"), f"R{i+1}", ("A", "B"))
        for i in reversed(range(relations - 1))
    ]
    deps += [FD(f"R{i}", ("A",), ("B",)) for i in range(relations)]

    def build_instance() -> ChaseInstance:
        instance = ChaseInstance(schema)
        values = [instance.fresh_null() for _ in range(6)]
        instance.add_row("R0", [values[0], values[1]])
        instance.add_row("R0", [values[2], values[3]])
        instance.add_row("R0", [values[0], values[4]])
        return instance

    return schema, deps, build_instance


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def bench_single_decide(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    schema, premises, target, _targets = decision_workload()
    kernels = KernelIndex(premises)
    naive_index = index_by_lhs(premises)
    decide_ind(target, kernels)  # warm the kernel edge memos

    # One decision is a few hundred microseconds; a sample of several
    # keeps the recorded per-op time out of timer-noise territory.
    inner = 10

    def kernel_sample():
        for _ in range(inner):
            decide_ind(target, kernels)

    def naive_sample():
        for _ in range(inner):
            decide_ind_naive(target, naive_index)

    kernel_seconds = best_seconds(kernel_sample, repeats=repeats) / inner
    naive_seconds = best_seconds(naive_sample, repeats=repeats) / inner
    explored = decide_ind(target, kernels).explored
    return WorkloadResult(
        name="single_decide",
        seconds=kernel_seconds,
        ops=1,
        meta={
            "premises": len(premises),
            "explored": explored,
            "naive_seconds": naive_seconds,
            "speedup_vs_naive": naive_seconds / kernel_seconds,
        },
    )


def bench_batch_implies_all(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    schema, premises, _target, targets = decision_workload()
    session_box: list[ReasoningSession] = []

    def setup():
        session_box.clear()
        session_box.append(ReasoningSession(schema, premises))

    seconds = best_seconds(
        lambda: session_box[0].implies_all(targets),
        repeats=repeats,
        setup=setup,
    )
    return WorkloadResult(
        name="batch_implies_all",
        seconds=seconds,
        ops=len(targets),
        meta={"premises": len(premises), "targets": len(targets)},
    )


def bench_chase_fixpoint(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    schema, deps, build_instance = chase_workload()
    semi = ChaseEngine(schema, deps, strategy="semi-naive")
    naive = ChaseEngine(schema, deps, strategy="naive")

    semi_seconds = best_seconds(
        lambda: semi.run(build_instance()), repeats=repeats
    )
    naive_seconds = best_seconds(
        lambda: naive.run(build_instance()), repeats=repeats
    )
    outcome = semi.run(build_instance())
    return WorkloadResult(
        name="chase_fixpoint",
        seconds=semi_seconds,
        ops=1,
        meta={
            "dependencies": len(deps),
            "rounds": outcome.rounds,
            "tuples": outcome.instance.total_tuples(),
            "rows_scanned": outcome.rows_scanned,
            "naive_seconds": naive_seconds,
            "speedup_vs_naive": naive_seconds / semi_seconds,
        },
    )


def bench_incremental_add_requery(repeats: int = DEFAULT_REPEATS) -> WorkloadResult:
    schema, premises, _target, targets = decision_workload()
    schema = schema.extended_with(RelationSchema("QUIET2", ("A", "B")))
    session = ReasoningSession(schema, premises)
    session.implies_all(targets)  # warm the exploration cache
    quiet = IND("QUIET", ("A",), "QUIET2", ("A",))

    def setup():
        if quiet in session.dependencies:
            session.retract(quiet)

    def add_and_requery():
        session.add(quiet)
        return session.implies_all(targets)

    seconds = best_seconds(add_and_requery, repeats=repeats, setup=setup)
    return WorkloadResult(
        name="incremental_add_requery",
        seconds=seconds,
        ops=len(targets),
        meta={"premises": len(premises), "targets": len(targets)},
    )


WORKLOADS: dict[str, Callable[[int], WorkloadResult]] = {
    "single_decide": bench_single_decide,
    "batch_implies_all": bench_batch_implies_all,
    "chase_fixpoint": bench_chase_fixpoint,
    "incremental_add_requery": bench_incremental_add_requery,
}


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def run_benchmarks(
    names: Optional[Iterable[str]] = None,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Run the named workloads (all, by default) into a report dict."""
    selected = list(names) if names else list(WORKLOADS)
    unknown = [name for name in selected if name not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {unknown}; available: {sorted(WORKLOADS)}"
        )
    results = {name: WORKLOADS[name](repeats) for name in selected}
    return {
        "suite": SUITE,
        "schema_version": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "repeats": repeats,
        "calibration_seconds": calibrate(),
        "workloads": {name: result.to_json() for name, result in results.items()},
    }


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fp:
        return json.load(fp)


@dataclass
class Regression:
    """One workload that got slower than the baseline allows."""

    workload: str
    baseline_seconds: float
    current_seconds: float

    @property
    def ratio(self) -> float:
        return self.current_seconds / self.baseline_seconds

    def __str__(self) -> str:
        return (
            f"{self.workload}: {self.current_seconds*1e3:.2f}ms vs baseline "
            f"{self.baseline_seconds*1e3:.2f}ms ({self.ratio:.2f}x)"
        )


def compare_reports(
    current: dict, baseline: dict, threshold: float = 0.25
) -> list[Regression]:
    """Workloads in ``current`` slower than baseline by > ``threshold``.

    When both reports carry ``calibration_seconds``, the baseline is
    first rescaled to the current machine's speed (see
    :func:`calibrate`), so a faster or slower host does not register
    as a perf change.  Workloads absent from either report are skipped
    (adding a workload must not fail the comparison that introduced
    it).
    """
    scale = 1.0
    current_cal = current.get("calibration_seconds")
    baseline_cal = baseline.get("calibration_seconds")
    if current_cal and baseline_cal:
        scale = current_cal / baseline_cal
    regressions = []
    base_workloads = baseline.get("workloads", {})
    for name, entry in current.get("workloads", {}).items():
        base = base_workloads.get(name)
        if base is None:
            continue
        rescaled = base["seconds"] * scale
        if entry["seconds"] > rescaled * (1.0 + threshold):
            regressions.append(Regression(name, rescaled, entry["seconds"]))
    return regressions


def format_report(report: dict) -> str:
    """The human-readable table ``repro bench`` prints."""
    lines = [f"suite {report['suite']} (repeats={report.get('repeats', '?')})"]
    width = max(len(name) for name in report["workloads"]) if report["workloads"] else 0
    for name, entry in report["workloads"].items():
        extras = ""
        speedup = entry["meta"].get("speedup_vs_naive")
        if speedup is not None:
            extras = f"  {speedup:.1f}x vs naive"
        lines.append(
            f"  {name:<{width}}  {entry['seconds']*1e3:9.2f}ms  "
            f"{entry['ops_per_sec']:12.1f} ops/s{extras}"
        )
    return "\n".join(lines)
