"""Permutations, Landau's function, and the superpolynomial example.

Section 3 shows the naive Corollary 3.2 procedure needs
superpolynomially many steps: encode a permutation ``gamma`` of
``1..m`` as the IND ``sigma(gamma) = R[A1..Am] c R[Agamma(1)..Agamma(m)]``;
then deciding ``sigma(gamma) |= sigma(gamma^(f(m)-1))`` takes
``f(m) - 1`` applications of step (2), where ``f(m)`` is Landau's
function (the maximal order of a permutation of ``1..m``), and
``log f(m) ~ sqrt(m log m)`` (Landau 1909).

The same section remarks that *short proofs* nevertheless exist under
the complete axiomatization — realized here as O(log p) proofs of
``sigma(gamma^p)`` by repeated squaring.
"""

from repro.perms.permutation import Permutation
from repro.perms.landau import (
    landau,
    landau_partition,
    landau_witness_permutation,
    log_landau_ratio,
)
from repro.perms.ind_encoding import (
    permutation_ind,
    transposition_generators,
    chain_decision,
    short_proof_of_power,
)

__all__ = [
    "Permutation",
    "landau",
    "landau_partition",
    "landau_witness_permutation",
    "log_landau_ratio",
    "permutation_ind",
    "transposition_generators",
    "chain_decision",
    "short_proof_of_power",
]
