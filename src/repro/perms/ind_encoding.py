"""Permutation INDs: the superpolynomial example of Section 3.

Associate with a permutation ``gamma`` of ``1..m`` the IND

    ``sigma(gamma) = R[A1,...,Am] c R[Agamma(1),...,Agamma(m)]``

over the single scheme ``R[A1..Am]``.  Facts reproduced here:

* the transpositions ``gamma_1..gamma_m`` (swap 1 and i) generate all
  permutations, so ``{sigma(gamma_i)}`` implies *every* IND over
  ``R[A1..Am]`` — which is why the deterministic closure procedure can
  blow up;
* ``sigma(gamma) |= sigma(gamma^p)`` for every ``p``, and the
  Corollary 3.2 procedure needs exactly ``min(p mod f, f - (p mod f))``
  ... no — exactly the chain of length ``p mod order(gamma)`` steps
  when premises are applied one at a time, so choosing
  ``p = order(gamma) - 1 = f(m) - 1`` with a Landau witness forces
  superpolynomially many steps;
* nevertheless *short proofs* of ``sigma(gamma^p)`` exist in the
  axiomatization: O(log p) lines by repeated squaring
  (:func:`short_proof_of_power`), matching the paper's remark that
  this family does not require long proofs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.core.ind_axioms import (
    ByHypothesis,
    ByProjection,
    ByTransitivity,
    Proof,
    ProofStep,
    apply_projection,
    apply_transitivity,
)
from repro.core.ind_decision import DecisionResult, decide_ind
from repro.perms.permutation import Permutation

RELATION = "R"


def attribute(i: int) -> str:
    """Attribute ``A{i}`` (1-based, as in the paper)."""
    return f"A{i}"


def permutation_schema(m: int) -> DatabaseSchema:
    return DatabaseSchema.of(
        RelationSchema(RELATION, tuple(attribute(i) for i in range(1, m + 1)))
    )


def permutation_ind(perm: Permutation) -> IND:
    """``sigma(gamma)``: the IND encoding of a permutation."""
    m = perm.degree
    lhs = tuple(attribute(i) for i in range(1, m + 1))
    rhs = tuple(attribute(perm(i - 1) + 1) for i in range(1, m + 1))
    return IND(RELATION, lhs, RELATION, rhs)


def transposition_generators(m: int) -> list[IND]:
    """``{sigma(gamma_1), ..., sigma(gamma_m)}`` where ``gamma_i``
    swaps 1 and i — a generating set for all permutations, hence for
    all INDs over ``R[A1..Am]``."""
    return [
        permutation_ind(Permutation.transposition(m, 0, i)) for i in range(m)
    ]


@dataclass
class ChainDecisionReport:
    """Cost of deciding ``sigma(gamma) |= sigma(gamma^p)`` naively."""

    m: int
    power: int
    order: int
    decision: DecisionResult

    @property
    def chain_steps(self) -> int:
        """Applications of step (2) (= chain length - 1)."""
        return max(0, self.decision.chain_length - 1)


def chain_decision(perm: Permutation, power: int) -> ChainDecisionReport:
    """Decide ``sigma(gamma) |= sigma(gamma^p)`` with the Corollary 3.2
    BFS and report the chain length.

    With a single premise the expression graph from the start node is a
    path that cycles with period ``order(gamma)``, so the witness chain
    has exactly ``p mod order`` steps — ``f(m) - 1`` for the worst case
    the paper constructs.
    """
    target = permutation_ind(perm ** power)
    decision = decide_ind(target, [permutation_ind(perm)])
    return ChainDecisionReport(
        m=perm.degree, power=power, order=perm.order(), decision=decision
    )


def short_proof_of_power(perm: Permutation, power: int) -> Proof:
    """An O(log p)-line formal proof of ``sigma(gamma^p)`` from
    ``sigma(gamma)`` by repeated squaring.

    Invariant: for accumulated permutations ``rho``, a proof line
    holding ``sigma(rho) = R[A] c R[rho A]``.  Squaring applies IND2 to
    re-index ``sigma(rho)`` by ``rho`` itself (giving
    ``R[rho A] c R[rho^2 A]``) and chains with IND3; mixed powers
    multiply the accumulated square in the same way.
    """
    if power < 1:
        raise ValueError("power must be >= 1")
    premise = permutation_ind(perm)
    steps: list[ProofStep] = [ProofStep(premise, ByHypothesis())]

    def multiply(line_left: int, perm_left: Permutation,
                 line_right: int, perm_right: Permutation) -> tuple[int, Permutation]:
        """From lines proving sigma(left), sigma(right), derive
        sigma(right o left) — first advance ``sigma(right)`` by
        re-indexing with ``left`` (IND2), then compose (IND3)."""
        indices = tuple(perm_left(i) for i in range(perm.degree))
        shifted = apply_projection(steps[line_right].ind, indices)
        steps.append(ProofStep(shifted, ByProjection(line_right, indices)))
        shifted_line = len(steps) - 1
        composed = apply_transitivity(steps[line_left].ind, shifted)
        steps.append(ProofStep(composed, ByTransitivity(line_left, shifted_line)))
        return len(steps) - 1, perm_right @ perm_left

    # Binary exponentiation over proof lines.
    result_line: int | None = None
    result_perm = Permutation.identity(perm.degree)
    base_line, base_perm = 0, perm
    remaining = power
    while remaining:
        if remaining & 1:
            if result_line is None:
                result_line, result_perm = base_line, base_perm
            else:
                result_line, result_perm = multiply(
                    result_line, result_perm, base_line, base_perm
                )
        remaining >>= 1
        if remaining:
            base_line, base_perm = multiply(base_line, base_perm, base_line, base_perm)

    assert result_line is not None
    if result_line != len(steps) - 1:
        # Ensure the conclusion is the final line (a proof must end
        # with its conclusion); re-derive by a no-op projection.
        identity_indices = tuple(range(perm.degree))
        final = apply_projection(steps[result_line].ind, identity_indices)
        steps.append(ProofStep(final, ByProjection(result_line, identity_indices)))
    return Proof([premise], steps)
