"""Permutation algebra (built from scratch; no external deps).

Permutations act on ``{0, ..., m-1}`` and are stored as image tuples:
``perm.image[i]`` is where ``i`` goes.  Composition follows function
notation: ``(f @ g)(i) = f(g(i))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lcm
from typing import Iterable, Iterator

from repro.exceptions import ReproError


@dataclass(frozen=True)
class Permutation:
    """An immutable permutation of ``{0, ..., m-1}``."""

    image: tuple[int, ...]

    def __init__(self, image: Iterable[int]):
        image = tuple(image)
        if sorted(image) != list(range(len(image))):
            raise ReproError(f"not a permutation image: {image}")
        object.__setattr__(self, "image", image)

    # -- constructors -----------------------------------------------------

    @classmethod
    def identity(cls, m: int) -> "Permutation":
        return cls(range(m))

    @classmethod
    def transposition(cls, m: int, i: int, j: int) -> "Permutation":
        """Swap ``i`` and ``j``, fix everything else."""
        image = list(range(m))
        image[i], image[j] = image[j], image[i]
        return cls(image)

    @classmethod
    def from_cycles(cls, m: int, cycles: Iterable[Iterable[int]]) -> "Permutation":
        """Build from disjoint cycles, e.g. ``[(0,1,2), (3,4)]``."""
        image = list(range(m))
        seen: set[int] = set()
        for cycle in cycles:
            cycle = list(cycle)
            for element in cycle:
                if element in seen:
                    raise ReproError(f"element {element} in two cycles")
                seen.add(element)
            for index, element in enumerate(cycle):
                image[element] = cycle[(index + 1) % len(cycle)]
        return cls(image)

    # -- structure --------------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.image)

    def __call__(self, i: int) -> int:
        return self.image[i]

    def __matmul__(self, other: "Permutation") -> "Permutation":
        """Function composition: ``(self @ other)(i) = self(other(i))``."""
        if self.degree != other.degree:
            raise ReproError("cannot compose permutations of different degrees")
        return Permutation(self.image[other.image[i]] for i in range(self.degree))

    def inverse(self) -> "Permutation":
        image = [0] * self.degree
        for i, target in enumerate(self.image):
            image[target] = i
        return Permutation(image)

    def __pow__(self, exponent: int) -> "Permutation":
        """Fast exponentiation; negative exponents via the inverse."""
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Permutation.identity(self.degree)
        base = self
        while exponent:
            if exponent & 1:
                result = result @ base
            base = base @ base
            exponent >>= 1
        return result

    def cycles(self) -> list[tuple[int, ...]]:
        """Disjoint cycle decomposition (including fixed points)."""
        seen: set[int] = set()
        result: list[tuple[int, ...]] = []
        for start in range(self.degree):
            if start in seen:
                continue
            cycle = [start]
            seen.add(start)
            current = self.image[start]
            while current != start:
                cycle.append(current)
                seen.add(current)
                current = self.image[current]
            result.append(tuple(cycle))
        return result

    def cycle_type(self) -> tuple[int, ...]:
        """Sorted cycle lengths (descending)."""
        return tuple(sorted((len(c) for c in self.cycles()), reverse=True))

    def order(self) -> int:
        """The least ``k >= 1`` with ``perm^k = identity`` (lcm of
        cycle lengths)."""
        return lcm(*(len(c) for c in self.cycles()))

    def is_identity(self) -> bool:
        return all(self.image[i] == i for i in range(self.degree))

    def __iter__(self) -> Iterator[int]:
        return iter(self.image)

    def __str__(self) -> str:
        nontrivial = [c for c in self.cycles() if len(c) > 1]
        if not nontrivial:
            return "id"
        return "".join(
            "(" + " ".join(str(e) for e in cycle) + ")" for cycle in nontrivial
        )
