"""Landau's function g(m): the maximal order of a permutation of 1..m.

``g(m)`` equals the maximum of ``lcm`` over all partitions of ``m``,
which is attained by partitions into distinct prime powers (plus
slack).  Landau (1909) proved ``log g(m) ~ sqrt(m log m)``; the paper
uses this to show the naive IND decision procedure needs
superpolynomially many steps.

The computation is a knapsack-style dynamic program over primes: each
prime ``p`` may contribute one part ``p^e``, multiplying the lcm by
``p^e`` at a budget cost of ``p^e``.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.perms.permutation import Permutation


def _primes_up_to(limit: int) -> list[int]:
    """Sieve of Eratosthenes."""
    if limit < 2:
        return []
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    for p in range(2, int(limit**0.5) + 1):
        if sieve[p]:
            sieve[p * p:: p] = bytearray(len(sieve[p * p:: p]))
    return [i for i, flag in enumerate(sieve) if flag]


@lru_cache(maxsize=None)
def _landau_table(m: int) -> tuple[tuple[int, ...], dict]:
    """DP table: best[j] = max lcm achievable with budget j, plus
    reconstruction choices."""
    best = [1] * (m + 1)
    choice: dict[tuple[int, int], int] = {}
    for p in _primes_up_to(m):
        updated = best[:]
        power = p
        while power <= m:
            for budget in range(power, m + 1):
                candidate = best[budget - power] * power
                if candidate > updated[budget]:
                    updated[budget] = candidate
                    choice[(p, budget)] = power
            power *= p
        best = updated
    return tuple(best), choice


def landau(m: int) -> int:
    """``g(m)``: maximal lcm of a partition of ``m``.

    >>> [landau(m) for m in range(1, 11)]
    [1, 2, 3, 4, 6, 6, 12, 15, 20, 30]
    """
    if m < 1:
        return 1
    best, _choice = _landau_table(m)
    return max(best)


def landau_partition(m: int) -> list[int]:
    """A partition of at most ``m`` whose lcm is ``g(m)``.

    Because ``g(m)`` is an lcm of parts not exceeding ``m``, its prime
    factorization consists of prime powers ``p^e <= m``, and those
    prime powers themselves form a partition with total at most ``m``
    achieving lcm ``g(m)``.  So the parts are read straight off the
    factorization of ``g(m)``.
    """
    value = landau(m)
    parts: list[int] = []
    for p in _primes_up_to(m):
        if value % p:
            continue
        power = 1
        while value % p == 0:
            power *= p
            value //= p
        parts.append(power)
    if value != 1:  # pragma: no cover - defensive
        raise RuntimeError(f"unexpected prime factor above m in g({m})")
    if sum(parts) > m:  # pragma: no cover - defensive
        raise RuntimeError(f"Landau partition for {m} exceeds budget: {parts}")
    return sorted(parts, reverse=True)


def landau_witness_permutation(m: int) -> Permutation:
    """A permutation of degree ``m`` whose order is ``g(m)``.

    Built from disjoint cycles whose lengths form the Landau partition
    (relatively prime cycles — Landau's own construction, which the
    paper cites).
    """
    parts = landau_partition(m)
    cycles = []
    next_element = 0
    for part in parts:
        cycles.append(tuple(range(next_element, next_element + part)))
        next_element += part
    perm = Permutation.from_cycles(m, cycles)
    return perm


def log_landau_ratio(m: int) -> float:
    """``log g(m) / sqrt(m log m)`` — tends to 1 as m grows (Landau)."""
    if m < 2:
        return 0.0
    return math.log(landau(m)) / math.sqrt(m * math.log(m))
