"""Exception hierarchy for the ``repro`` library.

Every error raised by the library is a subclass of :class:`ReproError`,
so callers can catch library failures with a single ``except`` clause
while still being able to distinguish schema problems from proof
problems, parse problems, and resource-budget problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation scheme, database scheme, or tuple is malformed.

    Examples: duplicate attributes in a relation scheme, a tuple whose
    length does not match the arity of its scheme, or a reference to a
    relation name that the database scheme does not contain.
    """


class DependencyError(ReproError):
    """A dependency is malformed with respect to its schema.

    Examples: an IND whose two sides have different arities, an FD over
    attributes that do not belong to the named relation scheme, or an
    attribute sequence with repetitions where the paper requires
    distinctness.
    """


class ParseError(ReproError):
    """A textual dependency could not be parsed."""


class ProofError(ReproError):
    """A formal proof object failed verification.

    Raised by the independent proof checker when a derivation step does
    not follow from the inference rules IND1-IND3, or when a cited
    hypothesis is not among the premises.
    """


class ChaseBudgetExceeded(ReproError):
    """The chase exceeded its step/tuple budget without converging.

    The implication problem for FDs and INDs taken together is
    undecidable (Mitchell; Chandra & Vardi - both cited in the paper),
    so the general chase is only a semi-decision procedure.  When the
    budget is exhausted the caller must treat the answer as *unknown*,
    and this exception carries the partial state for inspection.
    """

    def __init__(self, message: str, rounds: int = 0, tuples: int = 0):
        super().__init__(message)
        self.rounds = rounds
        self.tuples = tuples


class DeadlineExceeded(ReproError):
    """A cooperative per-request deadline expired mid-computation.

    Long-running engines (the chase round loop, the reach-index
    materialization BFS, the kernel BFS) poll a caller-provided check
    between units of work; when the wall-clock budget runs out the
    check raises this instead of letting an undecidable question hold
    the caller indefinitely.  Serving callers convert it into a
    degraded ``verdict="unknown"`` answer rather than an error.
    """

    def __init__(self, message: str, elapsed: float = 0.0):
        super().__init__(message)
        self.elapsed = elapsed


class SearchBudgetExceeded(ReproError):
    """An exact search (expression-graph BFS, model search) exceeded its
    node budget.

    The decision problem for INDs is PSPACE-complete (Theorem 3.3), so
    worst-case instances are intractable; the budget makes that failure
    mode explicit instead of hanging.
    """

    def __init__(self, message: str, explored: int = 0):
        super().__init__(message)
        self.explored = explored


class UnsupportedDependencyError(ReproError):
    """An engine was handed a dependency class outside its fragment.

    For example, the finite-implication engine for *unary* FDs and INDs
    refuses non-unary input rather than silently giving wrong answers.
    """


class SymbolicLimitationError(ReproError):
    """A symbolic (infinite) relation operation is outside the
    implemented fragment.

    The symbolic relation module implements linear tuple families with
    slopes in {0, 1}, which is exactly what the paper's Figures 4.1 and
    4.2 require.  Anything beyond that raises this error instead of
    risking an unsound answer.
    """
