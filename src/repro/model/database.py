"""Databases: mappings from relation names to relations.

A database over a scheme ``D = {R1[U1],...,Rn[Un]}`` associates each
relation scheme with a finite relation.  Relations not explicitly
given are empty (the paper's constructions rely on this, e.g. the
Rule-(*) database of Theorem 3.1 starts with all relations empty
except one).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from repro.exceptions import SchemaError
from repro.model.relation import Relation, Row
from repro.model.schema import DatabaseSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.deps.base import Dependency


class Database:
    """An immutable database instance over a :class:`DatabaseSchema`."""

    __slots__ = ("schema", "_relations")

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, Relation] | None = None,
    ):
        relations = dict(relations or {})
        by_name: dict[str, Relation] = {}
        for rel_schema in schema:
            given = relations.pop(rel_schema.name, None)
            if given is None:
                by_name[rel_schema.name] = Relation(rel_schema)
            else:
                if given.schema != rel_schema:
                    raise SchemaError(
                        f"relation for {rel_schema.name!r} was built over "
                        f"{given.schema}, expected {rel_schema}"
                    )
                by_name[rel_schema.name] = given
        if relations:
            stray = ", ".join(sorted(relations))
            raise SchemaError(f"relations not in database scheme: {stray}")
        self.schema = schema
        self._relations: Mapping[str, Relation] = by_name

    def relation(self, name: str) -> Relation:
        """The relation stored under ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r} in database") from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.schema == other.schema and dict(self._relations) == dict(other._relations)

    def __hash__(self) -> int:
        return hash((self.schema, frozenset(self._relations.items())))

    def satisfies(self, dependency: "Dependency") -> bool:
        """Whether this database obeys ``dependency``."""
        return dependency.holds_in(self)

    def satisfies_all(self, dependencies: Iterable["Dependency"]) -> bool:
        """Whether this database obeys every dependency given."""
        return all(dep.holds_in(self) for dep in dependencies)

    def violated(self, dependencies: Iterable["Dependency"]) -> list["Dependency"]:
        """The sub-list of ``dependencies`` this database violates."""
        return [dep for dep in dependencies if not dep.holds_in(self)]

    def with_relation(self, relation: Relation) -> "Database":
        """A new database with one relation replaced."""
        updated = dict(self._relations)
        if relation.name not in updated:
            raise SchemaError(f"no relation named {relation.name!r} in database scheme")
        updated[relation.name] = relation
        return Database(self.schema, updated)

    def with_tuples(self, name: str, extra: Iterable[Iterable[Any]]) -> "Database":
        """A new database with ``extra`` tuples added to relation ``name``."""
        return self.with_relation(self.relation(name).with_tuples(extra))

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self)

    def active_domain(self) -> frozenset[Any]:
        """All values occurring anywhere in the database."""
        return frozenset(v for rel in self for row in rel for v in row)

    @property
    def is_finite(self) -> bool:
        """Finite databases are the only kind this class can hold."""
        return True

    def describe(self) -> str:
        """A printable, deterministic rendering of the whole database."""
        parts = []
        for name in sorted(self._relations):
            parts.append(str(self._relations[name]))
        return "\n\n".join(parts)

    def __repr__(self) -> str:
        sizes = {name: len(rel) for name, rel in sorted(self._relations.items())}
        return f"Database({sizes})"


def project(db: Database, name: str, attrs: str | Iterable[str]) -> frozenset[Row]:
    """Convenience: projection ``r[X]`` of the relation named ``name``."""
    return db.relation(name).project(attrs)
