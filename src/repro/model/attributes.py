"""Attribute names and attribute sequences.

Attributes are plain strings.  The paper manipulates *sequences* of
distinct attributes (written ``X``, ``Y``, ... in the paper); this
module provides the helpers that validate and normalize them.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import SchemaError

Attribute = str
AttributeSequence = tuple[str, ...]


def as_attribute_sequence(attrs: str | Iterable[str]) -> AttributeSequence:
    """Normalize ``attrs`` into a tuple of attribute names.

    A plain string is treated as a *single* attribute name (never as an
    iterable of characters, which is a classic Python foot-gun).  Any
    other iterable is converted element-wise.

    >>> as_attribute_sequence("A")
    ('A',)
    >>> as_attribute_sequence(["A", "B"])
    ('A', 'B')
    """
    if isinstance(attrs, str):
        return (attrs,)
    sequence = tuple(attrs)
    for attr in sequence:
        if not isinstance(attr, str):
            raise SchemaError(f"attribute names must be strings, got {attr!r}")
        if not attr:
            raise SchemaError("attribute names must be non-empty strings")
    return sequence


def is_distinct_sequence(attrs: Iterable[str]) -> bool:
    """Return ``True`` when ``attrs`` contains no repeated attribute."""
    sequence = tuple(attrs)
    return len(sequence) == len(set(sequence))


def check_distinct(attrs: Iterable[str], context: str = "attribute sequence") -> AttributeSequence:
    """Validate that ``attrs`` is a sequence of *distinct* attributes.

    The paper requires distinctness on each side of an IND and within
    each side of an FD ("X is a sequence of distinct members of
    A1,...,Am").  Returns the normalized tuple, or raises
    :class:`SchemaError` naming the offending duplicate.
    """
    sequence = as_attribute_sequence(attrs)
    seen: set[str] = set()
    for attr in sequence:
        if attr in seen:
            raise SchemaError(f"duplicate attribute {attr!r} in {context}")
        seen.add(attr)
    return sequence
