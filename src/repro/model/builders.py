"""Convenience constructors for relations and databases.

These keep example scripts and tests terse without weakening the
validation performed by the underlying classes.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.model.database import Database
from repro.model.relation import Relation
from repro.model.schema import DatabaseSchema, RelationSchema


def relation(
    name: str,
    attributes: str | Iterable[str],
    rows: Iterable[Iterable[Any]] = (),
) -> Relation:
    """Build a relation and its scheme in one call.

    >>> r = relation("R", ("A", "B"), [(1, 2), (3, 4)])
    >>> len(r)
    2
    """
    return Relation(RelationSchema(name, attributes), rows)


def database(
    schema: DatabaseSchema | Mapping[str, str | Iterable[str]],
    contents: Mapping[str, Iterable[Iterable[Any]]] | None = None,
) -> Database:
    """Build a database from a scheme spec and per-relation row lists.

    ``schema`` may be a :class:`DatabaseSchema` or a plain mapping like
    ``{"R": ("A", "B")}``.  ``contents`` maps relation names to row
    iterables; omitted relations are empty.

    >>> db = database({"R": ("A", "B")}, {"R": [(1, 2)]})
    >>> len(db["R"])
    1
    """
    if not isinstance(schema, DatabaseSchema):
        schema = DatabaseSchema.from_dict(schema)
    contents = contents or {}
    relations = {
        name: Relation(schema.relation(name), rows) for name, rows in contents.items()
    }
    return Database(schema, relations)
