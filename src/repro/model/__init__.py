"""Relational substrate: schemes, relations, databases.

The paper (Section 2) works with *sequences* of attributes rather than
sets, tuples as sequences of entries, relations as sets of tuples, and
databases as mappings from relation-scheme names to relations.  This
package implements that model exactly, plus a symbolic extension for
the infinite counterexample relations of Section 4.
"""

from repro.model.attributes import (
    as_attribute_sequence,
    check_distinct,
    is_distinct_sequence,
)
from repro.model.database import Database
from repro.model.relation import Relation
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.model.builders import database, relation
from repro.model.symbolic import (
    InfiniteRelation,
    LinearColumn,
    SymbolicDatabase,
    TupleFamily,
    figure_4_1_relation,
    figure_4_2_relation,
)

__all__ = [
    "SymbolicDatabase",
    "as_attribute_sequence",
    "check_distinct",
    "is_distinct_sequence",
    "Database",
    "DatabaseSchema",
    "Relation",
    "RelationSchema",
    "database",
    "relation",
    "InfiniteRelation",
    "LinearColumn",
    "TupleFamily",
    "figure_4_1_relation",
    "figure_4_2_relation",
]
