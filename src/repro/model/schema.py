"""Relation schemes and database schemes (paper, Section 2).

A *relation scheme* is a pair ``(R, U)`` where ``R`` is a name and
``U`` a finite sequence of distinct attributes.  A *database scheme*
is a finite set of relation schemes with distinct names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError
from repro.model.attributes import AttributeSequence, as_attribute_sequence, check_distinct


@dataclass(frozen=True)
class RelationSchema:
    """A named relation scheme ``R[A1,...,Am]``.

    The attribute *order* is significant: tuples are sequences whose
    i-th entry lives in the i-th attribute's column.
    """

    name: str
    attributes: AttributeSequence

    def __init__(self, name: str, attributes: str | Iterable[str]):
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        normalized = check_distinct(
            as_attribute_sequence(attributes), context=f"relation scheme {name}"
        )
        if not normalized:
            raise SchemaError(f"relation scheme {name} must have at least one attribute")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", normalized)

    @property
    def arity(self) -> int:
        """Number of attributes of the scheme."""
        return len(self.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def has_attributes(self, attrs: Iterable[str]) -> bool:
        """Return ``True`` when every attribute in ``attrs`` belongs here."""
        own = set(self.attributes)
        return all(attr in own for attr in as_attribute_sequence(attrs))

    def position(self, attribute: str) -> int:
        """Zero-based column index of ``attribute``.

        Raises :class:`SchemaError` for unknown attributes.
        """
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"attribute {attribute!r} is not in relation scheme {self.name}"
                f"[{', '.join(self.attributes)}]"
            ) from None

    def positions(self, attrs: str | Iterable[str]) -> tuple[int, ...]:
        """Column indices for a sequence of attributes, in order."""
        return tuple(self.position(a) for a in as_attribute_sequence(attrs))

    def __str__(self) -> str:
        return f"{self.name}[{','.join(self.attributes)}]"


class DatabaseSchema:
    """An immutable collection of relation schemes with distinct names."""

    def __init__(self, schemas: Iterable[RelationSchema]):
        by_name: dict[str, RelationSchema] = {}
        for schema in schemas:
            if not isinstance(schema, RelationSchema):
                raise SchemaError(f"expected RelationSchema, got {schema!r}")
            if schema.name in by_name:
                raise SchemaError(f"duplicate relation name {schema.name!r} in database scheme")
            by_name[schema.name] = schema
        self._by_name: Mapping[str, RelationSchema] = dict(by_name)

    @classmethod
    def of(cls, *schemas: RelationSchema) -> "DatabaseSchema":
        """Variadic convenience constructor."""
        return cls(schemas)

    @classmethod
    def from_dict(cls, spec: Mapping[str, str | Iterable[str]]) -> "DatabaseSchema":
        """Build from ``{"R": ("A", "B"), "S": ("C",)}``-style mappings."""
        return cls(RelationSchema(name, attrs) for name, attrs in spec.items())

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._by_name)

    def relation(self, name: str) -> RelationSchema:
        """Scheme for ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r} in database scheme") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return dict(self._by_name) == dict(other._by_name)

    def __hash__(self) -> int:
        return hash(frozenset(self._by_name.items()))

    def extended_with(self, *schemas: RelationSchema) -> "DatabaseSchema":
        """A new database scheme with extra relation schemes appended."""
        return DatabaseSchema(list(self) + list(schemas))

    def __str__(self) -> str:
        return "{" + ", ".join(str(s) for s in self) + "}"

    def __repr__(self) -> str:
        return f"DatabaseSchema({list(self._by_name.values())!r})"
