"""Finite relations: sets of tuples over a relation scheme.

A relation over ``R[A1,...,Am]`` is a set of length-``m`` tuples.  The
central operation is projection onto an attribute sequence, written
``r[X]`` in the paper and :meth:`Relation.project` here.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.exceptions import SchemaError
from repro.model.schema import RelationSchema

Row = tuple[Any, ...]


class Relation:
    """An immutable finite relation over a :class:`RelationSchema`."""

    __slots__ = ("schema", "_tuples")

    def __init__(self, schema: RelationSchema, tuples: Iterable[Iterable[Any]] = ()):
        rows: set[Row] = set()
        arity = schema.arity
        for raw in tuples:
            row = tuple(raw)
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row!r} has length {len(row)}, but scheme "
                    f"{schema} has arity {arity}"
                )
            rows.add(row)
        self.schema = schema
        self._tuples: frozenset[Row] = frozenset(rows)

    @property
    def tuples(self) -> frozenset[Row]:
        """The tuple set of the relation."""
        return self._tuples

    @property
    def name(self) -> str:
        return self.schema.name

    def __iter__(self) -> Iterator[Row]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, row: Iterable[Any]) -> bool:
        return tuple(row) in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self.schema, self._tuples))

    @property
    def is_empty(self) -> bool:
        return not self._tuples

    def project(self, attrs: str | Iterable[str]) -> frozenset[Row]:
        """The projection ``r[X]`` as a set of sub-tuples.

        ``attrs`` is an attribute *sequence*; the resulting sub-tuples
        preserve its order, matching the paper's definition
        ``r[X] = {t[X] : t in r}``.
        """
        positions = self.schema.positions(attrs)
        return frozenset(tuple(row[p] for p in positions) for row in self._tuples)

    def project_tuple(self, row: Row, attrs: str | Iterable[str]) -> Row:
        """``t[X]`` for a single tuple ``t`` of this relation."""
        positions = self.schema.positions(attrs)
        return tuple(row[p] for p in positions)

    def column(self, attribute: str) -> frozenset[Any]:
        """The set of entries in a single column (``r[A]`` flattened)."""
        position = self.schema.position(attribute)
        return frozenset(row[position] for row in self._tuples)

    def active_domain(self) -> frozenset[Any]:
        """All values occurring anywhere in the relation."""
        return frozenset(value for row in self._tuples for value in row)

    def with_tuples(self, extra: Iterable[Iterable[Any]]) -> "Relation":
        """A new relation with ``extra`` tuples added."""
        return Relation(self.schema, list(self._tuples) + [tuple(t) for t in extra])

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic order (for display and printing)."""
        return sorted(self._tuples, key=repr)

    def __str__(self) -> str:
        header = str(self.schema)
        body = "\n".join("  " + ", ".join(repr(v) for v in row) for row in self.sorted_rows())
        return header if self.is_empty else f"{header}\n{body}"

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {sorted(self._tuples, key=repr)!r})"
