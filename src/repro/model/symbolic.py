"""Symbolic *infinite* relations for the paper's Section 4 figures.

Theorem 4.4 separates finite implication from unrestricted implication
for FDs and INDs taken together; the separating witnesses are the
infinite relations of Figures 4.1 and 4.2:

* Figure 4.1: ``r = {(i+1, i) : i >= 0}``
* Figure 4.2: ``r = {(1, 1)} u {(i+1, i) : i >= 1}``

Python cannot materialize infinite sets, so this module implements a
restricted class of finitely-described infinite relations: finite
unions of *linear tuple families* ``t(i) = (s1*i + c1, ..., sm*i + cm)``
for ``i >= start`` with slopes ``s_k`` in ``{0, 1}``, plus finitely many
explicit extra tuples.  Within this class, satisfaction of FDs, INDs,
and RDs is decided *exactly* (soundly and completely) by the small
linear-constraint analysis below.  This is precisely the class needed
by the paper's figures; anything outside it raises
:class:`SymbolicLimitationError` rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional

from repro.exceptions import SchemaError, SymbolicLimitationError
from repro.model.schema import DatabaseSchema, RelationSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deps.base import Dependency


@dataclass(frozen=True)
class LinearColumn:
    """One column of a tuple family: ``value(i) = slope * i + intercept``."""

    slope: int
    intercept: int

    def __post_init__(self) -> None:
        if self.slope not in (0, 1):
            raise SymbolicLimitationError(
                f"symbolic relations support slopes 0 and 1 only, got {self.slope}"
            )

    def value(self, i: int) -> int:
        return self.slope * i + self.intercept

    def __str__(self) -> str:
        if self.slope == 0:
            return str(self.intercept)
        if self.intercept == 0:
            return "i"
        sign = "+" if self.intercept > 0 else "-"
        return f"i {sign} {abs(self.intercept)}"


@dataclass(frozen=True)
class TupleFamily:
    """The infinite tuple set ``{ (col_1(i),...,col_m(i)) : i >= start }``."""

    columns: tuple[LinearColumn, ...]
    start: int = 0

    @classmethod
    def of(cls, *cols: tuple[int, int] | LinearColumn, start: int = 0) -> "TupleFamily":
        """Build from ``(slope, intercept)`` pairs: ``TupleFamily.of((1, 1), (1, 0))``."""
        normalized = tuple(
            col if isinstance(col, LinearColumn) else LinearColumn(*col) for col in cols
        )
        return cls(normalized, start)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def tuple_at(self, i: int) -> tuple[int, ...]:
        """The concrete tuple for index ``i`` (must be ``>= start``)."""
        if i < self.start:
            raise ValueError(f"index {i} below family start {self.start}")
        return tuple(col.value(i) for col in self.columns)

    def sample(self, count: int) -> list[tuple[int, ...]]:
        """The first ``count`` tuples of the family (for display/tests)."""
        return [self.tuple_at(self.start + k) for k in range(count)]

    def __str__(self) -> str:
        body = ", ".join(str(col) for col in self.columns)
        return f"{{({body}) : i >= {self.start}}}"


class _PairConstraint:
    """Accumulated linear constraints between two family indices i, j.

    After merging all per-attribute matching equations the solution set
    is described by at most: a fixed value for ``i``, a fixed value for
    ``j``, and/or a fixed offset ``j - i``.  ``feasible`` turns False on
    contradiction.
    """

    __slots__ = ("i_value", "j_value", "offset", "feasible")

    def __init__(self) -> None:
        self.i_value: Optional[int] = None
        self.j_value: Optional[int] = None
        self.offset: Optional[int] = None  # j - i
        self.feasible = True

    def _set_i(self, value: int) -> None:
        if self.i_value is None:
            self.i_value = value
        elif self.i_value != value:
            self.feasible = False

    def _set_j(self, value: int) -> None:
        if self.j_value is None:
            self.j_value = value
        elif self.j_value != value:
            self.feasible = False

    def _set_offset(self, value: int) -> None:
        if self.offset is None:
            self.offset = value
        elif self.offset != value:
            self.feasible = False

    def _propagate(self) -> None:
        if not self.feasible:
            return
        if self.offset is not None:
            if self.i_value is not None:
                self._set_j(self.i_value + self.offset)
            if self.j_value is not None:
                self._set_i(self.j_value - self.offset)
        if self.i_value is not None and self.j_value is not None:
            self._set_offset(self.j_value - self.i_value)

    def add_equation(self, left: LinearColumn, right: LinearColumn) -> None:
        """Require ``left.value(i) == right.value(j)``."""
        if not self.feasible:
            return
        if left.slope == 1 and right.slope == 1:
            # i + c1 = j + c2  =>  j - i = c1 - c2
            self._set_offset(left.intercept - right.intercept)
        elif left.slope == 1 and right.slope == 0:
            self._set_i(right.intercept - left.intercept)
        elif left.slope == 0 and right.slope == 1:
            self._set_j(left.intercept - right.intercept)
        else:  # both constant
            if left.intercept != right.intercept:
                self.feasible = False
        self._propagate()


class _Coverage:
    """The set of family indices ``i`` covered by one matching analysis.

    One of: nothing, everything, a single point, or a ray ``[low, inf)``.
    """

    __slots__ = ("kind", "value")

    NOTHING = "nothing"
    ALL = "all"
    POINT = "point"
    RAY = "ray"

    def __init__(self, kind: str, value: int | None = None):
        self.kind = kind
        self.value = value

    @classmethod
    def nothing(cls) -> "_Coverage":
        return cls(cls.NOTHING)

    @classmethod
    def everything(cls) -> "_Coverage":
        return cls(cls.ALL)

    @classmethod
    def point(cls, i: int) -> "_Coverage":
        return cls(cls.POINT, i)

    @classmethod
    def ray(cls, low: int) -> "_Coverage":
        return cls(cls.RAY, low)

    def contains(self, i: int) -> bool:
        if self.kind == self.NOTHING:
            return False
        if self.kind == self.ALL:
            return True
        if self.kind == self.POINT:
            return i == self.value
        return i >= (self.value or 0)


class InfiniteRelation:
    """A finitely-described infinite relation over a relation scheme."""

    def __init__(
        self,
        schema: RelationSchema,
        families: Iterable[TupleFamily] = (),
        extras: Iterable[Iterable[int]] = (),
    ):
        families = tuple(families)
        for family in families:
            if family.arity != schema.arity:
                raise SchemaError(
                    f"family arity {family.arity} does not match scheme {schema}"
                )
        extra_rows = frozenset(tuple(row) for row in extras)
        for row in extra_rows:
            if len(row) != schema.arity:
                raise SchemaError(f"extra tuple {row!r} does not match scheme {schema}")
        self.schema = schema
        self.families = families
        self.extras = extra_rows

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def is_finite(self) -> bool:
        return not self.families

    def sample(self, count: int = 10) -> list[tuple[int, ...]]:
        """A finite, deterministic sample of tuples (display only)."""
        rows: list[tuple[int, ...]] = sorted(self.extras)
        for family in self.families:
            rows.extend(family.sample(count))
        return rows[: count + len(self.extras)]

    def _family_columns(
        self, family: TupleFamily, attrs: Iterable[str]
    ) -> tuple[LinearColumn, ...]:
        return tuple(family.columns[p] for p in self.schema.positions(attrs))

    def _extra_projection(self, row: tuple[int, ...], attrs: Iterable[str]) -> tuple[int, ...]:
        return tuple(row[p] for p in self.schema.positions(attrs))

    # ------------------------------------------------------------------
    # FD satisfaction
    # ------------------------------------------------------------------

    def satisfies_fd(self, lhs: tuple[str, ...], rhs: tuple[str, ...]) -> bool:
        """Exact check of ``R: lhs -> rhs`` over this infinite relation."""
        sources: list[object] = list(self.families) + list(self.extras)
        for a in sources:
            for b in sources:
                if self._fd_violated_by_pair(a, b, lhs, rhs):
                    return False
        return True

    def _fd_violated_by_pair(self, a: object, b: object, lhs, rhs) -> bool:
        a_is_family = isinstance(a, TupleFamily)
        b_is_family = isinstance(b, TupleFamily)
        if not a_is_family and not b_is_family:
            ax = self._extra_projection(a, lhs)  # type: ignore[arg-type]
            bx = self._extra_projection(b, lhs)  # type: ignore[arg-type]
            if ax != bx:
                return False
            return self._extra_projection(a, rhs) != self._extra_projection(b, rhs)  # type: ignore[arg-type]
        if a_is_family and not b_is_family:
            return self._fd_violated_family_extra(a, b, lhs, rhs)  # type: ignore[arg-type]
        if not a_is_family and b_is_family:
            return self._fd_violated_family_extra(b, a, lhs, rhs)  # type: ignore[arg-type]
        return self._fd_violated_family_family(a, b, lhs, rhs)  # type: ignore[arg-type]

    def _fd_violated_family_extra(
        self, family: TupleFamily, row: tuple[int, ...], lhs, rhs
    ) -> bool:
        """Does some family member clash with the explicit tuple ``row``?"""
        cols = self._family_columns(family, lhs)
        values = self._extra_projection(row, lhs)
        fixed_i: Optional[int] = None
        for col, value in zip(cols, values):
            if col.slope == 0:
                if col.intercept != value:
                    return False
            else:
                candidate = value - col.intercept
                if fixed_i is not None and fixed_i != candidate:
                    return False
                fixed_i = candidate
        rhs_cols = self._family_columns(family, rhs)
        rhs_values = self._extra_projection(row, rhs)
        if fixed_i is not None:
            if fixed_i < family.start:
                return False
            family_rhs = tuple(col.value(fixed_i) for col in rhs_cols)
            return family_rhs != rhs_values
        # Every i >= start matches on lhs; a violation exists unless the
        # rhs agrees for every i, i.e. all rhs columns are constants
        # equal to the row's rhs entries.
        for col, value in zip(rhs_cols, rhs_values):
            if col.slope != 0 or col.intercept != value:
                return True
        return False

    def _fd_violated_family_family(
        self, fam_a: TupleFamily, fam_b: TupleFamily, lhs, rhs
    ) -> bool:
        constraint = _PairConstraint()
        for ca, cb in zip(self._family_columns(fam_a, lhs), self._family_columns(fam_b, lhs)):
            constraint.add_equation(ca, cb)
        if not constraint.feasible:
            return False
        rhs_a = self._family_columns(fam_a, rhs)
        rhs_b = self._family_columns(fam_b, rhs)

        if constraint.i_value is not None and constraint.j_value is not None:
            i, j = constraint.i_value, constraint.j_value
            if i < fam_a.start or j < fam_b.start:
                return False
            return tuple(c.value(i) for c in rhs_a) != tuple(c.value(j) for c in rhs_b)

        if constraint.offset is not None:
            # j = i + d with i ranging over an infinite ray.
            d = constraint.offset
            low = max(fam_a.start, fam_b.start - d)
            # The ray [low, inf) is never empty.  The pair violates the
            # FD unless every rhs column pair is *identically* equal
            # along the ray (a linear function with infinitely many
            # zeros is identically zero).
            for ca, cb in zip(rhs_a, rhs_b):
                # value_a(i) - value_b(i + d)
                slope_diff = ca.slope - cb.slope
                const_diff = ca.intercept - cb.slope * d - cb.intercept
                if slope_diff != 0 or const_diff != 0:
                    return True
            return False

        if constraint.i_value is not None:
            i = constraint.i_value
            if i < fam_a.start:
                return False
            fixed = tuple(c.value(i) for c in rhs_a)
            # j is unconstrained over [fam_b.start, inf).
            for value, cb in zip(fixed, rhs_b):
                if cb.slope == 1:
                    return True  # cb takes infinitely many values
                if cb.intercept != value:
                    return True
            return False

        if constraint.j_value is not None:
            j = constraint.j_value
            if j < fam_b.start:
                return False
            fixed = tuple(c.value(j) for c in rhs_b)
            for value, ca in zip(fixed, rhs_a):
                if ca.slope == 1:
                    return True
                if ca.intercept != value:
                    return True
            return False

        # No constraints at all: both indices roam freely (this happens
        # when every lhs column pair is constant-equal, or lhs is empty).
        for ca, cb in zip(rhs_a, rhs_b):
            if ca.slope == 1 or cb.slope == 1:
                return True
            if ca.intercept != cb.intercept:
                return True
        return False

    # ------------------------------------------------------------------
    # IND satisfaction
    # ------------------------------------------------------------------

    def projection_contained_in(
        self,
        lhs: tuple[str, ...],
        target: "InfiniteRelation",
        rhs: tuple[str, ...],
    ) -> bool:
        """Exact check of ``self[lhs] subseteq target[rhs]``."""
        for row in self.extras:
            if not target._covers_value(self._extra_projection(row, lhs), rhs):
                return False
        for family in self.families:
            if not self._family_covered(family, lhs, target, rhs):
                return False
        return True

    def _covers_value(self, values: tuple[int, ...], rhs: tuple[str, ...]) -> bool:
        """Is the concrete tuple ``values`` in ``self[rhs]``?"""
        for row in self.extras:
            if self._extra_projection(row, rhs) == values:
                return True
        for family in self.families:
            cols = self._family_columns(family, rhs)
            fixed_j: Optional[int] = None
            ok = True
            for col, value in zip(cols, values):
                if col.slope == 0:
                    if col.intercept != value:
                        ok = False
                        break
                else:
                    candidate = value - col.intercept
                    if fixed_j is not None and fixed_j != candidate:
                        ok = False
                        break
                    fixed_j = candidate
            if not ok:
                continue
            if fixed_j is None or fixed_j >= family.start:
                return True
        return False

    def _family_covered(
        self,
        family: TupleFamily,
        lhs: tuple[str, ...],
        target: "InfiniteRelation",
        rhs: tuple[str, ...],
    ) -> bool:
        """Is every lhs-projection of ``family`` in ``target[rhs]``?"""
        lhs_cols = self._family_columns(family, lhs)
        coverages: list[_Coverage] = []
        for tgt_family in target.families:
            coverages.append(
                _family_vs_family_coverage(lhs_cols, family.start, tgt_family,
                                            target._family_columns(tgt_family, rhs))
            )
        for row in target.extras:
            coverages.append(
                _family_vs_value_coverage(lhs_cols, family.start,
                                          target._extra_projection(row, rhs))
            )
        if any(c.kind == _Coverage.ALL for c in coverages):
            return True
        ray_low: Optional[int] = None
        for c in coverages:
            if c.kind == _Coverage.RAY:
                low = c.value or 0
                ray_low = low if ray_low is None else min(ray_low, low)
        if ray_low is None:
            # Only finitely many points cover an infinite family: fail
            # (unless the family itself is degenerate, which it is not:
            # start..inf is always infinite and slope-1 columns make the
            # tuples distinct; with all-constant columns the family is a
            # single repeated tuple).
            if all(col.slope == 0 for col in family.columns):
                return any(c.contains(family.start) for c in coverages)
            return False
        # Check the finite gap [family.start, ray_low).
        for i in range(family.start, max(family.start, ray_low)):
            if not any(c.contains(i) for c in coverages):
                return False
        return True

    # ------------------------------------------------------------------
    # RD satisfaction
    # ------------------------------------------------------------------

    def satisfies_rd(self, pairs: Iterable[tuple[str, str]]) -> bool:
        """Exact check of the RD with the given attribute pairs."""
        pair_list = list(pairs)
        for row in self.extras:
            for left, right in pair_list:
                if (row[self.schema.position(left)] != row[self.schema.position(right)]):
                    return False
        for family in self.families:
            for left, right in pair_list:
                cl = family.columns[self.schema.position(left)]
                cr = family.columns[self.schema.position(right)]
                if cl.slope == cr.slope:
                    if cl.intercept != cr.intercept:
                        return False
                else:
                    # Equality holds for at most one index; the family
                    # is infinite, so the RD fails.
                    return False
        return True

    def __str__(self) -> str:
        parts = [str(self.schema)]
        for row in sorted(self.extras):
            parts.append("  " + ", ".join(str(v) for v in row))
        for family in self.families:
            parts.append("  " + str(family))
        return "\n".join(parts)


def _family_vs_family_coverage(
    lhs_cols: tuple[LinearColumn, ...],
    start: int,
    tgt_family: TupleFamily,
    rhs_cols: tuple[LinearColumn, ...],
) -> _Coverage:
    """Indices ``i`` of the source family whose lhs-projection is
    matched by *some* index ``j`` of the target family."""
    constraint = _PairConstraint()
    for cl, cr in zip(lhs_cols, rhs_cols):
        constraint.add_equation(cl, cr)
    if not constraint.feasible:
        return _Coverage.nothing()
    if constraint.i_value is not None:
        i = constraint.i_value
        if i < start:
            return _Coverage.nothing()
        if constraint.j_value is not None and constraint.j_value < tgt_family.start:
            return _Coverage.nothing()
        return _Coverage.point(i)
    if constraint.offset is not None:
        # j = i + d must satisfy j >= tgt_family.start.
        low = max(start, tgt_family.start - constraint.offset)
        return _Coverage.ray(low)
    if constraint.j_value is not None:
        if constraint.j_value < tgt_family.start:
            return _Coverage.nothing()
        return _Coverage.everything()
    return _Coverage.everything()


def _family_vs_value_coverage(
    lhs_cols: tuple[LinearColumn, ...],
    start: int,
    values: tuple[int, ...],
) -> _Coverage:
    """Indices ``i`` whose lhs-projection equals the concrete ``values``."""
    fixed_i: Optional[int] = None
    for col, value in zip(lhs_cols, values):
        if col.slope == 0:
            if col.intercept != value:
                return _Coverage.nothing()
        else:
            candidate = value - col.intercept
            if fixed_i is not None and fixed_i != candidate:
                return _Coverage.nothing()
            fixed_i = candidate
    if fixed_i is None:
        return _Coverage.everything()
    if fixed_i < start:
        return _Coverage.nothing()
    return _Coverage.point(fixed_i)


class SymbolicDatabase:
    """A database whose relations may be infinite.

    Used to exhibit the paper's unrestricted-implication
    counterexamples.  ``satisfies`` dispatches on the dependency class
    and evaluates exactly within the supported symbolic fragment.
    """

    def __init__(self, schema: DatabaseSchema, relations: Mapping[str, InfiniteRelation]):
        self.schema = schema
        by_name: dict[str, InfiniteRelation] = {}
        for rel_schema in schema:
            given = relations.get(rel_schema.name)
            if given is None:
                given = InfiniteRelation(rel_schema)
            elif given.schema != rel_schema:
                raise SchemaError(
                    f"symbolic relation for {rel_schema.name!r} does not match scheme"
                )
            by_name[rel_schema.name] = given
        stray = set(relations) - set(by_name)
        if stray:
            raise SchemaError(f"relations not in database scheme: {sorted(stray)}")
        self._relations = by_name

    def relation(self, name: str) -> InfiniteRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r} in symbolic database") from None

    def __getitem__(self, name: str) -> InfiniteRelation:
        return self.relation(name)

    def __iter__(self) -> Iterator[InfiniteRelation]:
        return iter(self._relations.values())

    @property
    def is_finite(self) -> bool:
        return all(rel.is_finite for rel in self)

    def satisfies(self, dependency: "Dependency") -> bool:
        """Exact satisfaction within the symbolic fragment."""
        from repro.deps.fd import FD
        from repro.deps.ind import IND
        from repro.deps.rd import RD

        if isinstance(dependency, FD):
            return self.relation(dependency.relation).satisfies_fd(
                dependency.lhs, dependency.rhs
            )
        if isinstance(dependency, IND):
            source = self.relation(dependency.lhs_relation)
            target = self.relation(dependency.rhs_relation)
            return source.projection_contained_in(
                dependency.lhs_attributes, target, dependency.rhs_attributes
            )
        if isinstance(dependency, RD):
            return self.relation(dependency.relation).satisfies_rd(dependency.pairs)
        raise SymbolicLimitationError(
            f"symbolic satisfaction not implemented for {type(dependency).__name__}"
        )

    def satisfies_all(self, dependencies: Iterable["Dependency"]) -> bool:
        return all(self.satisfies(dep) for dep in dependencies)


def figure_4_1_relation(schema: RelationSchema | None = None) -> InfiniteRelation:
    """The paper's Figure 4.1: ``r = {(i+1, i) : i >= 0}`` over R[A,B].

    Obeys ``{R: A -> B, R[A] c R[B]}`` but violates ``R[B] c R[A]``,
    witnessing that unrestricted implication fails where finite
    implication holds (Theorem 4.4(a)).
    """
    schema = schema or RelationSchema("R", ("A", "B"))
    family = TupleFamily.of((1, 1), (1, 0), start=0)
    return InfiniteRelation(schema, [family])


def figure_4_2_relation(schema: RelationSchema | None = None) -> InfiniteRelation:
    """The paper's Figure 4.2: ``r = {(1,1)} u {(i+1, i) : i >= 1}``.

    Obeys ``{R: A -> B, R[A] c R[B]}`` but violates ``R: B -> A``
    (Theorem 4.4(b)).
    """
    schema = schema or RelationSchema("R", ("A", "B"))
    family = TupleFamily.of((1, 1), (1, 0), start=1)
    return InfiniteRelation(schema, [family], extras=[(1, 1)])
