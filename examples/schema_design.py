#!/usr/bin/env python
"""Schema design: INDs from entity-relationship mapping.

The paper's introduction motivates INDs via database design: mapping
an ER diagram to relations produces referential INDs, and FDs encode
keys.  This example builds a library design, then uses the inference
engines to find *implied* dependencies (candidates for removal from
the DDL) and *redundant* declarations, and computes candidate keys.

Run:  python examples/schema_design.py
"""

from repro import FD, IND, candidate_keys, decide_ind, fd_implies, minimal_cover
from repro.deps.enumeration import all_inds, all_fds
from repro.core.interaction import pullback_fd
from repro.workloads import library_dependencies, library_schema


def main() -> None:
    schema = library_schema()
    dependencies = library_dependencies()
    inds = [d for d in dependencies if isinstance(d, IND)]
    fds = [d for d in dependencies if isinstance(d, FD)]

    print("ER-mapped schema:", schema)
    print("\nDeclared dependencies:")
    for dep in dependencies:
        print("  ", dep)

    # ------------------------------------------------------------------
    # 1. Candidate keys per relation (FD theory).
    # ------------------------------------------------------------------
    print("\nCandidate keys:")
    for rel in schema:
        keys = candidate_keys(rel, fds)
        rendered = ", ".join("{" + ",".join(sorted(k)) + "}" for k in keys)
        print(f"  {rel}: {rendered}")

    # ------------------------------------------------------------------
    # 2. Redundancy: which declared INDs follow from the others?
    # ------------------------------------------------------------------
    from repro.core.ind_closure import minimal_ind_cover, redundant_inds

    print("\nRedundancy analysis (INDs):")
    redundant = set(redundant_inds(inds))
    for ind in inds:
        status = "REDUNDANT (implied by the rest)" if ind in redundant else "essential"
        print(f"  {ind}: {status}")
    cover = minimal_ind_cover(inds)
    print(f"  minimal IND cover keeps {len(cover)} of {len(inds)} declarations")

    # ------------------------------------------------------------------
    # 3. Implied-but-undeclared dependencies a designer may want to know.
    # ------------------------------------------------------------------
    print("\nImplied non-trivial INDs not declared (projections etc.):")
    declared = set(inds)
    for candidate in all_inds(schema, max_arity=2):
        if candidate in declared:
            continue
        if decide_ind(candidate, inds).implied:
            print("  ", candidate)

    print("\nImplied non-trivial FDs not declared:")
    declared_fds = set(fds)
    for rel in schema:
        for candidate in all_fds(rel, allow_empty_lhs=False):
            if candidate in declared_fds:
                continue
            if fd_implies(fds, candidate) and len(candidate.lhs) == 1:
                print("  ", candidate)

    # ------------------------------------------------------------------
    # 4. FD/IND interaction (Proposition 4.1): an IND into a relation
    #    with a key pulls the key constraint back to the source.
    # ------------------------------------------------------------------
    print("\nProposition 4.1 pullbacks (FDs induced through INDs):")
    # A concrete pullback: were loans to carry the book title in the
    # DUE column, BOOK's key FD would pull back onto the source.
    catalogue = IND("LOAN", ("ISBN", "DUE"), "BOOK", ("ISBN", "TITLE"))
    key_fd = FD("BOOK", ("ISBN",), ("TITLE",))
    pulled = pullback_fd(catalogue, key_fd)
    print(f"  from {catalogue} and {key_fd}")
    print(f"  infer {pulled}")
    print("  (if loans recorded the book title in DUE's place, ISBN would")
    print("   determine it — the design smell Proposition 4.1 formalizes)")

    # ------------------------------------------------------------------
    # 5. Minimal cover of the FD set.
    # ------------------------------------------------------------------
    print("\nMinimal cover of the declared FDs:")
    for fd in minimal_cover(fds):
        print("  ", fd)


if __name__ == "__main__":
    main()
