#!/usr/bin/env python
"""The superpolynomial example: Landau's function vs short proofs.

Section 3 shows the naive decision procedure for INDs needs
superpolynomially many steps: encode the maximal-order permutation of
degree m as an IND; deciding `sigma(gamma) |= sigma(gamma^(g(m)-1))`
walks a chain of g(m) - 1 expressions, where log g(m) ~ sqrt(m log m).
Yet O(log g(m))-line *proofs* exist by repeated squaring — the
axiomatization is not to blame, the procedure is.

Run:  python examples/landau_chains.py
"""

from repro.core.ind_axioms import check_proof
from repro.perms.ind_encoding import (
    chain_decision,
    permutation_ind,
    permutation_schema,
    short_proof_of_power,
)
from repro.perms.landau import landau, landau_witness_permutation, log_landau_ratio


def main() -> None:
    print("Landau's function g(m) (max order of a permutation of 1..m):")
    print(f"  {'m':>3} | {'g(m)':>6} | naive chain steps | proof lines | "
          f"log g / sqrt(m log m)")
    print("  " + "-" * 66)
    for m in (5, 7, 9, 12, 16, 19, 23):
        gamma = landau_witness_permutation(m)
        power = gamma.order() - 1
        report = chain_decision(gamma, power)
        proof = short_proof_of_power(gamma, power)
        target = permutation_ind(gamma ** power)
        assert check_proof(proof, permutation_schema(m), target)
        assert report.chain_steps == landau(m) - 1
        print(
            f"  {m:>3} | {landau(m):>6} | {report.chain_steps:>17} | "
            f"{len(proof):>11} | {log_landau_ratio(m):.3f}"
        )

    print()
    m = 12
    gamma = landau_witness_permutation(m)
    print(f"The degree-{m} witness permutation: {gamma}")
    print(f"  cycle type {gamma.cycle_type()}, order {gamma.order()} = "
          f"lcm of relatively prime cycle lengths (Landau's construction)")

    print(f"\nIts IND encoding:\n  sigma(gamma) = {permutation_ind(gamma)}")

    power = 5
    proof = short_proof_of_power(gamma, power)
    print(f"\nThe repeated-squaring proof of sigma(gamma^{power}) "
          f"({len(proof)} lines):")
    print(proof)


if __name__ == "__main__":
    main()
