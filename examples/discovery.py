#!/usr/bin/env python
"""Discovery quickstart: data in, minimal dependency cover out.

Profiles a small employee database — no dependencies declared anywhere
— and lets the discovery subsystem mine the FDs and INDs the data
satisfies, reduce them to a minimal cover with the reasoning engine,
and hand back a ready-to-query :class:`ReasoningSession`.

Run:  python examples/discovery.py
"""

from repro import ReasoningSession, database
from repro.discovery import discover


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data only: employees, their departments, and a people registry.
    # ------------------------------------------------------------------
    db = database(
        {
            "EMP": ("NAME", "DEPT", "FLOOR"),
            "MGR": ("NAME", "DEPT"),
            "PERSON": ("NAME",),
        },
        {
            "EMP": [
                ("Hilbert", "Math", 3),
                ("Noether", "Math", 3),
                ("Curie", "Physics", 1),
            ],
            "MGR": [("Hilbert", "Math"), ("Curie", "Physics")],
            "PERSON": [("Hilbert",), ("Noether",), ("Curie",), ("Gauss",)],
        },
    )
    print("Database:")
    print(db.describe())

    # ------------------------------------------------------------------
    # 2. Mine the satisfied dependencies and reduce them.
    # ------------------------------------------------------------------
    report = discover(db)
    print("\nDiscovery report:")
    print(report.describe())

    # ------------------------------------------------------------------
    # 3. The same pipeline as a one-call session constructor.
    # ------------------------------------------------------------------
    session = ReasoningSession.from_database(db)
    print(f"\nSession over the mined cover: {session!r}")
    print("DEPT determines FLOOR:",
          session.implies("EMP: DEPT -> FLOOR").verdict)
    print("every manager is a person:",
          session.implies("MGR[NAME] <= PERSON[NAME]").verdict)
    print("the data satisfies its own cover:", session.check().ok)

    # ------------------------------------------------------------------
    # 4. What the pruning paid for, from the per-phase counters.
    # ------------------------------------------------------------------
    totals = session.discovery.totals()
    print(f"\ncandidates generated: {totals['candidates_generated']}, "
          f"pruned by implication: {totals['pruned_by_implication']}, "
          f"validated against data: {totals['validated']}, "
          f"rows scanned: {totals['rows_scanned']}")


if __name__ == "__main__":
    main()
