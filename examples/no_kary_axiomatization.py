#!/usr/bin/env python
"""Sections 6 and 7: no k-ary complete axiomatization for FDs + INDs.

Walks through both negative results for a small ``k``:

* **Section 6 (finite implication)** — the cycle family
  ``Sigma = {Ri: A -> B, Ri[A] c R(i+1)[B]}`` finitely implies
  ``sigma = R0[B] c Rk[A]``, yet dropping any single IND admits the
  Figure 6.1 Armstrong database; Gamma is closed under k-ary finite
  implication but not closed under finite implication, so Theorem 5.1
  rules out every k-ary axiomatization.

* **Section 7 (unrestricted implication)** — the ``F/Gi/Hi`` family
  whose equality chain threads every ``Hi``; Figures 7.1-7.5 are
  regenerated and verified.

Run:  python examples/no_kary_axiomatization.py
"""

from repro.core.armstrong6 import (
    cycle_family,
    figure_6_1,
    gamma_6,
    theorem_6_1_report,
)
from repro.core.section7 import (
    figure_7_1,
    section7_family,
    theorem_7_1_report,
    verify_lemma_7_2,
)


def main() -> None:
    k = 2

    # ------------------------------------------------------------------
    # Section 6, finite implication.
    # ------------------------------------------------------------------
    family = cycle_family(k)
    print(f"Section 6 cycle family for k={k}:")
    for dep in family.dependencies:
        print("  ", dep)
    print("  target sigma:", family.sigma)

    print(f"\nFigure 6.1 Armstrong database (delta = {family.ind_at(k)}):")
    print(figure_6_1(k).describe())

    print()
    print(theorem_6_1_report(k))
    print(f"\n|Gamma| = {len(gamma_6(family))} "
          f"(Sigma + trivial FDs/INDs/RDs over the scheme)")

    # ------------------------------------------------------------------
    # Section 7, unrestricted implication.
    # ------------------------------------------------------------------
    n = k + 1
    print("\n" + "=" * 70)
    family7 = section7_family(n)
    print(f"Section 7 family for n={n} (k={k} < n):")
    print(f"  {len(family7.inds)} INDs, {len(family7.fds)} FDs over "
          f"{len(list(family7.schema))} relations")
    print("  sample INDs:", ", ".join(str(i) for i in family7.inds[:4]), "...")
    print("  target sigma:", family7.sigma)

    print("\nLemma 7.2 re-derived by the chase:")
    print(" ", verify_lemma_7_2(n))

    print("\nFigure 7.1 (satisfies Sigma, no nontrivial RD):")
    print(figure_7_1(n).describe())

    print()
    print(theorem_7_1_report(n, k))

    print("\nConclusion: for every k there is a scheme over which no")
    print("k-ary complete axiomatization exists — whether implication is")
    print("finite (Section 6) or unrestricted (Section 7); the FD/IND")
    print("interaction is irreducibly non-local.")


if __name__ == "__main__":
    main()
