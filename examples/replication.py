#!/usr/bin/env python
"""Replicated serving: WAL shipping, follower reads, and failover.

Walks the replication surface:

* a primary and two followers — each follower bootstraps its tenants
  from the primary's snapshot, then applies the WAL stream record by
  record, so its sessions stay verdict-equivalent;
* synchronous record forwarding: a mutation's 200 means every healthy
  follower has already applied it;
* follower reads with a ``max_lag`` staleness bound, and the 421
  redirect a follower answers when asked to mutate;
* automatic failover: the primary vanishes, a follower misses its
  heartbeats, promotes itself under a higher ``term``, and the
  ``FailoverClient``'s pinned idempotency key makes the retried
  mutation land exactly once on the new primary.

Run:  python examples/replication.py
"""

from repro.serve import BackgroundServer, FailoverClient, ServeClient, ServeError

BUNDLE = {
    "schema": {
        "MGR": ["NAME", "DEPT"],
        "EMP": ["NAME", "DEPT"],
        "PERSON": ["NAME"],
    },
    "dependencies": [
        "MGR[NAME,DEPT] <= EMP[NAME,DEPT]",
        "EMP[NAME] <= PERSON[NAME]",
    ],
}
PROBE = "MGR[NAME] <= PERSON[NAME]"


def wait_for(predicate, budget=15.0):
    import time

    deadline = time.monotonic() + budget
    while not predicate():
        if time.monotonic() > deadline:
            raise RuntimeError("timed out waiting for replication")
        time.sleep(0.02)


def main() -> None:
    # ----------------------------------------------------------------------
    # A primary and two followers on loopback.
    # ----------------------------------------------------------------------
    primary = BackgroundServer().start()
    ServeClient(port=primary.port).create_tenant("app", BUNDLE)

    def follower(failover_after=0):
        return BackgroundServer(
            replica_of=f"127.0.0.1:{primary.port}",
            heartbeat=0.05,
            failover_after=failover_after,
        ).start()

    replica = follower(failover_after=3)  # the designated successor
    reader = follower()                   # a pure read replica
    nodes = [primary, replica, reader]
    try:
        for node in (replica, reader):
            wait_for(lambda n=node: "app" in n.server.registry.tenants)
        print("topology: primary + 2 followers, tenant bootstrapped")

        # ------------------------------------------------------------------
        # Synchronous shipping: the ack means the followers have it.
        # ------------------------------------------------------------------
        writer = ServeClient(port=primary.port)
        ack = writer.add("app", ["PERSON[NAME] <= EMP[NAME]"], key="m-1")
        print(f"mutation acked at seq={ack['seq']}")
        for node in (replica, reader):
            tenant = node.server.registry.tenants["app"]
            assert tenant.replicated_seq == ack["seq"]

        # Follower reads answer from the replicated session; a fresh
        # read can demand zero staleness with ``max_lag=0``.
        answer = ServeClient(port=replica.port).implies(
            "app", PROBE, max_lag=0
        )
        print(f"follower read (max_lag=0): verdict={answer['verdict']}")

        # Followers refuse writes, naming the primary.
        try:
            ServeClient(port=reader.port).add("app", ["EMP: NAME -> DEPT"])
        except ServeError as exc:
            print(f"follower write -> {exc.status} "
                  f"(primary is {exc.extra['primary']})")

        # ------------------------------------------------------------------
        # Failover: kill the primary mid-conversation.
        # ------------------------------------------------------------------
        fleet = FailoverClient(
            [f"127.0.0.1:{node.port}" for node in nodes],
            failover_timeout=20.0,
            poll_interval=0.05,
        )
        print(f"fleet sees primary at {fleet.topology()['primary']}")
        primary.stop()  # the box dies
        ack = fleet.retract(
            "app", ["PERSON[NAME] <= EMP[NAME]"], key="m-2"
        )
        print(f"after failover: mutation acked by the promoted follower "
              f"(term={replica.server.registry.term}, "
              f"version={ack['version']})")
        assert replica.server.role == "primary"

        # The pinned key replays exactly-once on the new primary.
        replay = fleet.retract(
            "app", ["PERSON[NAME] <= EMP[NAME]"], key="m-2"
        )
        assert replay["idempotent_replay"] is True
        print("retried key m-2 replayed idempotently")
        fleet.close()
    finally:
        for node in nodes:
            node.stop()

    print("\nreplication surface: OK")


if __name__ == "__main__":
    main()
