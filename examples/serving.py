#!/usr/bin/env python
"""Serving quickstart: the reasoning session as a long-running service.

Starts the :mod:`repro.serve` HTTP server on a background thread,
registers two tenants, and exercises the whole serving surface with
the blocking client:

* implication questions and batches against a named tenant;
* the structural-hash artifact LRU — the second, structurally
  identical tenant adopts the first's compiled indexes and starts hot
  (one compile for N identical microservices);
* speculative ``whatif`` served from a fork, leaving the live tenant
  untouched;
* premise mutations ordered through the coalescing barrier;
* graceful shutdown via ``POST /shutdown`` (same drain as SIGTERM).

Run:  python examples/serving.py
"""

from repro.serve import BackgroundServer, ServeClient

BUNDLE = {
    "schema": {
        "MGR": ["NAME", "DEPT"],
        "EMP": ["NAME", "DEPT"],
        "PERSON": ["NAME"],
    },
    "dependencies": [
        "MGR[NAME,DEPT] <= EMP[NAME,DEPT]",
        "EMP: NAME -> DEPT",
        "EMP[NAME] <= PERSON[NAME]",
    ],
}


def main() -> None:
    with BackgroundServer() as bg:
        client = ServeClient(port=bg.port)
        print(f"server up on 127.0.0.1:{bg.port}  {client.health()}")

        # ------------------------------------------------------------------
        # Two structurally identical tenants: one compile, shared COW.
        # ------------------------------------------------------------------
        first = client.create_tenant("billing", BUNDLE)
        second = client.create_tenant("reporting", BUNDLE)
        print(f"\ntenant 'billing'   hash={first['premise_hash']} "
              f"shared={first['shared_artifacts']}")
        print(f"tenant 'reporting' hash={second['premise_hash']} "
              f"shared={second['shared_artifacts']}")
        assert second["shared_artifacts"], "identical premises must share"
        cache = client.stats()["artifact_cache"]
        print(f"artifact LRU: {cache['hits']} hit(s), "
              f"{cache['misses']} miss(es)")

        # ------------------------------------------------------------------
        # Ask questions — the paper's manager example, over HTTP.
        # ------------------------------------------------------------------
        answer = client.implies("billing", "MGR[NAME] <= PERSON[NAME]")
        print(f"\nMGR[NAME] <= PERSON[NAME] ? "
              f"{answer['verdict']} via {answer['engine']}")
        batch = client.implies_all("billing", [
            "MGR[NAME] <= PERSON[NAME]",
            "MGR: NAME -> DEPT",
            "PERSON[NAME] <= MGR[NAME]",
        ])
        print(f"batch: {batch['implied']}/{batch['total']} implied")

        # ------------------------------------------------------------------
        # Speculate without mutating: whatif runs on a fork.
        # ------------------------------------------------------------------
        flips = client.whatif(
            "billing",
            ["MGR[NAME] <= PERSON[NAME]"],
            retract=["EMP[NAME] <= PERSON[NAME]"],
        )
        flip = flips["flips"][0]
        print(f"\nwhatif retract EMP[NAME] <= PERSON[NAME]: "
              f"{flip['before']['verdict']} -> {flip['after']['verdict']} "
              f"({flips['flipped']} flip)")
        still = client.implies("billing", "MGR[NAME] <= PERSON[NAME]")
        assert still["verdict"], "the live tenant must be untouched"

        # ------------------------------------------------------------------
        # Mutate for real — versioned, ordered through the barrier.
        # ------------------------------------------------------------------
        mutation = client.retract("billing", ["EMP[NAME] <= PERSON[NAME]"])
        print(f"\nretracted for real: now v{mutation['version']}")
        after = client.implies("billing", "MGR[NAME] <= PERSON[NAME]")
        print(f"MGR[NAME] <= PERSON[NAME] ? {after['verdict']} "
              f"(answered at v{after['version']})")
        assert not after["verdict"]
        # 'reporting' shares only compiled artifacts, never premises.
        other = client.implies("reporting", "MGR[NAME] <= PERSON[NAME]")
        assert other["verdict"], "COW sharing must isolate tenants"
        print("tenant 'reporting' still answers True — sharing is COW")

        # ------------------------------------------------------------------
        # Graceful shutdown: drain in-flight work, then exit.
        # ------------------------------------------------------------------
        print(f"\nshutdown: {client.shutdown()}")
    print("server drained and stopped")


if __name__ == "__main__":
    main()
