#!/usr/bin/env python
"""Referential integrity: checking and repairing a database.

INDs are the formal backbone of referential integrity (the paper's
motivation; Date's "referential integrity" paper is cited there).
This example generates a consistent database, injects violations of
both INDs and FDs, locates the violating tuples precisely, and repairs
the instance with the chase.

Run:  python examples/referential_integrity.py
"""

import random

from repro import chase_database
from repro.workloads import (
    library_dependencies,
    library_schema,
    random_database_satisfying,
)


def main() -> None:
    rng = random.Random(7)
    schema = library_schema()
    dependencies = library_dependencies()

    # ------------------------------------------------------------------
    # 1. A consistent starting point.
    # ------------------------------------------------------------------
    db = random_database_satisfying(rng, schema, dependencies)
    print("Consistent database:")
    print(db.describe())
    print("\nAll dependencies hold:", db.satisfies_all(dependencies))

    # ------------------------------------------------------------------
    # 2. Inject violations: a loan of an unknown book, and two titles
    #    for one ISBN.
    # ------------------------------------------------------------------
    broken = db.with_tuples("LOAN", [("isbn-ghost", "member-ghost", "2026-01-01")])
    broken = broken.with_tuples("BOOK", [(next(iter(db["BOOK"]))[0], "Forged Title", "Forged Author")])
    print("\nAfter injecting bad tuples:")
    for dep in dependencies:
        witnesses = dep.violations(broken)
        status = "OK" if not witnesses else f"VIOLATED by {witnesses[:3]}"
        print(f"  {dep}: {status}")

    # ------------------------------------------------------------------
    # 3. Repair with the chase: IND violations are repaired by inserting
    #    the missing referenced tuples (with labelled nulls for unknown
    #    columns).  FD violations between existing constants cannot be
    #    repaired by insertion — the chase reports the conflict instead.
    # ------------------------------------------------------------------
    ind_only = [d for d in dependencies if hasattr(d, "lhs_relation")]
    repaired = chase_database(broken, ind_only)
    print("\nAfter IND repair (chase):")
    print(repaired.describe())
    print("\nINDs now hold:", repaired.satisfies_all(ind_only))

    try:
        chase_database(broken, dependencies)
    except Exception as exc:
        print("\nFull repair fails as it must — the forged title is a hard")
        print(f"FD conflict between constants: {exc}")


if __name__ == "__main__":
    main()
