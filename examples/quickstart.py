#!/usr/bin/env python
"""Quickstart: the paper's manager/employee scenario.

Declares the schema and dependencies from the paper's introduction
("every MANAGER entry of the R relation appears as an EMPLOYEE entry
of the S relation"), checks a concrete database against them, runs
IND inference, and prints a formal IND1-IND3 proof.

Run:  python examples/quickstart.py
"""

from repro import (
    DatabaseSchema,
    ReasoningSession,
    RelationSchema,
    check_proof,
    database,
    decide_ind,
    parse_dependencies,
    parse_dependency,
    prove_ind,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Schema: managers, employees, and people.
    # ------------------------------------------------------------------
    schema = DatabaseSchema.of(
        RelationSchema("MGR", ("NAME", "DEPT")),
        RelationSchema("EMP", ("NAME", "DEPT", "SALARY")),
        RelationSchema("PERSON", ("NAME",)),
    )
    print("Schema:", schema)

    # ------------------------------------------------------------------
    # 2. Dependencies, in the text DSL.
    # ------------------------------------------------------------------
    dependencies = parse_dependencies(
        """
        # every manager is an employee of the department they manage
        MGR[NAME,DEPT] <= EMP[NAME,DEPT]
        # every employee is a person
        EMP[NAME] <= PERSON[NAME]
        # an employee has one department and one salary
        EMP: NAME -> DEPT
        EMP: NAME -> SALARY
        # a department has one manager
        MGR: DEPT -> NAME
        """
    )
    print("\nDeclared dependencies:")
    for dep in dependencies:
        print("  ", dep)

    # ------------------------------------------------------------------
    # 3. Check a concrete database.
    # ------------------------------------------------------------------
    db = database(
        schema,
        {
            "MGR": [("Hilbert", "Math")],
            "EMP": [
                ("Hilbert", "Math", 120),
                ("Noether", "Math", 130),
                ("Turing", "CS", 125),
            ],
            "PERSON": [("Hilbert",), ("Noether",), ("Turing",)],
        },
    )
    print("\nDatabase check:")
    for dep in dependencies:
        print(f"  {dep}: {'OK' if db.satisfies(dep) else 'VIOLATED'}")

    # ------------------------------------------------------------------
    # 4. Inference: is "every manager is a person" implied?
    # ------------------------------------------------------------------
    inds = [d for d in dependencies if hasattr(d, "lhs_relation")]
    target = parse_dependency("MGR[NAME] <= PERSON[NAME]")
    decision = decide_ind(target, inds)
    print(f"\nIs {target} implied?  {decision.implied}")
    print(decision.describe())

    # ------------------------------------------------------------------
    # 5. A formal proof in the complete axiomatization (Theorem 3.1).
    # ------------------------------------------------------------------
    proof = prove_ind(target, inds)
    assert proof is not None
    print("\nFormal proof (IND1 = reflexivity, IND2 = projection &")
    print("permutation, IND3 = transitivity):")
    print(proof)
    print("\nIndependent checker accepts the proof:",
          check_proof(proof, schema, target))

    # Something that should NOT be implied:
    non_target = parse_dependency("EMP[NAME] <= MGR[NAME]")
    print(f"\nIs {non_target} implied?  "
          f"{decide_ind(non_target, inds).implied} (employees need not manage)")

    # ------------------------------------------------------------------
    # 6. The session facade: one object, every engine.
    # ------------------------------------------------------------------
    session = ReasoningSession(schema, dependencies, db=db)
    print("\nReasoningSession:", session)

    report = session.check()
    print(f"database check: {report.satisfied_count}/"
          f"{len(report.results)} dependencies hold")

    print("candidate keys:", {
        name: sorted(sorted(key) for key in keys)
        for name, keys in session.keys().items()
    })

    # Batch implication: premises are indexed once, the expression
    # exploration is shared, and each answer names its engine.
    questions = [
        "MGR[NAME] <= PERSON[NAME]",   # routed to the chase (mixed premises)
        "EMP: NAME -> SALARY",
        "MGR[DEPT] <= EMP[DEPT]",
    ]
    print("\nBatch answers:")
    for answer in session.implies_all(questions):
        print(f"  {answer.target}:  {answer.verdict_word}  "
              f"[{answer.engine.value}]")

    # ------------------------------------------------------------------
    # 7. The premise lifecycle: add/retract/fork/version.
    # ------------------------------------------------------------------
    # Premises evolve in place; every mutation bumps session.version and
    # invalidates only the caches it can actually affect, and every
    # answer is stamped with the version it was computed against.
    ind_session = ReasoningSession(schema, parse_dependencies(
        "MGR[NAME,DEPT] <= EMP[NAME,DEPT]"))
    target = "MGR[NAME] <= PERSON[NAME]"
    print(f"\nLifecycle (v{ind_session.version}): {target} -> "
          f"{ind_session.implies(target).verdict}")
    ind_session.add("EMP[NAME] <= PERSON[NAME]")
    answer = ind_session.implies(target)
    print(f"after add (v{answer.version}): {target} -> {answer.verdict}")
    ind_session.retract("EMP[NAME] <= PERSON[NAME]")
    answer = ind_session.implies(target)
    print(f"after retract (v{answer.version}): {target} -> {answer.verdict}")

    # fork() is a copy-on-write child; whatif() uses it to diff verdicts
    # across a hypothetical change without touching this session.
    print("\nWhat if every employee were a person?")
    for flip in ind_session.whatif(
        [target, "MGR[NAME] <= EMP[NAME]"],
        add="EMP[NAME] <= PERSON[NAME]",
    ):
        marker = "  <- FLIPPED" if flip.flipped else ""
        print(f"  {flip.target}: {flip.before.verdict} -> "
              f"{flip.after.verdict}{marker}")
    print(f"session untouched: v{ind_session.version}, "
          f"{len(ind_session.dependencies)} premise(s)")


if __name__ == "__main__":
    main()
