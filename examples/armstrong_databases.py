#!/usr/bin/env python
"""Armstrong databases: one instance that captures a whole theory.

An Armstrong database satisfies *exactly* the dependencies a given set
implies — the paper's Sections 6 and 7 are hand-built instances, and
the Introduction cites Fagin/Fagin-Vardi for their existence in
general.  This example runs the generic constructive generators:

* `armstrong_relation` for FD sets (gadgets per closed attribute set);
* `armstrong_database` for IND sets (pad saturation — a Rule (*)
  variant that terminates even on cyclic inputs).

Run:  python examples/armstrong_databases.py
"""

from repro import FD, IND, DatabaseSchema, RelationSchema
from repro.core.armstrong_fd import armstrong_relation, is_armstrong_relation
from repro.core.armstrong_ind import armstrong_database, is_armstrong_database
from repro.core.fd_closure import fd_implies
from repro.core.ind_prover import implies_ind
from repro.deps.enumeration import all_fds, all_unary_inds


def fd_side() -> None:
    print("=" * 64)
    print("Armstrong relation for the FD set {A -> B, B -> C} over R[A,B,C]")
    schema = RelationSchema("R", ("A", "B", "C"))
    fds = [FD("R", "A", "B"), FD("R", "B", "C")]
    relation = armstrong_relation(schema, fds)
    print(f"\n{relation}\n")
    assert is_armstrong_relation(relation, fds)
    print("Satisfaction vs implication, over every canonical FD:")
    from repro.model.database import Database
    from repro.model.schema import DatabaseSchema as DS

    db = Database(DS.of(schema), {"R": relation})
    for fd in all_fds(schema, allow_empty_lhs=False):
        holds = db.satisfies(fd)
        implied = fd_implies(fds, fd)
        marker = "==" if holds == implied else "!!"
        print(f"  {str(fd):24s} holds={str(holds):5s} implied={implied} {marker}")


def ind_side() -> None:
    print("\n" + "=" * 64)
    print("Armstrong database for a *cyclic* IND set: {R[A] c R[B]}")
    schema = DatabaseSchema.from_dict({"R": ("A", "B")})
    premises = [IND("R", ("A",), "R", ("B",))]
    db = armstrong_database(schema, premises)
    print(f"\n{db.describe()}\n")
    exact, mismatches = is_armstrong_database(db, premises)
    assert exact, mismatches
    print("Satisfaction vs derivability, over every unary IND:")
    for ind in all_unary_inds(schema, include_trivial=True):
        holds = db.satisfies(ind)
        derivable = implies_ind(premises, ind)
        marker = "==" if holds == derivable else "!!"
        print(f"  {str(ind):22s} holds={str(holds):5s} derivable={derivable} {marker}")
    print("\n(note: a fresh-null chase would diverge on this cycle; the")
    print(" pad-saturation construction terminates because its value")
    print(" pool is finite — the same trick as the paper's Rule (*))")


def section7_side() -> None:
    print("\n" + "=" * 64)
    print("The generic IND generator reproduces Lemma 7.6's database")
    from repro.core.section7 import section7_family

    family = section7_family(2)
    db = armstrong_database(family.schema, family.inds)
    exact, mismatches = is_armstrong_database(db, family.inds, max_arity=2)
    print(f"  relations: {len(list(family.schema))}, INDs: {len(family.inds)}")
    print(f"  generated database: {db.total_tuples()} tuples")
    print(f"  exact over the enumerated IND universe: {exact}")
    assert exact


if __name__ == "__main__":
    fd_side()
    ind_side()
    section7_side()
