#!/usr/bin/env python
"""Crash-safe serving: WAL recovery, deadlines, and retries.

Walks the durability surface added by the crash-safe serving layer:

* a durable tenant registry backed by ``--state-dir`` storage — every
  acknowledged mutation is fsync'd to a per-tenant write-ahead log
  before the caller sees the reply;
* an *unclean* shutdown (no checkpoint) followed by a reboot that
  replays the WAL tail into a verdict-equivalent session, verified by
  ``premise_hash``;
* exactly-once mutations: a retried idempotency key replays the
  recorded acknowledgment instead of applying the patch twice;
* request deadlines that degrade to ``verdict="unknown"`` answers
  (HTTP 200, not an error) when a diverging chase runs out of time;
* the retrying client's backoff knobs.

Run:  python examples/recovery.py
"""

import shutil
import tempfile

from repro.serve import (
    BackgroundServer,
    ServeClient,
    StateDir,
    TenantRegistry,
)

BUNDLE = {
    "schema": {
        "MGR": ["NAME", "DEPT"],
        "EMP": ["NAME", "DEPT"],
        "PERSON": ["NAME"],
    },
    "dependencies": [
        "MGR[NAME,DEPT] <= EMP[NAME,DEPT]",
        "EMP[NAME] <= PERSON[NAME]",
    ],
}
PROBE = "MGR[NAME] <= PERSON[NAME]"

# A premise set whose chase diverges (cyclic unary IND + FD keep
# spinning out fresh nulls) — the demo fodder for deadlines.
DIVERGING = {
    "schema": {"R": ["A", "B"], "T": ["X", "Y"], "U": ["X", "Y"]},
    "dependencies": ["R[B] <= R[A]", "R: A -> B", "T[X,Y] <= U[X,Y]"],
}


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-recovery-")
    try:
        # ------------------------------------------------------------------
        # A durable tenant: every mutation hits the WAL before the ack.
        # ------------------------------------------------------------------
        registry = TenantRegistry(state_dir=StateDir(root))
        tenant = registry.create_from_bundle("app", BUNDLE)
        ack = tenant.mutate("add", ["EMP: NAME -> DEPT"], key="req-1")
        before_hash = tenant.session.premise_hash
        before = tenant.session.implies(PROBE).verdict
        print(f"mutation acknowledged: seq={ack['seq']} "
              f"version={ack['version']}")
        print(f"pre-crash state: hash={before_hash} {PROBE} ? {before}")

        # Crash, not shutdown: file handles drop, no checkpoint runs,
        # so the mutation exists only as a WAL record.
        registry.close()

        # ------------------------------------------------------------------
        # Reboot: snapshot + WAL tail -> the same session, bit for bit.
        # ------------------------------------------------------------------
        rebooted = TenantRegistry(state_dir=StateDir(root))
        tenant = rebooted.get("app")
        print(f"\nrebooted: {rebooted.recovered_tenants} tenant(s), "
              f"{rebooted.replayed_records} WAL record(s) replayed")
        assert tenant.session.premise_hash == before_hash
        assert tenant.session.implies(PROBE).verdict == before
        print(f"post-boot state: hash={tenant.session.premise_hash} "
              f"{PROBE} ? {tenant.session.implies(PROBE).verdict}")

        # A client that never heard the ack retries its key: the WAL
        # replays the recorded result — applied exactly once, even
        # across the restart.
        replay = tenant.mutate("add", ["EMP: NAME -> DEPT"], key="req-1")
        assert replay["idempotent_replay"] is True
        assert replay["seq"] == ack["seq"]
        print(f"keyed retry after reboot: replayed seq={replay['seq']}, "
              f"version still {tenant.session.version}")

        # ------------------------------------------------------------------
        # Deadlines over HTTP: a diverging chase degrades to "unknown".
        # ------------------------------------------------------------------
        with BackgroundServer(rebooted, default_deadline=30.0) as bg:
            # Backoff knobs: 4 retries, 50ms doubling to 2s, jittered.
            client = ServeClient(
                port=bg.port, retries=4,
                backoff_base=0.05, backoff_max=2.0,
            )
            client.create_tenant("spinner", DIVERGING,
                                 options={"max_rounds": 100_000})
            answer = client.implies("spinner", "R: B -> A",
                                    deadline_ms=20)
            print(f"\ndiverging chase with a 20ms deadline: "
                  f"verdict={answer['verdict']} "
                  f"degraded={answer['degraded']} "
                  f"reason={answer['stats']['reason']}")
            assert answer["verdict"] == "unknown"
            assert answer["degraded"] is True

            stats = client.stats()
            print(f"server degraded_answers={stats['degraded_answers']}")
            client.shutdown()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    print("\nrecovery surface: OK")


if __name__ == "__main__":
    main()
