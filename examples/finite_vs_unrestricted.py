#!/usr/bin/env python
"""Theorem 4.4: finite implication differs from unrestricted
implication for FDs and INDs taken together.

With ``Sigma = {R: A -> B, R[A] c R[B]}``:

* every **finite** database satisfying Sigma also satisfies
  ``R[B] c R[A]`` and ``R: B -> A`` (counting arguments);
* the **infinite** relations of Figures 4.1 and 4.2 satisfy Sigma yet
  violate those targets.

This example runs the finite-implication engine on Sigma and exhibits
the symbolic infinite counterexamples, machine-checking both claims.

Run:  python examples/finite_vs_unrestricted.py
"""

from repro import (
    FD,
    IND,
    DatabaseSchema,
    RelationSchema,
    SymbolicDatabase,
    finitely_implies_unary,
    unrestricted_implies_unary,
)
from repro.model import figure_4_1_relation, figure_4_2_relation


def main() -> None:
    schema = DatabaseSchema.of(RelationSchema("R", ("A", "B")))
    sigma = [FD("R", ("A",), ("B",)), IND("R", ("A",), "R", ("B",))]
    target_ind = IND("R", ("B",), "R", ("A",))
    target_fd = FD("R", ("B",), ("A",))

    print("Sigma:")
    for dep in sigma:
        print("  ", dep)

    # ------------------------------------------------------------------
    # 1. Finite implication holds (the counting argument, mechanized).
    # ------------------------------------------------------------------
    print("\nFinite implication (|=fin):")
    print(f"  Sigma |=fin {target_ind}:  {finitely_implies_unary(sigma, target_ind)}")
    print(f"  Sigma |=fin {target_fd}:  {finitely_implies_unary(sigma, target_fd)}")

    # ------------------------------------------------------------------
    # 2. Unrestricted implication fails.
    # ------------------------------------------------------------------
    print("\nUnrestricted implication (|=):")
    print(f"  Sigma |= {target_ind}:  "
          f"{unrestricted_implies_unary(sigma, target_ind)}")
    print(f"  Sigma |= {target_fd}:  "
          f"{unrestricted_implies_unary(sigma, target_fd)}")

    # ------------------------------------------------------------------
    # 3. The witnesses: Figures 4.1 and 4.2, as symbolic infinite
    #    relations with exact satisfaction checking.
    # ------------------------------------------------------------------
    fig41 = SymbolicDatabase(schema, {"R": figure_4_1_relation()})
    print("\nFigure 4.1:", figure_4_1_relation())
    print("  satisfies Sigma:", fig41.satisfies_all(sigma))
    print(f"  satisfies {target_ind}:", fig41.satisfies(target_ind),
          " <- the unrestricted counterexample for part (a)")

    fig42 = SymbolicDatabase(schema, {"R": figure_4_2_relation()})
    print("\nFigure 4.2:", figure_4_2_relation())
    print("  satisfies Sigma:", fig42.satisfies_all(sigma))
    print(f"  satisfies {target_fd}:", fig42.satisfies(target_fd),
          " <- the unrestricted counterexample for part (b)")

    # ------------------------------------------------------------------
    # 4. Contrast: for INDs alone the two notions coincide (Thm 3.1),
    #    as they do for FDs alone — the gap needs the *interaction*.
    # ------------------------------------------------------------------
    print("\nContrast: INDs alone.")
    only_ind = [IND("R", ("A",), "R", ("B",))]
    print(f"  {only_ind[0]} |=fin {target_ind}: "
          f"{finitely_implies_unary(only_ind, target_ind)}")
    print(f"  {only_ind[0]} |= {target_ind}:    "
          f"{unrestricted_implies_unary(only_ind, target_ind)}")
    print("  (equal answers — no finite/unrestricted gap without FDs)")


if __name__ == "__main__":
    main()
