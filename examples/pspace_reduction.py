#!/usr/bin/env python
"""Theorem 3.3 end to end: LBA acceptance as IND implication.

Builds a nondeterministic linear bounded automaton, runs it directly,
reduces (machine, input) to an IND implication instance, decides that
instance with the Corollary 3.2 procedure, and decodes the witness
chain back into the machine's computation — the two sides must agree,
in both directions.

Run:  python examples/pspace_reduction.py
"""

from repro.lba import (
    accepts,
    even_length_machine,
    looping_machine,
    reduce_to_inds,
    verify_reduction,
)


def main() -> None:
    machine = even_length_machine()
    print(machine.describe())

    # ------------------------------------------------------------------
    # 1. Direct simulation.
    # ------------------------------------------------------------------
    for word in ("aa", "aaa", "aaaa", "aaaaa", "aaaaaa"):
        result = accepts(machine, word)
        print(f"  {word}: {'accept' if result.accepted else 'reject'} "
              f"({result.explored} configurations)")

    # ------------------------------------------------------------------
    # 2. The reduction, spelled out for one input.
    # ------------------------------------------------------------------
    word = "aaaa"
    instance = reduce_to_inds(machine, word)
    print(f"\nReduction for input {word!r}:")
    for key, value in instance.size_report().items():
        print(f"  {key}: {value}")
    print(f"\n  target IND sigma:\n    {instance.target}")
    print(f"\n  first of the {len(instance.premises)} premise INDs S(m, j):")
    print(f"    {instance.premises[0]}")

    # ------------------------------------------------------------------
    # 3. Decide the IND instance; decode the chain into a computation.
    # ------------------------------------------------------------------
    verification = verify_reduction(machine, word)
    print(f"\n{verification}")
    print("\nIND witness chain, decoded into machine configurations:")
    for step, config in enumerate(verification.computation_from_chain()):
        print(f"  {step:3d}: {' '.join(config)}")

    # ------------------------------------------------------------------
    # 4. Both rejecting directions: odd input, and a machine that loops.
    # ------------------------------------------------------------------
    print()
    print(verify_reduction(machine, "aaa"))
    print(verify_reduction(looping_machine(), "aaaa"))


if __name__ == "__main__":
    main()
