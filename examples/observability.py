#!/usr/bin/env python
"""Observability quickstart: metrics, traces, and the debug ring.

Starts a *durable* primary with one follower (so every layer that
records a span has work to do), drives traffic, and reads the whole
observability surface back out:

* ``GET /metrics`` — Prometheus text exposition, and the same data as
  JSON (what ``repro top`` polls);
* ``?trace=1`` — the per-request span waterfall echoed inline:
  ``parse``, coalescer ``decide``/``coalesce-wait`` (payer
  attribution), ``mutate``, ``wal-fsync``, and one ``ship`` span per
  follower forward;
* trace-id propagation — the id stamped on the primary's WAL record
  rides the replication envelope into the follower's applied copy;
* ``GET /debug/traces`` — the slowest recent requests, ring-buffered;
* client transport counters and per-call wall time.

Run:  python examples/observability.py
"""

import json
import http.client
import tempfile

from repro.serve import BackgroundServer, ServeClient, TenantRegistry
from repro.serve.wal import StateDir

BUNDLE = {
    "schema": {
        "MGR": ["NAME", "DEPT"],
        "EMP": ["NAME", "DEPT"],
        "PERSON": ["NAME"],
    },
    "dependencies": [
        "MGR[NAME,DEPT] <= EMP[NAME,DEPT]",
        "EMP: NAME -> DEPT",
        "EMP[NAME] <= PERSON[NAME]",
    ],
}
PROBE = "MGR[NAME] <= PERSON[NAME]"


def raw(port, method, path, body=None, headers=None):
    """One HTTP round trip below ServeClient — custom headers, raw text."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.read().decode()
    finally:
        conn.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-obs-") as root:
        registry = TenantRegistry(state_dir=StateDir(f"{root}/primary"))
        with BackgroundServer(registry=registry) as primary:
            client = ServeClient(port=primary.port)
            client.create_tenant("app", BUNDLE)
            with BackgroundServer(
                replica_of=f"127.0.0.1:{primary.port}",
                registry=TenantRegistry(
                    state_dir=StateDir(f"{root}/follower")
                ),
                heartbeat=0.05,
            ) as follower:
                while not primary.server.replication.followers:
                    pass  # follower registers within one heartbeat
                run_demo(primary, follower, client)


def run_demo(primary, follower, client) -> None:
    # Traffic first, so there is something to measure.
    for _ in range(5):
        client.implies("app", PROBE)
    client.whatif("app", retract=["EMP[NAME] <= PERSON[NAME]"],
                  targets=[PROBE])

    # ------------------------------------------------------------------
    # A traced durable mutation: the span waterfall, echoed inline.
    # ------------------------------------------------------------------
    status, body = raw(
        primary.port,
        "POST",
        "/tenants/app/add?trace=1",
        body={"dependencies": ["PERSON[NAME] <= EMP[NAME]"]},
        headers={"X-Trace-Id": "cafe0123beef4567"},
    )
    assert status == 200
    trace = json.loads(body)["trace"]
    print(f"trace {trace['trace_id']}  "
          f"total {trace['duration_ms']:.2f}ms  span waterfall:")
    for span in trace["spans"]:
        detail = {k: v for k, v in span.items()
                  if k not in ("span", "offset_ms", "duration_ms")}
        print(f"  +{span['offset_ms']:7.2f}ms  {span['span']:<12} "
              f"{span['duration_ms']:7.2f}ms  {detail or ''}")

    # The trace id survives the WAL record and the replication stream.
    [record] = primary.server.registry.tenants["app"].store.read_from(0)
    [applied] = follower.server.registry.tenants["app"].store.read_from(0)
    print(f"\nprimary WAL record seq={record['seq']} "
          f"trace={record['trace']}")
    print(f"follower applied     seq={applied['seq']} "
          f"trace={applied['trace']}")
    assert applied["trace"] == trace["trace_id"]

    # ------------------------------------------------------------------
    # The metrics surface: Prometheus text, and the JSON twin.
    # ------------------------------------------------------------------
    _, exposition = raw(primary.port, "GET", "/metrics")
    interesting = ("repro_requests_total", "repro_wal_fsync_seconds_count",
                   "repro_request_seconds_count")
    print("\nGET /metrics (excerpt):")
    for line in exposition.splitlines():
        if line.startswith(interesting):
            print(f"  {line}")

    metrics = client.request("GET", "/metrics?format=json")
    print(f"\nGET /metrics?format=json: {len(metrics['counters'])} counters, "
          f"{len(metrics['gauges'])} gauges, "
          f"{len(metrics['histograms'])} histograms")
    implies_hist = metrics["histograms"]['repro_request_seconds{op="implies"}']
    print(f"  implies latency: count={implies_hist['count']} "
          f"p50={implies_hist['p50']*1e3:.2f}ms "
          f"p99={implies_hist['p99']*1e3:.2f}ms")

    # ------------------------------------------------------------------
    # The debug ring: slowest recent requests, waterfalls included.
    # ------------------------------------------------------------------
    ring = client.request("GET", "/debug/traces?limit=2")
    print(f"\nGET /debug/traces: {ring['recorded']} recorded, "
          f"slowest {len(ring['traces'])}:")
    for entry in ring["traces"]:
        spans = ", ".join(span["span"] for span in entry["spans"])
        print(f"  {entry['trace_id']}  {entry['duration_ms']:7.2f}ms  "
              f"[{spans}]")

    # ------------------------------------------------------------------
    # The client measures itself too.
    # ------------------------------------------------------------------
    transport = client.transport_stats()
    print(f"\nclient transport: {transport['requests_sent']} sent, "
          f"{transport['retried']} retried, "
          f"last call {transport['last_call_seconds']*1e3:.2f}ms")
    print("\nobservability surface: OK")


if __name__ == "__main__":
    main()
