"""E6 — Propositions 4.1-4.3: FD/IND interaction, rule vs chase.

Regenerates the section's derivations two ways: the specialized
inference rules (constant-time shape analysis) and the general chase
re-deriving the same conclusions semantically.
"""

import pytest

from repro.core.fdind_chase import chase_implies
from repro.core.interaction import derive_rd, merge_inds, pullback_fd
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.rd import RD
from repro.model.schema import DatabaseSchema


SCHEMA = DatabaseSchema.from_dict(
    {"R": ("X", "Y", "Z"), "S": ("T", "U", "V")}
)
IND_XY = IND("R", ("X", "Y"), "S", ("T", "U"))
IND_XZ = IND("R", ("X", "Z"), "S", ("T", "V"))
IND_XZ_SAME = IND("R", ("X", "Z"), "S", ("T", "U"))
FD_TU = FD("S", ("T",), ("U",))


def test_rule_41_pullback(benchmark):
    derived = benchmark(lambda: pullback_fd(IND_XY, FD_TU))
    assert derived == FD("R", ("X",), ("Y",))


def test_chase_41_pullback(benchmark):
    cert = benchmark(
        lambda: chase_implies(SCHEMA, [IND_XY, FD_TU], FD("R", ("X",), ("Y",)))
    )
    assert cert.implied


def test_rule_42_merge(benchmark):
    derived = benchmark(lambda: merge_inds(IND_XY, IND_XZ, FD_TU))
    assert derived == IND("R", ("X", "Y", "Z"), "S", ("T", "U", "V"))


def test_chase_42_merge(benchmark):
    target = IND("R", ("X", "Y", "Z"), "S", ("T", "U", "V"))
    cert = benchmark(
        lambda: chase_implies(SCHEMA, [IND_XY, IND_XZ, FD_TU], target)
    )
    assert cert.implied


def test_rule_43_rd(benchmark):
    derived = benchmark(lambda: derive_rd(IND_XY, IND_XZ_SAME, FD_TU))
    assert derived == RD("R", ("Y",), ("Z",))


def test_chase_43_rd(benchmark):
    cert = benchmark(
        lambda: chase_implies(
            SCHEMA, [IND_XY, IND_XZ_SAME, FD_TU], RD("R", ("Y",), ("Z",))
        )
    )
    assert cert.implied


def test_chase_rejects_without_fd(benchmark):
    """Control: the RD is NOT implied without the FD premise."""
    cert = benchmark(
        lambda: chase_implies(
            SCHEMA, [IND_XY, IND_XZ_SAME], RD("R", ("Y",), ("Z",))
        )
    )
    assert not cert.implied
