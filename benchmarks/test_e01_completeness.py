"""E1 — Theorem 3.1: the three decision routes, cross-validated.

Regenerates the paper's completeness statement as a measurement: the
syntactic prover (|-), the Rule (*) database (|=fin), and proof
checking all process the same random workloads and must agree.
"""

import random

import pytest

from repro.core.ind_axioms import check_proof
from repro.core.ind_chase import decide_by_rule_star
from repro.core.ind_decision import decide_ind
from repro.core.ind_prover import prove_ind
from repro.workloads.random_deps import random_implication_instance

WORKLOAD_SEEDS = list(range(40))


def _workload():
    instances = []
    for seed in WORKLOAD_SEEDS:
        rng = random.Random(seed)
        instances.append(random_implication_instance(rng))
    return instances


@pytest.fixture(scope="module")
def workload():
    return _workload()


def test_syntactic_decision(benchmark, workload):
    """|-: Corollary 3.2 reachability over the whole workload."""

    def run():
        return [decide_ind(target, premises).implied
                for _schema, premises, target in workload]

    answers = benchmark(run)
    assert any(answers) and not all(answers)


def test_rule_star_decision(benchmark, workload):
    """|=fin: the Rule (*) canonical database, same workload."""

    def run():
        return [
            decide_by_rule_star(target, premises, schema)
            for schema, premises, target in workload
        ]

    answers = benchmark(run)
    syntactic = [
        decide_ind(target, premises).implied
        for _schema, premises, target in workload
    ]
    assert answers == syntactic  # Theorem 3.1: |- == |=fin


def test_proof_construction_and_checking(benchmark, workload):
    """Constructive completeness: build + verify proofs for the
    implied instances."""
    positives = [
        (schema, premises, target)
        for schema, premises, target in workload
        if decide_ind(target, premises).implied
    ]

    def run():
        count = 0
        for schema, premises, target in positives:
            proof = prove_ind(target, premises)
            assert check_proof(proof, schema, target)
            count += 1
        return count

    checked = benchmark(run)
    assert checked == len(positives) > 0
