"""E4 — Theorem 3.3: the PSPACE reduction, measured.

Regenerates the reduction-size table (|Sigma|, arity vs n) and times
both sides — direct LBA simulation and the reduced IND decision — on
the machine suite, asserting agreement everywhere.
"""

import pytest

from repro.lba.acceptance import accepts
from repro.lba.examples import (
    contains_b_machine,
    even_length_machine,
    looping_machine,
)
from repro.lba.reduction import reduce_to_inds, verify_reduction


@pytest.mark.parametrize("n", [3, 5, 7, 9])
def test_direct_simulation(benchmark, n):
    machine = even_length_machine()
    word = "a" * n
    result = benchmark(lambda: accepts(machine, word))
    assert result.accepted == (n % 2 == 0)


@pytest.mark.parametrize("n", [3, 5, 7, 9])
def test_reduced_ind_decision(benchmark, n):
    machine = even_length_machine()
    word = "a" * n
    instance = reduce_to_inds(machine, word)
    decision = benchmark(lambda: instance.decide())
    assert decision.implied == (n % 2 == 0)


@pytest.mark.parametrize("n", [4, 6, 8, 12, 16])
def test_reduction_construction_size(benchmark, n):
    """The reduction itself is polynomial: |Sigma| = rules x (n-1),
    arity = |K u Gamma| x (n+1)."""
    machine = even_length_machine()
    word = "a" * n
    instance = benchmark(lambda: reduce_to_inds(machine, word))
    report = instance.size_report()
    assert report["ind_count"] == len(machine.rules) * (n - 1)
    assert report["relation_arity"] == len(machine.symbols) * (n + 1)


@pytest.mark.parametrize(
    "maker,word,expected",
    [
        (contains_b_machine, "aab", True),
        (contains_b_machine, "aaaa", False),
        (looping_machine, "aaaa", False),
        (even_length_machine, "aaaaaa", True),
    ],
)
def test_full_verification(benchmark, maker, word, expected):
    machine = maker()
    verification = benchmark(lambda: verify_reduction(machine, word))
    assert verification.agree
    assert verification.decision.implied == expected
