"""E8 — Theorem 5.1's closure machinery, measured.

Regenerates the k-ary closure analyses: closure computation over
enumerated universes and the exhaustive <=k-subset violation search
that underlies the Section 6/7 certificates.
"""

import pytest

from repro.core.armstrong6 import cycle_family, gamma_6, make_finite_oracle
from repro.core.fd_closure import fd_implies
from repro.core.kary import (
    find_kary_violation,
    implication_closure,
    is_closed_under_implication,
)
from repro.deps.enumeration import all_fds, dependency_universe
from repro.deps.fd import FD
from repro.model.schema import RelationSchema


def fd_oracle(premises, target):
    return fd_implies(list(premises), target)


def test_fd_closure_over_universe(benchmark):
    schema = RelationSchema("R", ("A", "B", "C", "D"))
    universe = list(all_fds(schema, include_trivial=True, allow_empty_lhs=False))
    sigma = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",)),
             FD("R", ("C",), ("D",))]
    closure = benchmark(lambda: implication_closure(sigma, universe, fd_oracle))
    assert FD("R", ("A",), ("D",)) in closure
    assert is_closed_under_implication(closure, universe, fd_oracle)


@pytest.mark.parametrize("k", [1, 2])
def test_gamma6_kary_violation_search(benchmark, k):
    """The exhaustive Theorem 5.1 check on Section 6's Gamma: no
    <=k-subset implies anything outside Gamma."""
    family = cycle_family(k)
    gamma = gamma_6(family)
    universe = dependency_universe(family.schema, include_trivial=True)
    oracle = make_finite_oracle(k)
    violation = benchmark(
        lambda: find_kary_violation(gamma, universe, k, oracle)
    )
    assert violation is None


@pytest.mark.parametrize("k", [1, 2, 3])
def test_universe_enumeration_cost(benchmark, k):
    family = cycle_family(k)
    universe = benchmark(
        lambda: dependency_universe(family.schema, include_trivial=True)
    )
    # Universe grows quadratically with the number of relations.
    assert len(universe) > (k + 1) ** 2
