"""E14 — closure and cover tooling over growing schemas.

Regenerates the design-facing analyses of the paper's Introduction
(INDs "permit us to selectively define what data must be duplicated"):
closure computation, redundancy detection, and minimal covers scale
with the schema.
"""

import random

import pytest

from repro.core.ind_closure import (
    implied_inds,
    minimal_ind_cover,
    redundant_inds,
)
from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.workloads.random_deps import random_inds, random_schema


def chain_with_shortcuts(length: int):
    schema = DatabaseSchema(
        RelationSchema(f"R{i}", ("A", "B")) for i in range(length + 1)
    )
    premises = [
        IND(f"R{i}", ("A",), f"R{i+1}", ("A",)) for i in range(length)
    ]
    # Redundant shortcuts.
    premises += [
        IND(f"R{i}", ("A",), f"R{i+2}", ("A",)) for i in range(0, length - 1, 2)
    ]
    return schema, premises


@pytest.mark.parametrize("length", [4, 8, 16])
def test_closure_computation(benchmark, length):
    schema, premises = chain_with_shortcuts(length)
    closure = benchmark(lambda: implied_inds(premises, schema, max_arity=1))
    # Transitive consequences: every forward pair is implied.
    assert IND("R0", ("A",), f"R{length}", ("A",)) in closure


@pytest.mark.parametrize("length", [4, 8, 16])
def test_minimal_cover(benchmark, length):
    schema, premises = chain_with_shortcuts(length)
    cover = benchmark(lambda: minimal_ind_cover(premises))
    # All shortcuts drop; the backbone stays.
    assert len(cover) == length


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_redundancy_scan_random(benchmark, seed):
    rng = random.Random(seed)
    schema = random_schema(rng, n_relations=4, max_arity=3)
    premises = random_inds(rng, schema, count=10, max_arity=2)
    redundant = benchmark(lambda: redundant_inds(premises))
    assert isinstance(redundant, list)
