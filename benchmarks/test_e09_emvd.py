"""E9 — Theorem 5.3: the Sagiv-Walecka EMVD family, measured.

Regenerates Corollary 5.2's three conditions for the SW family: the
full-cycle derivation (chase), the single-member refutations, and the
subset sweep of condition (iii).
"""

import pytest

from repro.core.emvd_chase import (
    emvd_chase,
    emvd_implies,
    sagiv_walecka_family,
    theorem_5_3_report,
)


@pytest.mark.parametrize("k", [2, 3, 4])
def test_full_cycle_derivation(benchmark, k):
    family = sagiv_walecka_family(k)
    answer = benchmark(
        lambda: emvd_chase(family.schema, family.sigma, family.target)
    )
    assert answer is True


@pytest.mark.parametrize("k", [2, 3])
def test_single_member_refutations(benchmark, k):
    family = sagiv_walecka_family(k)

    def run():
        return [
            emvd_implies(family.schema, [member], family.target).implied
            for member in family.sigma
        ]

    answers = benchmark(run)
    assert answers == [False] * (k + 1)


def test_condition_iii_sweep_k2(benchmark):
    report = benchmark(lambda: theorem_5_3_report(2, max_universe=40))
    assert report.establishes_theorem, str(report)
