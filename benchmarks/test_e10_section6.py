"""E10 — Theorem 6.1 and Figure 6.1, measured.

Regenerates the Section 6 artifacts for a sweep of k: the Armstrong
database (Figure 6.1), the full claim-(6.1) model check over the
enumerated universe, and the assembled Theorem 6.1 report.
"""

import pytest

from repro.core.armstrong6 import (
    cycle_family,
    figure_6_1,
    theorem_6_1_report,
    verify_claim_6_1,
)
from repro.core.finite_unary import finitely_implies_unary


@pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
def test_figure_6_1_generation(benchmark, k):
    db = benchmark(lambda: figure_6_1(k))
    # r_i has 2i + 3 tuples; total = sum = (k+1)(k+3) ... check r_k.
    assert len(db[f"R{k}"]) == 2 * k + 3


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_claim_6_1_model_check(benchmark, k):
    report = benchmark(lambda: verify_claim_6_1(k))
    assert report.holds


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_theorem_6_1_full_report(benchmark, k):
    report = benchmark(lambda: theorem_6_1_report(k))
    assert report.establishes_theorem


@pytest.mark.parametrize("k", [2, 8, 32])
def test_cycle_implication_cost(benchmark, k):
    """Cost of the finite-implication answer Sigma |=fin sigma as the
    cycle grows (the counting argument, algorithmically)."""
    family = cycle_family(k)
    answer = benchmark(
        lambda: finitely_implies_unary(family.dependencies, family.sigma)
    )
    assert answer
