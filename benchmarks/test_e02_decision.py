"""E2 — the Corollary 3.2 procedure's cost profile.

Regenerates the decision-procedure analysis: cost grows with the
length of the witness chain (number of step-(2) applications) and with
the size of the reachable expression set Z.
"""

import pytest

from repro.core.ind_decision import decide_ind, reachable_expressions
from repro.deps.ind import IND


def chain_instance(length: int):
    """R0[A] c R1[B] c ... c RL[B]: witness chain of ``length`` steps."""
    premises = [
        IND(f"R{i}", ("A",) if i == 0 else ("B",), f"R{i+1}", ("B",))
        for i in range(length)
    ]
    target = IND("R0", ("A",), f"R{length}", ("B",))
    return premises, target


@pytest.mark.parametrize("length", [4, 16, 64, 256])
def test_chain_decision(benchmark, length):
    premises, target = chain_instance(length)
    result = benchmark(lambda: decide_ind(target, premises))
    assert result.implied
    assert result.chain_length == length + 1


def star_instance(fanout: int):
    """One source included in ``fanout`` targets; query an absent one."""
    premises = [
        IND("R", ("A",), f"S{i}", ("B",)) for i in range(fanout)
    ]
    target = IND("R", ("A",), "T", ("B",))
    return premises, target


@pytest.mark.parametrize("fanout", [8, 64, 512])
def test_negative_decision_explores_closure(benchmark, fanout):
    premises, target = star_instance(fanout)
    result = benchmark(lambda: decide_ind(target, premises))
    assert not result.implied
    assert result.explored == fanout + 1  # the start plus every branch


@pytest.mark.parametrize("width", [2, 3, 4])
def test_z_closure_size_under_permutations(benchmark, width):
    """The full-orbit Z-set of a permutation premise (the paper's
    deterministic worst case: Z collects every permuted expression)."""
    attrs = tuple(f"A{i}" for i in range(width))
    rotated = attrs[1:] + attrs[:1]
    swap = (attrs[1], attrs[0]) + attrs[2:]
    premises = [
        IND("R", attrs, "R", rotated),
        IND("R", attrs, "R", swap),
    ]
    closure = benchmark(
        lambda: reachable_expressions(("R", attrs), premises)
    )
    # Rotation + transposition generate the full symmetric group.
    import math

    assert len(closure) == math.factorial(width)
