"""E18 — the SCC-condensed bitset closure index for IND implication.

This PR amortizes reachability across queries: a session's premise
index owns a compiled :class:`~repro.core.reach_index.ReachIndex`
(Tarjan condensation + per-component reachable-set bitsets), so a
``decide_ind`` for an already-compiled source is a bitset membership
test instead of a fresh BFS.  Acceptance criteria, asserted against
real code in the same process:

* ``repeated_decide_hot`` (10k mixed hit/miss ``implies`` calls on one
  500-premise session) must be >=5x faster than the PR-3 kernel BFS
  over the identical query stream — the in-process ratio is its own
  calibration (both sides share one interpreter and one machine, so
  machine speed divides out exactly as in
  :func:`repro.bench.compare_reports`' normalization);
* verdicts and witness chains stay identical to both retained oracles
  after arbitrary add/retract sequences (also pinned on random
  schemas by ``tests/properties/test_property_reach.py``);
* the committed trajectory file carries per-commit history for the
  regression gate.
"""

import json
import os

import pytest

from repro import bench
from repro.core.ind_decision import chain_is_valid, decide_ind, decide_ind_naive
from repro.deps.ind import IND
from repro.engine import ReasoningSession

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED_TRAJECTORY = os.path.join(REPO_ROOT, bench.COMMITTED_TRAJECTORY)


@pytest.mark.artifact("reach-serving")
def test_repeated_decide_hot_at_least_5x_faster_than_kernel_bfs():
    """Acceptance criterion: the hot serving loop >=5x the PR-3 kernel
    BFS on a 500-premise session (identical queries, both warm)."""
    schema, premises, pool = bench.serving_workload()
    session = ReasoningSession(schema, premises)
    calls = 2_000  # enough to swamp timer noise, cheap enough for CI
    queries = [pool[i % len(pool)] for i in range(calls)]
    session.implies_all(pool)  # both sides warm: index compiled...
    kernels = session.index.ind_kernels
    for target in pool:
        decide_ind(target, kernels)  # ...and kernel edge memos hot

    def hot():
        implies = session.implies
        for target in queries:
            implies(target)

    def bfs():
        for target in queries:
            decide_ind(target, kernels)

    hot_cost = bench.best_seconds(hot, repeats=3)
    bfs_cost = bench.best_seconds(bfs, repeats=3)
    speedup = bfs_cost / hot_cost
    assert speedup >= 5.0, (
        f"indexed serving must be >=5x the kernel BFS, got {speedup:.1f}x "
        f"({hot_cost/calls*1e6:.1f}us vs {bfs_cost/calls*1e6:.1f}us per call)"
    )


@pytest.mark.artifact("reach-serving")
def test_verdicts_and_chains_survive_add_retract_sequences():
    """Acceptance criterion: after an arbitrary add/retract sequence
    the index agrees with both oracles, chain for chain."""
    schema, premises, pool = bench.serving_workload()
    session = ReasoningSession(schema, premises)
    live = list(premises)
    extra = [
        IND("R99", ("A", "B"), "QUIET", ("A", "B")),
        IND("QUIET", ("A",), "R0", ("A",)),
        IND("R50", ("C",), "R0", ("C",)),
    ]
    script = [
        ("add", extra[0]),
        ("add", extra[1]),
        ("retract", premises[10]),
        ("retract", extra[0]),
        ("add", extra[2]),
        ("retract", premises[0]),
    ]
    for op, dep in script:
        if op == "add":
            session.add(dep)
            live.append(dep)
        else:
            session.retract(dep)
            live.remove(dep)
        for target in pool:
            answer = session.implies(target)
            naive = decide_ind_naive(target, list(live))
            kernel = decide_ind(target, bench.KernelIndex(live))
            assert answer.verdict == naive.implied == kernel.implied, (
                f"verdict drift on {target} after {op} {dep}"
            )
            if answer.verdict:
                certificate = answer.certificate
                assert certificate.chain == kernel.chain == naive.chain
                assert chain_is_valid(
                    target, certificate.chain, certificate.links
                )


@pytest.mark.artifact("reach-serving")
def test_hot_stream_compiles_at_most_once_per_component():
    """The amortization claim itself: 10k calls, zero recompiles after
    the warmup, every post-warmup answer a cache hit."""
    schema, premises, pool = bench.serving_workload()
    session = ReasoningSession(schema, premises)
    session.implies_all(pool)
    compiles = session.index.reach_index.compiles
    hits_before = session.cache_hits
    for i in range(1_000):
        session.implies(pool[i % len(pool)])
    assert session.index.reach_index.compiles == compiles
    assert session.cache_hits == hits_before + 1_000


@pytest.mark.artifact("bench-trajectory")
def test_committed_trajectory_has_history():
    """BENCH_trajectory.json is committed, is a list, and every entry
    carries what the regression gate and trend-readers consume."""
    assert os.path.exists(COMMITTED_TRAJECTORY), (
        f"{bench.COMMITTED_TRAJECTORY} missing; append a run with "
        f"`python -m repro bench --trajectory {bench.COMMITTED_TRAJECTORY}`"
    )
    with open(COMMITTED_TRAJECTORY, encoding="utf-8") as fp:
        entries = json.load(fp)
    assert isinstance(entries, list) and entries
    for entry in entries:
        assert entry["commit"]
        assert entry["created"]
        assert entry["calibration_seconds"] > 0
        assert entry["workloads"]
    # The newest entry covers the full current suite and doubles as
    # the gate baseline.
    assert set(entries[-1]["workloads"]) == set(bench.WORKLOADS)
    assert bench.baseline_from(entries) == entries[-1]


@pytest.mark.artifact("bench-trajectory")
def test_append_trajectory_round_trips(tmp_path):
    """``--trajectory`` appends entries without losing history."""
    report = {
        "created": "2026-01-01T00:00:00+00:00",
        "suite": bench.SUITE,
        "calibration_seconds": 0.01,
        "workloads": {"w": {"seconds": 0.5}},
    }
    path = tmp_path / "BENCH_trajectory.json"
    first = bench.append_trajectory(report, str(path), commit="aaa1111")
    second = bench.append_trajectory(report, str(path), commit="bbb2222")
    assert len(first) == 1 and len(second) == 2
    loaded = bench.load_report(str(path))
    assert [entry["commit"] for entry in loaded] == ["aaa1111", "bbb2222"]
    assert bench.baseline_from(loaded)["commit"] == "bbb2222"
    # A non-list file refuses to masquerade as a trajectory.
    bad = tmp_path / "report.json"
    bench.write_report(report, str(bad))
    with pytest.raises(ValueError):
        bench.append_trajectory(report, str(bad))


@pytest.mark.artifact("reach-serving")
def test_timed_repeated_decide_hot(benchmark):
    """Timed artifact: one hot indexed decision (mixed pool)."""
    schema, premises, pool = bench.serving_workload()
    session = ReasoningSession(schema, premises)
    session.implies_all(pool)
    cycle = iter(range(10**9))

    def one_call():
        return session.implies(pool[next(cycle) % len(pool)])

    benchmark(one_call)
    assert session.index.reach_index.compiles == 2
