"""E22 — replicated serving: read scale-out and automatic failover.

This PR gives the serving layer replication: followers bootstrap from
the primary's snapshot, apply its WAL stream record-by-record, serve
lag-bounded reads, and promote themselves behind a ``term`` fence when
the primary dies.  Acceptance criteria, asserted against real servers
in the same process:

* aggregate read throughput with **two followers** must be at least
  **2x** the single-node ceiling, measured with the ``latency:hold``
  fault emulating per-request service time on every node (so the
  number reflects the architecture, not this machine's core count);
* a :class:`~repro.serve.client.FailoverClient` mutation issued the
  moment the primary vanishes must be acknowledged by a promoted
  follower within the heartbeat budget, and the measured
  ``failover_ms`` is recorded;
* the committed ``BENCH_e22.json`` and the last
  ``BENCH_trajectory.json`` entry record the ``replicated_serving``
  workload with both numbers.
"""

import json
import os

import pytest

from repro import bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED_REPORT = os.path.join(REPO_ROOT, bench.COMMITTED_BASELINE)
COMMITTED_TRAJECTORY = os.path.join(REPO_ROOT, bench.COMMITTED_TRAJECTORY)


@pytest.mark.artifact("replication-scaleout")
def test_two_followers_at_least_double_read_throughput():
    """Acceptance criterion: follower read scale-out and failover,
    measured live against real HTTP servers."""
    result = bench.bench_replicated_serving(repeats=1)
    meta = result.meta
    assert meta["followers"] == 2
    assert meta["read_speedup"] >= 2.0, (
        f"2 followers must at least double aggregate read throughput, "
        f"got {meta['read_speedup']:.2f}x (single "
        f"{meta['single_node_seconds']*1e3:.0f}ms vs fleet "
        f"{meta['fleet_seconds']*1e3:.0f}ms)"
    )
    # The failover phase promoted the follower (term advanced past the
    # primary's 0) and the first post-death mutation was acknowledged
    # within the heartbeat budget, with real margin for detection,
    # promotion, and client re-resolution.
    assert meta["promoted_term"] == 1
    assert 0 < meta["failover_ms"] < 10_000


@pytest.mark.artifact("replication-report")
def test_committed_report_records_the_replication_suite():
    """BENCH_e22.json is committed, names the e22 suite, and records
    the read scale-out plus a measured failover time."""
    assert os.path.exists(COMMITTED_REPORT), (
        f"{bench.COMMITTED_BASELINE} missing; record it with "
        f"`python -m repro bench --out {bench.COMMITTED_BASELINE}`"
    )
    with open(COMMITTED_REPORT, encoding="utf-8") as fp:
        report = json.load(fp)
    assert report["suite"] == bench.SUITE
    assert set(report["workloads"]) == set(bench.WORKLOADS)
    meta = report["workloads"]["replicated_serving"]["meta"]
    assert meta["read_speedup"] >= 2.0
    assert meta["failover_ms"] > 0


@pytest.mark.artifact("replication-report")
def test_trajectory_still_records_the_replication_workload():
    """The committed perf history's newest entry carries the
    replicated-serving numbers, so the regression gate baselines
    against them."""
    with open(COMMITTED_TRAJECTORY, encoding="utf-8") as fp:
        trajectory = json.load(fp)
    assert isinstance(trajectory, list) and trajectory
    last = trajectory[-1]
    assert "replicated_serving" in last["workloads"]
    assert last["workloads"]["replicated_serving"]["meta"]["read_speedup"] > 1
