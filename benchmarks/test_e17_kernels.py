"""E17 — compiled kernels for the three decision engines.

This PR compiles the hot paths: premise kernels for the Corollary 3.2
BFS (dict-lookup successors, deferred ChainLink allocation, shared
compilation), the linear-time [BB] counter closure for FDs, and a
delta-driven semi-naive chase.  The naive formulations are retained
(``decide_ind_naive``, ``attribute_closure_naive``, the ``"naive"``
chase strategy), so the acceptance criteria are asserted against real
code in the same process:

* the single-decision microbenchmark must be >=3x faster than the
  naive BFS;
* chase-to-fixpoint must be >=2x faster than the naive rescan;
* ``repro bench`` must produce the committed baseline report
  (``BENCH_e18.json`` since E18) and its baseline comparison must
  gate regressions.
"""

import json
import os

import pytest

from repro import bench
from repro.core.fdind_chase import ChaseEngine
from repro.core.ind_decision import decide_ind, decide_ind_naive, index_by_lhs
from repro.core.ind_kernel import KernelIndex

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED_REPORT = os.path.join(REPO_ROOT, bench.COMMITTED_BASELINE)


@pytest.mark.artifact("kernel-decision")
def test_single_decision_at_least_3x_faster_than_naive():
    """Acceptance criterion: the kernel BFS >=3x the naive BFS on the
    500-premise decision workload (prebuilt indexes on both sides)."""
    _schema, premises, target, _targets = bench.decision_workload()
    kernels = KernelIndex(premises)
    naive_index = index_by_lhs(premises)

    fast = decide_ind(target, kernels)
    slow = decide_ind_naive(target, naive_index)
    assert fast.implied == slow.implied == False  # noqa: E712 - explicit
    assert fast.explored == slow.explored

    kernel_cost = bench.best_seconds(lambda: decide_ind(target, kernels))
    naive_cost = bench.best_seconds(
        lambda: decide_ind_naive(target, naive_index)
    )
    speedup = naive_cost / kernel_cost
    assert speedup >= 3.0, (
        f"kernel decision must be >=3x the naive BFS, got {speedup:.1f}x "
        f"({kernel_cost*1e6:.0f}us vs {naive_cost*1e6:.0f}us)"
    )


@pytest.mark.artifact("kernel-chase")
def test_chase_to_fixpoint_at_least_2x_faster_than_naive():
    """Acceptance criterion: semi-naive chase >=2x the naive rescan on
    the chain workload (equal rounds and equal final instance size)."""
    schema, deps, build_instance = bench.chase_workload()
    semi = ChaseEngine(schema, deps, strategy="semi-naive")
    naive = ChaseEngine(schema, deps, strategy="naive")

    semi_outcome = semi.run(build_instance())
    naive_outcome = naive.run(build_instance())
    assert semi_outcome.reached_fixpoint and naive_outcome.reached_fixpoint
    assert semi_outcome.rounds == naive_outcome.rounds
    assert (semi_outcome.instance.total_tuples()
            == naive_outcome.instance.total_tuples())

    semi_cost = bench.best_seconds(lambda: semi.run(build_instance()))
    naive_cost = bench.best_seconds(lambda: naive.run(build_instance()))
    speedup = naive_cost / semi_cost
    assert speedup >= 2.0, (
        f"semi-naive chase must be >=2x the naive rescan, got {speedup:.1f}x "
        f"({semi_cost*1e3:.2f}ms vs {naive_cost*1e3:.2f}ms)"
    )


@pytest.mark.artifact("kernel-chase")
def test_noop_rounds_scan_deltas_not_rows():
    """The satellite fix for ``_apply_fd``'s per-round group rebuild,
    observed through the work counter: across a whole run the
    semi-naive engine examines each row version a constant number of
    times, while the naive engine rescans every row in every round."""
    schema, deps, build_instance = bench.chase_workload()
    semi_outcome = ChaseEngine(schema, deps, strategy="semi-naive").run(
        build_instance()
    )
    naive_outcome = ChaseEngine(schema, deps, strategy="naive").run(
        build_instance()
    )
    assert semi_outcome.rows_scanned * 5 <= naive_outcome.rows_scanned, (
        f"semi-naive scanned {semi_outcome.rows_scanned} rows vs naive "
        f"{naive_outcome.rows_scanned}; the delta-driven engine must not "
        "rescan unchanged rows each round"
    )


@pytest.mark.artifact("bench-harness")
def test_bench_harness_writes_a_report(tmp_path):
    """``repro bench`` produces the BENCH_*.json format end to end."""
    report = bench.run_benchmarks(names=["single_decide"], repeats=3)
    path = tmp_path / "BENCH_test.json"
    bench.write_report(report, str(path))
    loaded = bench.load_report(str(path))
    assert loaded["suite"] == bench.SUITE
    assert loaded["schema_version"] == bench.SCHEMA_VERSION
    entry = loaded["workloads"]["single_decide"]
    assert entry["seconds"] > 0
    assert entry["ops_per_sec"] > 0
    assert entry["meta"]["speedup_vs_naive"] > 1.0


@pytest.mark.artifact("bench-harness")
def test_committed_baseline_report_is_complete():
    """The committed baseline snapshot covers every named workload."""
    assert os.path.exists(COMMITTED_REPORT), (
        f"{bench.COMMITTED_BASELINE} missing; record it with "
        f"`python -m repro bench --out {bench.COMMITTED_BASELINE}`"
    )
    with open(COMMITTED_REPORT, encoding="utf-8") as fp:
        report = json.load(fp)
    assert report["suite"] == bench.SUITE
    assert set(report["workloads"]) == set(bench.WORKLOADS)
    for name, entry in report["workloads"].items():
        assert entry["seconds"] > 0, name
    assert report["workloads"]["single_decide"]["meta"]["speedup_vs_naive"] >= 3.0
    assert report["workloads"]["chase_fixpoint"]["meta"]["speedup_vs_naive"] >= 2.0


@pytest.mark.artifact("bench-harness")
def test_regression_gate_flags_slowdowns():
    """The baseline comparison the CI job runs: faster or equal passes,
    a >25% slowdown is reported."""
    baseline = {"workloads": {"w": {"seconds": 0.100}}}
    ok = {"workloads": {"w": {"seconds": 0.110}}}
    slow = {"workloads": {"w": {"seconds": 0.200}}}
    new_only = {"workloads": {"fresh": {"seconds": 1.0}}}
    assert bench.compare_reports(ok, baseline) == []
    regressions = bench.compare_reports(slow, baseline)
    assert [r.workload for r in regressions] == ["w"]
    assert regressions[0].ratio == pytest.approx(2.0)
    # a workload the baseline has never seen is not a regression
    assert bench.compare_reports(new_only, baseline) == []


@pytest.mark.artifact("bench-harness")
def test_regression_gate_normalizes_by_calibration():
    """A uniformly slower machine (2x calibration, 2x workload) is not
    a regression; the same workload time on a 2x *faster* machine is."""
    baseline = {
        "calibration_seconds": 0.010,
        "workloads": {"w": {"seconds": 0.100}},
    }
    slow_machine = {
        "calibration_seconds": 0.020,
        "workloads": {"w": {"seconds": 0.200}},
    }
    fast_machine = {
        "calibration_seconds": 0.005,
        "workloads": {"w": {"seconds": 0.100}},
    }
    assert bench.compare_reports(slow_machine, baseline) == []
    assert [r.workload for r in bench.compare_reports(fast_machine, baseline)] == ["w"]


@pytest.mark.artifact("kernel-decision")
def test_timed_single_decide(benchmark):
    """Timed artifact: the kernel decision path."""
    _schema, premises, target, _targets = bench.decision_workload()
    kernels = KernelIndex(premises)
    result = benchmark(lambda: decide_ind(target, kernels))
    assert not result.implied


@pytest.mark.artifact("kernel-chase")
def test_timed_chase_fixpoint(benchmark):
    """Timed artifact: the semi-naive chase to fixpoint."""
    schema, deps, build_instance = bench.chase_workload()
    engine = ChaseEngine(schema, deps, strategy="semi-naive")
    outcome = benchmark.pedantic(
        lambda inst: engine.run(inst),
        setup=lambda: ((build_instance(),), {}),
        rounds=10,
        warmup_rounds=1,
    )
    assert outcome.reached_fixpoint
