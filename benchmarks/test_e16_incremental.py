"""E16 — the premise lifecycle at production premise counts.

The ROADMAP north star is a long-lived serving session whose premise
set evolves.  PR 2 makes ``ReasoningSession`` incrementally
maintainable; these benchmarks establish the cost model the redesign
promises on the E15 workload (~500 premises, 100 relations):

* ``add`` + re-query is at least 5x cheaper than rebuilding the
  session and re-querying (asserted, not just measured — this is an
  acceptance criterion, so the suite fails if the incremental path
  regresses to rebuild-like cost);
* a mutation whose left-hand relation is outside every cached
  exploration's footprint *preserves* the reachability cache.
"""

import random
import time

import pytest

from repro.deps.ind import IND
from repro.engine import ReasoningSession
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.workloads.random_deps import random_inds

PREMISES = 500
RELATIONS = 100
QUERY_RELATIONS = 40


def large_workload():
    """The E15 workload plus two quiet relations no premise touches."""
    rng = random.Random(19841982)
    schema = DatabaseSchema(
        [RelationSchema(f"R{i}", ("A", "B", "C")) for i in range(RELATIONS)]
        + [RelationSchema("QUIET", ("A", "B")), RelationSchema("QUIET2", ("A", "B"))]
    )
    chain = [
        IND(f"R{i}", ("A", "B"), f"R{i+1}", ("A", "B"))
        for i in range(RELATIONS - 1)
    ]
    busy_part = DatabaseSchema(
        RelationSchema(f"R{i}", ("A", "B", "C")) for i in range(RELATIONS)
    )
    noise = random_inds(
        rng, busy_part, count=PREMISES - len(chain), max_arity=2
    )
    premises = chain + noise
    targets = [
        IND("R0", ("A",), f"R{i}", ("A",)) for i in range(1, QUERY_RELATIONS)
    ]
    return schema, premises, targets


def _median_seconds(fn, reset=None, repeats=9):
    """Median wall-clock of ``fn`` with ``reset`` run outside the clock."""
    samples = []
    for _ in range(repeats):
        if reset is not None:
            reset()
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def _reparsed(premises):
    """Fresh dependency objects, as a real rebuild would produce.

    A production rebuild reloads the bundle, so its INDs are new
    objects with cold kernel memos; reusing the live session's premise
    objects would let the rebuilt session inherit their compiled
    successor caches and understate the true rebuild cost.
    """
    return [
        IND(ind.lhs_relation, ind.lhs_attributes,
            ind.rhs_relation, ind.rhs_attributes)
        for ind in premises
    ]


@pytest.mark.artifact("session-incremental")
def test_incremental_add_at_least_5x_cheaper_than_rebuild():
    """Acceptance criterion: single-premise add + re-query >= 5x faster
    than rebuild + re-query on a ~500-premise session."""
    schema, premises, targets = large_workload()
    session = ReasoningSession(schema, premises)
    session.implies_all(targets)  # warm the exploration cache
    quiet_ind = IND("QUIET", ("A",), "QUIET2", ("A",))

    def add_and_requery():
        session.add(quiet_ind)
        return session.implies_all(targets)

    def reset():
        if quiet_ind in session.dependencies:
            session.retract(quiet_ind)

    def rebuild_and_requery():
        rebuilt = ReasoningSession(schema, _reparsed(premises + [quiet_ind]))
        return rebuilt.implies_all(targets)

    assert all(a.verdict for a in add_and_requery())
    reset()
    assert all(a.verdict for a in rebuild_and_requery())

    incremental_cost = _median_seconds(add_and_requery, reset=reset)
    rebuild_cost = _median_seconds(rebuild_and_requery)
    speedup = rebuild_cost / incremental_cost
    assert speedup >= 5.0, (
        f"incremental add+re-query must be >=5x cheaper than rebuild, "
        f"got {speedup:.1f}x ({incremental_cost*1e3:.2f}ms vs "
        f"{rebuild_cost*1e3:.2f}ms)"
    )


@pytest.mark.artifact("session-incremental")
def test_unrelated_mutation_preserves_the_reach_index():
    """Acceptance criterion: a mutation outside the reach index's
    materialized footprint keeps the compiled closure (monotone
    extension, zero recompiles)."""
    schema, premises, targets = large_workload()
    session = ReasoningSession(schema, premises)
    session.implies_all(targets)
    reach = session.index.reach_index
    epoch, compiles = reach.epoch, reach.compiles
    assert compiles >= 1  # the batch compiled R0[A]'s component

    session.add(IND("QUIET", ("A",), "QUIET2", ("A",)))
    assert reach.epoch == epoch and not reach.dirty
    answer = session.implies(targets[0])
    assert answer.cached and answer.verdict
    assert reach.compiles == compiles  # served without a recompile

    # ...while a mutation inside the footprint invalidates the epoch
    # (lazily: the recompile happens on the next query, not here).
    session.retract(premises[0])  # R0[A,B] <= R1[A,B], on the chain
    assert reach.dirty
    assert not reach.is_hot(("R0", ("A",)))


@pytest.mark.artifact("session-incremental")
def test_incremental_add_and_requery(benchmark):
    """Timed artifact: the incremental path on the E15 workload.

    The retract between rounds is harness reset (the measured
    operation is ``add`` + re-query), so it runs in pedantic setup,
    outside the clock.
    """
    schema, premises, targets = large_workload()
    session = ReasoningSession(schema, premises)
    session.implies_all(targets)
    quiet_ind = IND("QUIET", ("A",), "QUIET2", ("A",))

    def reset():
        if quiet_ind in session.dependencies:
            session.retract(quiet_ind)

    def add_and_requery():
        session.add(quiet_ind)
        return session.implies_all(targets)

    answers = benchmark.pedantic(
        add_and_requery, setup=reset, rounds=30, warmup_rounds=2
    )
    assert all(answer.verdict for answer in answers)


@pytest.mark.artifact("session-incremental")
def test_rebuild_and_requery(benchmark):
    """Timed artifact: the rebuild path the redesign replaces."""
    schema, premises, targets = large_workload()
    quiet_ind = IND("QUIET", ("A",), "QUIET2", ("A",))

    def rebuild_and_requery():
        session = ReasoningSession(schema, _reparsed(premises + [quiet_ind]))
        return session.implies_all(targets)

    answers = benchmark(rebuild_and_requery)
    assert all(answer.verdict for answer in answers)


@pytest.mark.artifact("session-fork")
def test_fork_is_cheap(benchmark):
    """Forking copies cache skeletons; it must not re-index 500
    premises or re-run any exploration."""
    schema, premises, targets = large_workload()
    session = ReasoningSession(schema, premises)
    session.implies_all(targets)

    child = benchmark(session.fork)
    answer = child.implies(targets[0])
    assert answer.cached and answer.verdict
