"""E23 — observability: tracing/metrics overhead stays inside budget.

This PR threads a stdlib-only metrics + tracing layer
(:mod:`repro.obs`) through every serving layer: per-request traces
with payer-attributed coalescer spans, WAL fsync and per-follower
ship spans, latency/batch-size histograms, and scrape-time collectors
over the engines' ``stats()`` counters.  Observability that taxes the
hot path gets turned off in production, so the acceptance criterion
is a *cost* bound, not a speedup floor:

* the per-request cost of full instrumentation (trace minted, spans
  attributed, histograms observed, trace ring appended) — measured as
  the difference between the traced and bare coalesced streams — must
  stay under :data:`repro.bench.OBS_OVERHEAD_BUDGET` (5%) of what one
  served HTTP request costs;
* the untraced path the regression-gated workloads run
  (``single_decide``, ``repeated_decide_hot``) pays only ``trace is
  None`` early-outs, enforced by the trajectory gate itself;
* the committed ``BENCH_e23.json`` and the last
  ``BENCH_trajectory.json`` entry record the
  ``observability_overhead`` workload with both sides of the ratio.
"""

import json
import os

import pytest

from repro import bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED_REPORT = os.path.join(REPO_ROOT, bench.COMMITTED_BASELINE)
COMMITTED_TRAJECTORY = os.path.join(REPO_ROOT, bench.COMMITTED_TRAJECTORY)


@pytest.mark.artifact("observability-overhead")
def test_full_instrumentation_stays_under_the_overhead_budget():
    """Acceptance criterion, measured live: tracing+metrics add less
    than the budgeted fraction of a served request.  The workload
    itself asserts the budget; the floor here re-checks the recorded
    meta so a silently weakened assert would still fail."""
    result = bench.bench_observability_overhead(repeats=2)
    meta = result.meta
    assert meta["overhead_budget"] == bench.OBS_OVERHEAD_BUDGET == 0.05
    assert meta["overhead_fraction"] < bench.OBS_OVERHEAD_BUDGET, (
        f"instrumentation adds {meta['added_us_per_request']:.2f}us per "
        f"request = {meta['overhead_fraction']:.1%} of a "
        f"{meta['served_request_us']:.0f}us served request"
    )
    # The instrumented stream really was instrumented: one latency
    # observation per request, at least one batch flush observed, and
    # every trace recorded into the ring.
    per_phase = meta["clients"] * meta["reads_per_client"]
    assert meta["latency_observations"] >= per_phase
    assert meta["batches_observed"] >= 1
    assert meta["traces_recorded"] >= per_phase


@pytest.mark.artifact("observability-report")
def test_committed_report_records_the_observability_suite():
    """BENCH_e23.json is committed, names the e23 suite, and records
    the overhead measurement inside budget."""
    assert os.path.exists(COMMITTED_REPORT), (
        f"{bench.COMMITTED_BASELINE} missing; record it with "
        f"`python -m repro bench --out {bench.COMMITTED_BASELINE}`"
    )
    with open(COMMITTED_REPORT, encoding="utf-8") as fp:
        report = json.load(fp)
    assert report["suite"] == bench.SUITE == "e23-observability"
    assert set(report["workloads"]) == set(bench.WORKLOADS)
    meta = report["workloads"]["observability_overhead"]["meta"]
    assert meta["overhead_fraction"] < bench.OBS_OVERHEAD_BUDGET
    assert meta["added_us_per_request"] > 0
    assert meta["served_request_us"] > meta["added_us_per_request"]


@pytest.mark.artifact("observability-report")
def test_trajectory_ends_with_the_observability_suite():
    """The committed perf history's newest entry is this suite's run,
    so the regression gate baselines against the instrumented code."""
    with open(COMMITTED_TRAJECTORY, encoding="utf-8") as fp:
        trajectory = json.load(fp)
    assert isinstance(trajectory, list) and trajectory
    last = trajectory[-1]
    assert last["suite"] == "e23-observability"
    assert "observability_overhead" in last["workloads"]