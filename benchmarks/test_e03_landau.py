"""E3 — the superpolynomial example (Section 3's Landau analysis).

Regenerates the paper's table-in-prose: for the Landau witness
permutation gamma of degree m, the naive procedure needs f(m) - 1
step-(2) applications to see sigma(gamma) |= sigma(gamma^(f(m)-1)),
while O(log f(m))-line proofs exist in the axiomatization.

The printed benchmark rows (parameter = m) ARE the series: watch the
naive cost track g(m) = [6, 12, 20, 30, 60, 84, ...] while the proof
length stays logarithmic.
"""

import pytest

from repro.core.ind_axioms import check_proof
from repro.perms.ind_encoding import (
    chain_decision,
    permutation_ind,
    permutation_schema,
    short_proof_of_power,
)
from repro.perms.landau import landau, landau_witness_permutation, log_landau_ratio

DEGREES = [5, 7, 9, 12, 16, 19]


@pytest.mark.parametrize("m", DEGREES)
def test_naive_chain_cost(benchmark, m):
    """Cost of the naive Z-procedure on the Landau family: the witness
    chain has exactly g(m) - 1 steps."""
    perm = landau_witness_permutation(m)
    power = perm.order() - 1

    report = benchmark(lambda: chain_decision(perm, power))
    assert report.decision.implied
    assert report.chain_steps == landau(m) - 1


@pytest.mark.parametrize("m", DEGREES)
def test_short_proof_cost(benchmark, m):
    """Cost of building + checking the O(log g(m)) squaring proof."""
    perm = landau_witness_permutation(m)
    power = perm.order() - 1
    schema = permutation_schema(m)
    target = permutation_ind(perm ** power)

    def run():
        proof = short_proof_of_power(perm, power)
        assert check_proof(proof, schema, target)
        return len(proof)

    lines = benchmark(run)
    assert lines <= 4 * power.bit_length() + 4
    if landau(m) >= 20:
        # The logarithmic proof beats the naive chain once g(m) clears
        # the constant overhead of the squaring bookkeeping.
        assert lines < landau(m)


def test_landau_growth_table(benchmark):
    """The g(m) series itself, with the Landau-asymptotic ratio
    log g(m) / sqrt(m log m) climbing toward 1."""

    def run():
        return [(m, landau(m), round(log_landau_ratio(m), 3))
                for m in range(2, 80)]

    table = benchmark(run)
    values = [g for _m, g, _r in table]
    ratios = [r for *_mg, r in table]
    assert values == sorted(values)  # monotone
    assert ratios[-1] > 0.85  # approaching 1
    assert values[-1] > 10_000  # visibly superpolynomial by m ~ 80
