"""E7 — Theorem 4.4 and Figures 4.1/4.2, measured.

Regenerates the finite/unrestricted split: the finite engine derives
the reversals (counting argument), the unrestricted engine refuses,
and the symbolic infinite figures are checked exactly.
"""

import pytest

from repro.core.finite_unary import (
    finitely_implies_unary,
    unary_closure,
    unrestricted_implies_unary,
)
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.model.schema import DatabaseSchema, RelationSchema
from repro.model.symbolic import (
    SymbolicDatabase,
    figure_4_1_relation,
    figure_4_2_relation,
)

SCHEMA = DatabaseSchema.of(RelationSchema("R", ("A", "B")))
SIGMA = [FD("R", ("A",), ("B",)), IND("R", ("A",), "R", ("B",))]
TARGETS = [IND("R", ("B",), "R", ("A",)), FD("R", ("B",), ("A",))]


def test_finite_engine(benchmark):
    answers = benchmark(
        lambda: [finitely_implies_unary(SIGMA, t) for t in TARGETS]
    )
    assert answers == [True, True]


def test_unrestricted_engine(benchmark):
    answers = benchmark(
        lambda: [unrestricted_implies_unary(SIGMA, t) for t in TARGETS]
    )
    assert answers == [False, False]


def test_figure_4_1_checks(benchmark):
    db = SymbolicDatabase(SCHEMA, {"R": figure_4_1_relation()})

    def run():
        return (
            db.satisfies_all(SIGMA),
            db.satisfies(TARGETS[0]),
        )

    sat_sigma, sat_target = benchmark(run)
    assert sat_sigma and not sat_target


def test_figure_4_2_checks(benchmark):
    db = SymbolicDatabase(SCHEMA, {"R": figure_4_2_relation()})

    def run():
        return (
            db.satisfies_all(SIGMA),
            db.satisfies(TARGETS[1]),
        )

    sat_sigma, sat_target = benchmark(run)
    assert sat_sigma and not sat_target


@pytest.mark.parametrize("cycle", [2, 8, 32, 128])
def test_cycle_closure_scaling(benchmark, cycle):
    """The finite engine's cycle rule on growing Section 6 cycles:
    closure cost vs cycle length (the engine's SCC pass)."""
    premises = []
    for i in range(cycle):
        premises.append(FD(f"R{i}", ("A",), ("B",)))
        premises.append(IND(f"R{i}", ("A",), f"R{(i+1) % cycle}", ("B",)))
    closure = benchmark(lambda: unary_closure(premises, finite=True))
    # Every IND reverses around the cycle.
    reversed_count = sum(
        1
        for (src, dst) in closure.inds
        if (dst, src) in closure.inds and src != dst
    )
    assert reversed_count >= 2 * cycle
