"""E12 — the general FD+IND chase as a semi-decision procedure.

The combined implication problem is undecidable (Mitchell;
Chandra & Vardi — cited in the paper), so the chase must be budgeted.
This harness measures terminating runs, early-goal runs on diverging
instances, and the budget path itself.
"""

import pytest

from repro.core.fdind_chase import chase_implies
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.deps.parser import parse_dependencies, parse_dependency
from repro.exceptions import ChaseBudgetExceeded
from repro.model.schema import DatabaseSchema
from repro.core.section7 import section7_family


@pytest.mark.parametrize("n", [1, 2, 4])
def test_terminating_chase_section7(benchmark, n):
    family = section7_family(n)
    cert = benchmark(
        lambda: chase_implies(family.schema, family.dependencies, family.sigma)
    )
    assert cert.implied


def test_early_goal_on_diverging_instance(benchmark):
    """S[C] c S[D] diverges under the chase, but the positive target is
    reached in round one — the early-goal check keeps this fast."""
    schema = DatabaseSchema.from_dict({"R": ("A", "B"), "S": ("C", "D")})
    premises = parse_dependencies(["R[A] <= S[C]", "S[C] <= S[D]"])
    target = parse_dependency("R[A] <= S[D]")
    cert = benchmark(lambda: chase_implies(schema, premises, target))
    assert cert.implied


def test_budget_handling_cost(benchmark):
    """The honest failure mode: a negative question on a diverging
    chase must exit via the budget, not hang."""
    schema = DatabaseSchema.from_dict({"S": ("C", "D")})
    premises = [parse_dependency("S[C] <= S[D]")]
    target = parse_dependency("S[D] <= S[C]")

    def run():
        try:
            cert = chase_implies(schema, premises, target,
                                 max_rounds=25, max_tuples=2000)
            return cert.implied
        except ChaseBudgetExceeded:
            return None

    outcome = benchmark(run)
    assert outcome is None  # undecided within budget, honestly reported


def test_counterexample_extraction(benchmark):
    """Negative terminating chases export their fixpoint as a
    counterexample database."""
    schema = DatabaseSchema.from_dict({"R": ("A", "B"), "S": ("T", "U")})
    premises = [
        IND("R", ("A", "B"), "S", ("T", "U")),
        FD("S", ("T",), ("U",)),
    ]
    target = FD("R", ("B",), ("A",))

    def run():
        cert = chase_implies(schema, premises, target)
        return cert, cert.counterexample()

    cert, counter = benchmark(run)
    assert not cert.implied
    assert counter is not None
    assert counter.satisfies_all(premises)
    assert not counter.satisfies(target)
