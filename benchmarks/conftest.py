"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's artifacts (see
DESIGN.md's per-experiment index E1-E12).  Benchmarks double as
correctness checks: every timed operation asserts the paper's claim on
its result, so ``pytest benchmarks/ --benchmark-only`` re-establishes
the paper while measuring it.
"""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    return random.Random(19841982)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "artifact(name): which paper artifact a bench regenerates"
    )
